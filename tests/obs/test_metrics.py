"""MetricsRegistry semantics: families, labels, types, snapshots."""

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        counter = reg.counter("codec.blocks_encoded")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_same_labels_intern_to_same_series(self):
        reg = MetricsRegistry()
        a = reg.counter("codec.blocks_encoded", workload="fir", k="5")
        b = reg.counter("codec.blocks_encoded", k="5", workload="fir")
        assert a is b  # label order must not matter

    def test_distinct_labels_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("faults.cases", outcome="detected").inc(2)
        reg.counter("faults.cases", outcome="masked").inc(3)
        family = reg.family("faults.cases")
        assert len(family.series()) == 2
        assert family.total() == 5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match=">= 0"):
            reg.counter("codec.blocks_encoded").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("flow.hot_coverage")
        gauge.set(0.75)
        gauge.inc(0.05)
        gauge.dec(0.10)
        assert gauge.value == pytest.approx(0.70)


class TestHistogram:
    def test_buckets_are_cumulative_by_construction(self):
        reg = MetricsRegistry()
        hist = reg.histogram("faults.case_seconds")
        for value in (0.0002, 0.003, 0.003, 2.0, 500.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.min == 0.0002
        assert hist.max == 500.0
        data = hist.to_dict()
        # The +Inf tail catches the out-of-range observation.
        assert data["buckets"][-1] == {"le": "+Inf", "count": 1}
        assert sum(b["count"] for b in data["buckets"]) == 5

    def test_quantiles_nearest_rank(self):
        reg = MetricsRegistry()
        hist = reg.histogram("span.seconds")
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 100.0
        assert hist.quantile(0.5) == pytest.approx(50.0, abs=1.0)

    def test_sample_cap_counts_drops(self):
        from repro.obs.metrics import _SAMPLE_CAP

        reg = MetricsRegistry()
        hist = reg.histogram("span.seconds")
        for _ in range(_SAMPLE_CAP + 10):
            hist.observe(1.0)
        assert hist.sample_dropped == 10
        assert hist.count == _SAMPLE_CAP + 10  # count is exact regardless

    def test_unsorted_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="increasing"):
            reg.histogram("bad", buckets=(1.0, 0.5))


class TestRegistry:
    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("codec.blocks_encoded")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("codec.blocks_encoded")

    def test_contains_and_family_names(self):
        reg = MetricsRegistry()
        reg.counter("b.second")
        reg.gauge("a.first")
        assert "b.second" in reg
        assert "missing" not in reg
        assert reg.family_names() == ["a.first", "b.second"]

    def test_snapshot_is_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.counter("codec.blocks_encoded", workload="fir").inc(3)
        reg.gauge("flow.hot_coverage", workload="fir").set(0.99)
        reg.histogram("faults.case_seconds").observe(0.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["codec.blocks_encoded"]["type"] == "counter"
        assert snap["codec.blocks_encoded"]["series"][0] == {
            "labels": {"workload": "fir"},
            "value": 3,
        }
        assert snap["faults.case_seconds"]["series"][0]["count"] == 1

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        counter = reg.counter("codec.blocks_encoded")
        counter.inc()
        reg.reset()
        assert "codec.blocks_encoded" not in reg
        # A fresh series after reset, not the old interned object.
        assert reg.counter("codec.blocks_encoded") is not counter
        assert reg.counter("codec.blocks_encoded").value == 0

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestQuantileEdges:
    """Regressions for the q=0.0 / q=1.0 / empty-histogram edges."""

    def test_empty_histogram_has_no_summary(self):
        hist = MetricsRegistry().histogram("span.seconds")
        assert hist.mean is None
        assert hist.quantile(0.0) is None
        assert hist.quantile(0.5) is None
        assert hist.quantile(1.0) is None

    def test_extremes_exact_after_sample_truncation(self):
        from repro.obs.metrics import _SAMPLE_CAP

        hist = MetricsRegistry().histogram("span.seconds")
        hist.observe(0.001)  # the global min, long since crowded out
        for _ in range(_SAMPLE_CAP + 5):
            hist.observe(1.0)
        hist.observe(9.5)  # the global max, past the sample cap
        # min/max are tracked exactly; the sample alone no longer
        # contains either extreme.
        assert hist.quantile(0.0) == 0.001
        assert hist.quantile(1.0) == 9.5

    def test_single_observation_all_quantiles_agree(self):
        hist = MetricsRegistry().histogram("span.seconds")
        hist.observe(2.5)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 2.5

    def test_nearest_rank_is_ceiling_not_floor(self):
        hist = MetricsRegistry().histogram("span.seconds")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        # ceil(0.5 * 4) = 2nd order statistic, not the 3rd.
        assert hist.quantile(0.5) == 2.0
        assert hist.quantile(0.75) == 3.0
        assert hist.quantile(0.76) == 4.0


class TestDeltaMerge:
    """export_delta / merge_delta: the cross-process telemetry wire."""

    def test_roundtrip_through_json(self):
        import json

        src = MetricsRegistry()
        src.counter("codec.blocks_encoded", workload="fir").inc(7)
        src.gauge("flow.hot_coverage").set(0.875)
        src.histogram("serve.job_seconds").observe(0.25)
        delta = json.loads(json.dumps(src.export_delta()))

        dst = MetricsRegistry()
        assert dst.merge_delta(delta) == 3
        assert dst.counter("codec.blocks_encoded", workload="fir").value == 7
        assert dst.gauge("flow.hot_coverage").value == 0.875
        assert dst.histogram("serve.job_seconds").count == 1

    def test_merge_accumulates_counters_and_histograms(self):
        src = MetricsRegistry()
        src.counter("codec.blocks_encoded").inc(2)
        src.histogram("serve.job_seconds").observe(1.0)
        delta = src.export_delta()

        dst = MetricsRegistry()
        dst.merge_delta(delta)
        dst.merge_delta(delta)
        assert dst.counter("codec.blocks_encoded").value == 4
        hist = dst.histogram("serve.job_seconds")
        assert hist.count == 2
        assert hist.total == pytest.approx(2.0)

    def test_merge_rebins_foreign_bucket_bounds(self):
        src = MetricsRegistry()
        src.histogram("lat", buckets=(0.5, 2.0)).observe(1.0)
        dst = MetricsRegistry()
        dst.histogram("lat", buckets=(0.1, 10.0)).observe(0.05)
        assert dst.merge_delta(src.export_delta()) == 1
        hist = dst.histogram("lat")
        assert hist.count == 2
        # The remote observation lands in the local (0.1, 10.0] bucket.
        assert hist.to_dict()["buckets"][1]["count"] == 1

    def test_merge_never_raises_on_junk(self):
        dst = MetricsRegistry()
        dst.counter("codec.blocks_encoded").inc()
        assert dst.merge_delta(None) == 0
        assert dst.merge_delta({"v": 99}) == 0
        assert dst.merge_delta({"v": 1, "families": "nope"}) == 0
        # A series with a garbage value degrades to a no-op (still
        # counted as visited); an unknown family type is skipped.
        assert (
            dst.merge_delta(
                {
                    "v": 1,
                    "families": {
                        "codec.blocks_encoded": {
                            "type": "counter",
                            "series": [
                                {"labels": [], "data": {"value": "NaN?"}},
                                {"labels": [], "data": {"value": 3}},
                            ],
                        },
                        "weird": {"type": "zigzag", "series": []},
                    },
                }
            )
            == 2
        )
        assert dst.counter("codec.blocks_encoded").value == 4

    def test_export_bounds_series_count(self):
        src = MetricsRegistry()
        for i in range(20):
            src.counter("c", i=str(i)).inc()
        delta = src.export_delta(max_series=8)
        exported = sum(
            len(fam["series"]) for fam in delta["families"].values()
        )
        assert exported == 8
        assert delta["series_dropped"] == 12
