"""Bit-sequence utilities shared by the encoder, the theory module and
the measurement harness.

Conventions
-----------
* A *stream* is a ``list[int]`` of 0/1 values in **time order**:
  ``stream[0]`` is the first bit fetched.
* The paper prints block words with time flowing right-to-left (the
  sequence notation ``X = {..., x_{n+1}, x_n, ...}`` places later bits
  on the left).  :func:`to_paper_string` / :func:`from_paper_string`
  convert between the two conventions so Figures 2 and 4 can be
  compared character-for-character.
* A *word column* is the vertical bit stream a single bus line carries
  while a sequence of 32-bit instruction words is fetched (Figure 1b).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def count_transitions(stream: Sequence[int]) -> int:
    """Number of adjacent positions whose bits differ.

    This is the quantity the paper minimises: bus power is proportional
    to the number of 0->1 / 1->0 transitions on each line.
    """
    return sum(a != b for a, b in zip(stream, stream[1:]))


def validate_bits(stream: Iterable[int]) -> list[int]:
    """Return ``stream`` as a list, checking every element is 0 or 1."""
    bits = list(stream)
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"stream elements must be 0 or 1, got {bit!r}")
    return bits


def to_paper_string(stream: Sequence[int]) -> str:
    """Format a time-ordered stream in the paper's right-to-left style.

    ``[0, 1, 0]`` (first-fetched bit 0, then 1, then 0) prints as
    ``"010"`` — the string shown in Figure 2's ``X`` column.
    """
    return "".join(str(b) for b in reversed(stream))


def from_paper_string(text: str) -> list[int]:
    """Parse a Figure-2/4 style block word into a time-ordered stream."""
    if not text or any(ch not in "01" for ch in text):
        raise ValueError(f"expected a non-empty 0/1 string, got {text!r}")
    return [int(ch) for ch in reversed(text)]


def int_to_stream(value: int, width: int) -> list[int]:
    """Expand an integer into a time-ordered stream of ``width`` bits.

    Bit 0 of ``value`` becomes ``stream[0]`` (first in time).
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def stream_to_int(stream: Sequence[int]) -> int:
    """Inverse of :func:`int_to_stream`."""
    value = 0
    for i, bit in enumerate(stream):
        value |= (bit & 1) << i
    return value


def pack_bits(stream: Sequence[int]) -> int:
    """Pack a time-ordered 0/1 stream into an int (bit ``i`` =
    ``stream[i]``).  The integer form is what the compiled fast path
    operates on: block extraction is shift/mask, transition counting a
    single popcount."""
    if not stream:
        return 0
    # str join + int(..., 2) runs the loop at C speed.
    return int("".join("1" if bit else "0" for bit in reversed(stream)), 2)


def unpack_bits(value: int, length: int) -> tuple[int, ...]:
    """Inverse of :func:`pack_bits`: the low ``length`` bits of
    ``value`` as a time-ordered tuple."""
    if length == 0:
        return ()
    text = format(value & ((1 << length) - 1), f"0{length}b")
    return tuple(map(int, reversed(text)))


def count_transitions_int(value: int, length: int) -> int:
    """Transitions of a ``length``-bit stream held in an int —
    bit-parallel equivalent of :func:`count_transitions`."""
    if length < 2:
        return 0
    return ((value ^ (value >> 1)) & ((1 << (length - 1)) - 1)).bit_count()


def word_column(words: Sequence[int], bit: int) -> list[int]:
    """Extract the vertical stream of bus line ``bit`` from a sequence
    of instruction words (Figure 1b).
    """
    if not 0 <= bit < 64:
        raise ValueError(f"bit index out of range: {bit}")
    return [(w >> bit) & 1 for w in words]


def columns_to_words(columns: Sequence[Sequence[int]]) -> list[int]:
    """Reassemble instruction words from per-bus-line vertical streams.

    ``columns[b][t]`` is the bit carried by line ``b`` at fetch ``t``.
    """
    if not columns:
        return []
    length = len(columns[0])
    for b, col in enumerate(columns):
        if len(col) != length:
            raise ValueError(
                f"column {b} has length {len(col)}, expected {length}"
            )
    words = []
    for t in range(length):
        word = 0
        for b, col in enumerate(columns):
            word |= (col[t] & 1) << b
        words.append(word)
    return words


def hamming(a: int, b: int) -> int:
    """Hamming distance between two words (bus transitions per fetch)."""
    return (a ^ b).bit_count()


def total_word_transitions(words: Sequence[int]) -> int:
    """Total bus transitions when ``words`` are fetched in sequence."""
    return sum(hamming(a, b) for a, b in zip(words, words[1:]))


def per_line_word_transitions(words: Sequence[int], width: int = 32) -> list[int]:
    """Per-bus-line transition counts for a fetch sequence."""
    counts = [0] * width
    for a, b in zip(words, words[1:]):
        diff = a ^ b
        while diff:
            low = diff & -diff
            counts[low.bit_length() - 1] += 1
            diff ^= low
    return counts
