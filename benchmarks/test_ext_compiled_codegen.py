"""Extension: compiled vs hand-written code under the encoding.

The paper's Figure 6 used *compiled* C (SimpleScalar gcc); our
Figure-6 workloads are hand-written assembly.  This bench compiles
the same kernels with minicc (a deliberately naive compiler: every
access through memory, stack-style expression evaluation) and runs
the identical encoding flow on both code styles at matched data
sizes — quantifying how much of the measured reduction depends on
code-generation style, which is the main explanation offered in
EXPERIMENTS.md for our reductions running above the paper's.
"""

import pytest

from repro.minicc import compile_kernel
from repro.pipeline.flow import EncodingFlow
from repro.sim.cpu import run_program
from repro.workloads.common import pseudo_values
from repro.workloads.registry import build_workload

N = 12  # matrix / grid size for both code styles

MMUL_SRC = f"""
double A[{N}][{N}]; double B[{N}][{N}]; double C[{N}][{N}];
int i; int j; int k; double s;
for (i = 0; i < {N}; i = i + 1)
    for (j = 0; j < {N}; j = j + 1) {{
        s = 0.0;
        for (k = 0; k < {N}; k = k + 1)
            s = s + A[i][k] * B[k][j];
        C[i][j] = s;
    }}
"""

SOR_SRC = f"""
double U[{N}][{N}];
int i; int j; int sweep;
for (sweep = 0; sweep < 4; sweep = sweep + 1)
    for (i = 1; i < {N} - 1; i = i + 1)
        for (j = 1; j < {N} - 1; j = j + 1)
            U[i][j] = U[i][j] + 0.3125 *
                (U[i-1][j] + U[i+1][j] + U[i][j-1] + U[i][j+1]
                 - 4.0 * U[i][j]);
"""


def _flow_on(program, trace, name):
    return {
        k: EncodingFlow(block_size=k).run(program, trace, name)
        for k in (4, 5)
    }


def _run_pair():
    rows = {}
    # mmul: hand assembly vs minicc, same N.
    hand = build_workload("mmul", n=N)
    hand_program = hand.assemble()
    cpu, hand_trace = run_program(hand_program)
    hand.verify(cpu)
    rows["mmul/hand"] = _flow_on(hand_program, hand_trace, "mmul/hand")

    data = {
        "A": pseudo_values(N * N, seed=1),
        "B": pseudo_values(N * N, seed=2),
    }
    compiled = compile_kernel(MMUL_SRC, data=data, name="mmul")
    cc_program = compiled.assemble()
    cpu, cc_trace = run_program(cc_program)
    rows["mmul/minicc"] = _flow_on(cc_program, cc_trace, "mmul/minicc")

    optimised = compile_kernel(MMUL_SRC, data=data, name="mmul", opt_level=1)
    o1_program = optimised.assemble()
    cpu, o1_trace = run_program(o1_program)
    rows["mmul/minicc-O1"] = _flow_on(o1_program, o1_trace, "mmul/minicc-O1")
    rows["mmul/sizes"] = (len(hand_trace), len(cc_trace), len(o1_trace))

    # sor: compiled only (structure check at a second kernel).
    sor = compile_kernel(
        SOR_SRC, data={"U": pseudo_values(N * N, seed=3)}, name="sor"
    )
    sor_program = sor.assemble()
    cpu, sor_trace = run_program(sor_program)
    rows["sor/minicc"] = _flow_on(sor_program, sor_trace, "sor/minicc")
    return rows


def test_ext_compiled_codegen(benchmark, record_result):
    rows = benchmark.pedantic(_run_pair, rounds=1, iterations=1)

    hand = rows["mmul/hand"]
    cc = rows["mmul/minicc"]
    o1 = rows["mmul/minicc-O1"]
    hand_steps, cc_steps, o1_steps = rows["mmul/sizes"]

    # The naive compiler executes several times more instructions for
    # the same kernel (every access through memory); scalar promotion
    # (-O1) recovers a chunk, landing between -O0 and hand-written.
    assert cc_steps > 2 * hand_steps
    assert hand_steps < o1_steps < cc_steps

    for k in (4, 5):
        # All code styles must improve substantially and verify.
        for result in (hand[k], cc[k], o1[k]):
            assert result.decode_verified
            assert result.reduction_percent > 15.0
    # The shape claim: reductions depend on code style by at most a
    # moderate factor — both land in the paper's broad band.
    for k in (4, 5):
        delta = abs(hand[k].reduction_percent - cc[k].reduction_percent)
        assert delta < 30.0

    sor = rows["sor/minicc"]
    for k in (4, 5):
        assert sor[k].decode_verified
        assert sor[k].reduction_percent > 15.0

    lines = [
        "Extension — compiled (minicc) vs hand-written assembly",
        "",
        f"mmul n={N}: hand {hand_steps} fetches, minicc {cc_steps} fetches",
        "",
        f"{'code style':14s} {'k':>2s} {'#TR':>9s} {'reduction':>9s}",
    ]
    for label, per_size in (
        ("mmul hand", hand),
        ("mmul -O0", cc),
        ("mmul -O1", o1),
        ("sor -O0", sor),
    ):
        for k in (4, 5):
            result = per_size[k]
            lines.append(
                f"{label:14s} {k:2d} {result.baseline_transitions:9d} "
                f"{result.reduction_percent:8.1f}%"
            )
    lines += [
        "",
        "conclusion: the encoding works on both code styles; exact "
        "percentages shift with code generation, which accounts for "
        "the Figure-6 offset between our hand assembly and the "
        "paper's compiled benchmarks",
    ]
    record_result("ext_compiled_codegen", "\n".join(lines))
