"""Behaviour-space coverage accounting for the verification campaign.

"Zero mismatches" is only as strong as the inputs that produced it, so
every differential case reports which behaviours it exercised and the
campaign qualifies its verdict with coverage over explicit, enumerable
universes (in the exhaustive-enumeration spirit of Chee et al.):

``codebook_entries``
    Every compiled-codebook lookup class for each block size ``k``:
    all ``2**k`` full-width block words through the anchored path and
    both constrained variants (fixed overlap bit 0/1) — ``3 * 2**k``
    entries per ``k``.  The built-in exhaustive sweep covers this
    universe deterministically; the gate demands 100% for k=4..7.
``tau_selectors``
    The eight hardware transformation selectors, per block size,
    exercised through the *decode* direction (suffix-table vs
    bit-serial vs TT-entry differential).  Gated at 100% for k=4..7.
``block_sizes``
    Which configured ``k`` values ran at all.
``boundary_residues``
    Stream length mod ``k-1`` — the tail/overlap boundary classes
    (full tail, short tail, single-bit tail...).
``tail_lengths``
    The tail segment length each stream case ended on (1..k).
``decoder_transitions``
    The fetch-decoder mode-transition space: clean, SEC-DED-corrected
    and uncorrectable TT/BBIT corruption, each observed under strict,
    recover and degraded modes (12 classes).
``encoder_schemes``
    Every registered encoder-zoo backend
    (:data:`repro.baselines.protocol.ENCODER_REGISTRY`), exercised by
    the encoder differential cases and the deterministic encoder
    sweep.  Gated at 100%: a backend that registers but never passes
    through the campaign is a gate violation, not a silent gap.

Coverage keys are plain strings (``"k=5|anchored|17"``) so per-case
contributions serialise through the process pool and into
``VERIFY_report.json`` unchanged.
"""

from __future__ import annotations

from typing import Iterable, Mapping

#: Fault-handling classes the tables cases must observe, per mode.
DECODER_TRANSITIONS = tuple(
    f"{event}:{mode}"
    for event in ("clean", "corrected", "tt_uncorrectable", "bbit_uncorrectable")
    for mode in ("strict", "recover", "degraded")
)

#: Block sizes whose codebook/τ coverage the ``--check`` gate demands
#: at 100% (the paper studies k=4..7; smaller ks are exercised but
#: not gated).
GATED_BLOCK_SIZES = (4, 5, 6, 7)


def _registered_encoder_schemes() -> tuple:
    """The encoder-zoo universe, resolved at tracker construction so a
    newly registered backend automatically widens the gate."""
    from repro.baselines.protocol import registered_schemes

    return registered_schemes()


def codebook_key(k: int, variant: str, word_int: int) -> str:
    return f"k={k}|{variant}|{word_int}"


def tau_key(k: int, selector: int) -> str:
    return f"k={k}|tau={selector}"


class CoverageTracker:
    """Merges per-case coverage contributions against fixed universes."""

    def __init__(self, block_sizes: Iterable[int]):
        self.block_sizes = tuple(sorted(set(block_sizes)))
        self.universes: dict[str, set[str]] = {
            "block_sizes": {f"k={k}" for k in self.block_sizes},
            "codebook_entries": {
                codebook_key(k, variant, word)
                for k in self.block_sizes
                for variant in ("anchored", "constrained0", "constrained1")
                for word in range(1 << k)
            },
            "tau_selectors": {
                tau_key(k, selector)
                for k in self.block_sizes
                for selector in range(8)
            },
            "boundary_residues": {
                f"k={k}|mod={residue}"
                for k in self.block_sizes
                if k >= 2
                for residue in range(max(1, k - 1))
            },
            "tail_lengths": {
                f"k={k}|tail={length}"
                for k in self.block_sizes
                for length in range(1, k + 1)
            },
            "decoder_transitions": set(DECODER_TRANSITIONS),
            "encoder_schemes": set(_registered_encoder_schemes()),
        }
        self.covered: dict[str, set[str]] = {
            dimension: set() for dimension in self.universes
        }

    # ------------------------------------------------------------------

    def cover(self, dimension: str, key: str) -> None:
        if dimension in self.covered:
            self.covered[dimension].add(key)

    def merge(self, contributions: Mapping[str, Iterable[str]]) -> None:
        """Fold one case's coverage (dimension -> keys) in."""
        for dimension, keys in contributions.items():
            bucket = self.covered.get(dimension)
            if bucket is not None:
                bucket.update(keys)

    # ------------------------------------------------------------------

    def percent(self, dimension: str, prefix: str = "") -> float:
        universe = self.universes[dimension]
        if prefix:
            universe = {key for key in universe if key.startswith(prefix)}
        if not universe:
            return 100.0
        hit = len(universe & self.covered[dimension])
        return 100.0 * hit / len(universe)

    def snapshot(self) -> dict:
        """The report's coverage block: per-dimension totals plus a
        per-``k`` breakdown for the gated dimensions."""
        block: dict = {}
        for dimension, universe in self.universes.items():
            covered = self.covered[dimension] & universe
            entry = {
                "covered": len(covered),
                "universe": len(universe),
                "percent": round(100.0 * len(covered) / len(universe), 2)
                if universe
                else 100.0,
                "missing": sorted(universe - covered)[:16],
            }
            if dimension in ("codebook_entries", "tau_selectors"):
                entry["by_block_size"] = {
                    str(k): round(self.percent(dimension, f"k={k}|"), 2)
                    for k in self.block_sizes
                }
            block[dimension] = entry
        return block

    def gate_problems(self) -> list[str]:
        """Violations of the acceptance gate: 100% codebook-entry and
        τ-selector coverage for every configured k in 4..7."""
        problems = []
        for k in self.block_sizes:
            if k not in GATED_BLOCK_SIZES:
                continue
            for dimension in ("codebook_entries", "tau_selectors"):
                pct = self.percent(dimension, f"k={k}|")
                if pct < 100.0:
                    problems.append(
                        f"{dimension} coverage for k={k} is {pct:.1f}% "
                        "(gate demands 100%)"
                    )
        scheme_pct = self.percent("encoder_schemes")
        if scheme_pct < 100.0:
            missing = sorted(
                self.universes["encoder_schemes"]
                - self.covered["encoder_schemes"]
            )
            problems.append(
                f"encoder_schemes coverage is {scheme_pct:.1f}% "
                f"(gate demands 100%; missing: {', '.join(missing)})"
            )
        return problems
