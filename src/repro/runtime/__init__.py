"""Resilient-execution primitives for long campaigns.

The fault-injection and sweep campaigns (``repro faults``,
``repro experiment``) run thousands of seeded cases across a process
pool; a flaky worker, a hung case or a mid-run SIGKILL used to cost
the whole run.  This package holds the harness-independent pieces:

``retry``
    Exponential backoff with deterministic (seeded) jitter, plus a
    circuit breaker that downgrades a pool to serial execution after
    N consecutive worker failures.
``checkpoint``
    A JSONL write-ahead log of completed cases so an interrupted
    campaign resumes where it stopped, and atomic artifact writes
    (tmp + fsync + ``os.replace``) so a crash can never leave a
    truncated JSON report.
``deadline``
    Per-task wall-clock deadlines that work in the serial path too
    (SIGALRM on a Unix main thread, a watchdog join elsewhere).
``storage_faults``
    The storage VFS every durability syscall routes through, plus the
    seeded fault-injection shim (EIO / ENOSPC / torn appends / crash
    around rename) the crash-consistency checker drives.
"""

from repro.runtime.checkpoint import (
    CheckpointLockError,
    CheckpointLog,
    CheckpointMismatchError,
    atomic_write_text,
)
from repro.runtime.storage_faults import (
    FaultPlan,
    FaultSpec,
    FaultyVFS,
    SimulatedCrash,
    StorageVFS,
    active_vfs,
    get_vfs,
    install_vfs,
)
from repro.runtime.deadline import DeadlineExceeded, run_with_deadline
from repro.runtime.retry import (
    BackoffPolicy,
    CircuitBreaker,
    retry_call,
    retry_call_async,
)

__all__ = [
    "atomic_write_text",
    "CheckpointLockError",
    "CheckpointLog",
    "CheckpointMismatchError",
    "BackoffPolicy",
    "CircuitBreaker",
    "retry_call",
    "retry_call_async",
    "DeadlineExceeded",
    "run_with_deadline",
    "FaultPlan",
    "FaultSpec",
    "FaultyVFS",
    "SimulatedCrash",
    "StorageVFS",
    "active_vfs",
    "get_vfs",
    "install_vfs",
]
