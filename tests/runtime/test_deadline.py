"""run_with_deadline tests: enforcement, pass-through, and the
exception-hierarchy contract the campaign classifier relies on."""

import threading
import time

import pytest

from repro.errors import ReproError
from repro.runtime import DeadlineExceeded, run_with_deadline


class TestDeadlineEnforcement:
    def test_fast_call_returns_value(self):
        assert run_with_deadline(lambda: 42, seconds=5.0) == 42

    def test_hung_call_raises_deadline_exceeded(self):
        with pytest.raises(DeadlineExceeded, match="deadline"):
            run_with_deadline(
                lambda: time.sleep(5.0), seconds=0.05, what="hung case"
            )

    def test_message_names_the_task(self):
        with pytest.raises(DeadlineExceeded, match="case x:3"):
            run_with_deadline(
                lambda: time.sleep(5.0), seconds=0.05, what="case x:3"
            )

    def test_no_deadline_means_direct_call(self):
        assert run_with_deadline(lambda: "direct", seconds=None) == "direct"
        assert run_with_deadline(lambda: "direct", seconds=0) == "direct"

    def test_callee_exception_propagates(self):
        def boom():
            raise ValueError("from callee")

        with pytest.raises(ValueError, match="from callee"):
            run_with_deadline(boom, seconds=5.0)

    def test_timer_disarmed_after_success(self):
        # A completed call must not leave a pending alarm behind.
        run_with_deadline(lambda: None, seconds=0.05)
        time.sleep(0.1)  # an un-disarmed SIGALRM would fire here

    def test_watchdog_path_in_worker_thread(self):
        # Off the main thread SIGALRM is unusable; the daemon-thread
        # watchdog must enforce the deadline instead.
        outcome = {}

        def probe():
            try:
                run_with_deadline(
                    lambda: time.sleep(5.0), seconds=0.05, what="threaded"
                )
            except DeadlineExceeded as err:
                outcome["error"] = err

        worker = threading.Thread(target=probe)
        worker.start()
        worker.join(timeout=2.0)
        assert isinstance(outcome.get("error"), DeadlineExceeded)


class TestExceptionContract:
    def test_flies_past_exception_handlers(self):
        """The campaign classifies ReproError as *detected* and
        Exception as *crashed*; a timeout must be neither."""
        assert not issubclass(DeadlineExceeded, Exception)
        assert not issubclass(DeadlineExceeded, ReproError)
        assert issubclass(DeadlineExceeded, BaseException)

    def test_except_exception_does_not_catch_it(self):
        caught = None
        try:
            try:
                run_with_deadline(
                    lambda: time.sleep(5.0), seconds=0.05
                )
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("DeadlineExceeded was swallowed as Exception")
        except DeadlineExceeded as err:
            caught = err
        assert caught is not None
        assert caught.seconds == pytest.approx(0.05)
