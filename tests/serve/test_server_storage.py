"""Serve-path storage hardening: ENOSPC degradation and re-arm.

A full WAL device must not take the serve path down: jobs keep
finishing (their results are already computed — only durability is at
risk), the server sheds to memory-only journaling with a
``storage_degraded`` flight event, and the moment space returns the
backlog lands in the WAL in order.
"""

import asyncio

from repro.runtime.checkpoint import CheckpointLog
from repro.runtime.storage_faults import (
    FaultPlan,
    FaultSpec,
    FaultyVFS,
    active_vfs,
)
from repro.serve.server import EncodingServer, ServeConfig

FIR = {
    "tenant": "t0",
    "job_id": "j0",
    "kind": "encode",
    "workload": "fir",
    "block_size": 5,
    "workload_params": {"taps": 8, "samples": 48},
}


def _jobs(prefix: str, n: int) -> list[dict]:
    return [{**FIR, "job_id": f"{prefix}{i}"} for i in range(n)]


class TestEnospcDegradation:
    def test_full_wal_device_degrades_then_recovers(self, tmp_path):
        wal = tmp_path / "serve.wal"
        # Delayed allocation: writes land in cache, fsync surfaces
        # ENOSPC.  Scoped to the WAL file so nothing else breaks.
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    op="fsync", kind="enospc", path=wal.name, always=True
                )
            ]
        )
        plan.disarm()  # the disk starts healthy
        config = ServeConfig(workers=1, seed=3, wal_path=str(wal))

        async def _run():
            with active_vfs(FaultyVFS(plan)):
                async with EncodingServer(config) as server:
                    healthy = await server.run_batch(_jobs("a", 2))
                    plan.rearm()  # the device fills
                    degraded = await server.run_batch(_jobs("b", 2))
                    mid = server.status()
                    plan.disarm()  # space returns
                    recovered = await server.run_batch(_jobs("c", 2))
                    end = server.status()
                return healthy + degraded + recovered, mid, end, server

        results, mid, end, server = asyncio.run(_run())

        # Jobs kept completing throughout: a full disk risks
        # durability, never answers.
        assert [r["outcome"] for r in results] == ["ok"] * 6

        assert mid["storage"]["wal_degraded"] is True
        assert mid["storage"]["journal_backlog"] >= 1
        assert end["storage"]["wal_degraded"] is False
        assert end["storage"]["journal_backlog"] == 0
        assert server.stats["storage_degraded"] == 1
        assert server.stats["storage_recovered"] == 1

        kinds = [event["kind"] for event in server.flight.tail(200)]
        assert "storage_degraded" in kinds
        assert "storage_recovered" in kinds
        # Degradation fires once per episode, not per shed record.
        assert kinds.count("storage_degraded") == 1

        # After recovery every result — including those finished while
        # the disk was full — is durably journaled, in order.
        replayed = CheckpointLog(wal, run_key=config.run_key()).load()
        for job_id in ["a0", "a1", "b0", "b1", "c0", "c1"]:
            assert any(job_id in key for key in replayed), job_id

    def test_shutdown_while_degraded_flushes_on_close(self, tmp_path):
        wal = tmp_path / "serve.wal"
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    op="fsync", kind="enospc", path=wal.name, always=True
                )
            ]
        )
        plan.disarm()
        config = ServeConfig(workers=1, seed=3, wal_path=str(wal))

        async def _run():
            with active_vfs(FaultyVFS(plan)):
                async with EncodingServer(config) as server:
                    await server.run_batch(_jobs("a", 2))
                    plan.rearm()
                    await server.run_batch(_jobs("b", 1))
                    assert server.status()["storage"]["wal_degraded"]
                    plan.disarm()  # space frees just before shutdown
                return server

        asyncio.run(_run())
        # stop() gave the backlog one last flush: nothing was lost.
        replayed = CheckpointLog(wal, run_key=config.run_key()).load()
        assert any("b0" in key for key in replayed)
