"""Tests for the bulk ``decode_trace`` bitplane fast path.

``FetchDecoder.decode_trace`` routes clean sequential basic-block
occurrences through one lane-packed bitplane scan per occurrence.  The
contract is *bit-identical observable behaviour* to the per-fetch
scalar walk: same decoded words, same architectural counters, same
exceptions — across hot-loop revisits, partial occurrences, branchy
interleavings, passthrough gaps, truncation, and corrupted images.
"""

from __future__ import annotations

import pytest

from repro.errors import DecodeFault
from repro.hw.fetch_decoder import FetchDecoder
from tests.strategies import rng_for, seeded_deployment

BLOCK_SIZES = (2, 4, 5, 7)


def _decoder_for(deployment):
    return FetchDecoder(
        deployment.tt,
        deployment.bbit,
        deployment.block_size,
        encoded_region=deployment.encoded_region,
    )


def _stats(decoder):
    return {
        "decoded": decoder.decoded_instructions,
        "passthrough": decoder.passthrough_instructions,
        "tt_reads": decoder.tt_reads,
    }


def _both_paths(deployment, trace, lookup=None, finalize=False):
    """Run the bulk and scalar walks on fresh decoders; return
    ((words, stats), (words, stats))."""
    lookup = lookup or deployment.image.__getitem__
    results = []
    for use_bitplane in (True, False):
        decoder = _decoder_for(deployment)
        words = decoder.decode_trace(
            trace, lookup, finalize=finalize, use_bitplane=use_bitplane
        )
        results.append((words, _stats(decoder)))
    return results


def _golden(deployment, trace):
    return [deployment.golden_lookup(pc) for pc in trace]


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_sequential_blocks_match_scalar(block_size):
    deployment = seeded_deployment(f"seq:{block_size}", block_size)
    trace = [
        pc
        for which in range(len(deployment.bases))
        for pc in deployment.trace_for(which)
    ]
    (bulk, bulk_stats), (scalar, scalar_stats) = _both_paths(
        deployment, trace
    )
    assert bulk == _golden(deployment, trace)
    assert bulk == scalar
    assert bulk_stats == scalar_stats


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_hot_loop_revisits_use_memo(block_size):
    # The same block fetched many times: the memo serves repeats, and
    # the architectural counters still advance per occurrence.
    deployment = seeded_deployment(f"hot:{block_size}", block_size)
    once = deployment.trace_for(0)
    trace = once * 25
    (bulk, bulk_stats), (scalar, scalar_stats) = _both_paths(
        deployment, trace
    )
    assert bulk == scalar == _golden(deployment, trace)
    assert bulk_stats == scalar_stats
    assert bulk_stats["decoded"] == len(trace)


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_branchy_interleaving_matches_scalar(block_size):
    # Random walk over the deployed blocks: full runs, early exits
    # (taken branches), immediate re-entries.
    deployment = seeded_deployment(f"branchy:{block_size}", block_size, 4)
    rng = rng_for("branchy-trace", block_size)
    trace = []
    for _ in range(60):
        which = rng.randrange(len(deployment.bases))
        full = deployment.trace_for(which)
        cut = rng.randint(1, len(full))
        trace.extend(full[:cut])
    (bulk, bulk_stats), (scalar, scalar_stats) = _both_paths(
        deployment, trace
    )
    assert bulk == scalar
    assert bulk_stats == scalar_stats


def test_passthrough_gap_between_blocks():
    # Unencoded addresses between block runs take the passthrough
    # path on both walks; counters agree.
    deployment = seeded_deployment("gap", 5)
    outside = 0x700000
    image = dict(deployment.image)
    plain = {outside + 4 * i: 0x12345678 + i for i in range(3)}
    image.update(plain)
    trace = (
        deployment.trace_for(0)
        + sorted(plain)
        + deployment.trace_for(1)
    )
    (bulk, bulk_stats), (scalar, scalar_stats) = _both_paths(
        deployment, trace, lookup=image.__getitem__
    )
    assert bulk == scalar
    assert bulk_stats == scalar_stats
    assert bulk_stats["passthrough"] == len(plain)


def test_mid_block_entry_raises_on_both_paths():
    deployment = seeded_deployment("midblock", 4)
    # Enter at the second instruction: inside the encoded region but
    # with no BBIT hit.
    trace = deployment.trace_for(0)[1:]
    for use_bitplane in (True, False):
        decoder = _decoder_for(deployment)
        with pytest.raises(DecodeFault, match="mid-block entry"):
            decoder.decode_trace(
                trace,
                deployment.image.__getitem__,
                use_bitplane=use_bitplane,
            )


def test_truncated_trace_finalize_parity():
    # A trace that ends mid-block: without finalize both paths return
    # the prefix; with finalize both raise the same truncation fault.
    deployment = seeded_deployment("trunc", 5)
    full = deployment.trace_for(0)
    assert len(full) >= 3
    trace = full[:-1]
    (bulk, bulk_stats), (scalar, scalar_stats) = _both_paths(
        deployment, trace
    )
    assert bulk == scalar == _golden(deployment, trace)
    assert bulk_stats == scalar_stats

    messages = []
    for use_bitplane in (True, False):
        decoder = _decoder_for(deployment)
        with pytest.raises(DecodeFault) as excinfo:
            decoder.decode_trace(
                trace,
                deployment.image.__getitem__,
                finalize=True,
                use_bitplane=use_bitplane,
            )
        messages.append(str(excinfo.value))
    assert messages[0] == messages[1]


@pytest.mark.parametrize("block_size", (4, 7))
def test_corrupted_image_decodes_identically(block_size):
    # A flipped stored bit yields *wrong* words — but the same wrong
    # words on both paths (the scan is a pure function of the image).
    deployment = seeded_deployment(f"corrupt:{block_size}", block_size)
    trace = deployment.trace_for(0)
    image = dict(deployment.image)
    victim = trace[len(trace) // 2]
    image[victim] ^= 1 << 13
    (bulk, bulk_stats), (scalar, scalar_stats) = _both_paths(
        deployment, trace, lookup=image.__getitem__
    )
    assert bulk == scalar
    assert bulk_stats == scalar_stats
    assert bulk != _golden(deployment, trace)


def test_scalar_fallback_modes_bypass_bulk():
    # use_bitplane=False and non-strict modes must not touch the bulk
    # path; the decode still round-trips.
    deployment = seeded_deployment("modes", 5)
    trace = deployment.trace_for(0)
    golden = _golden(deployment, trace)

    decoder = _decoder_for(deployment)
    assert (
        decoder.decode_trace(
            trace, deployment.image.__getitem__, use_bitplane=False
        )
        == golden
    )

    recover = FetchDecoder(
        deployment.tt,
        deployment.bbit,
        deployment.block_size,
        encoded_region=deployment.encoded_region,
        mode="recover",
        golden_lookup=deployment.golden_lookup,
    )
    assert (
        recover.decode_trace(trace, deployment.image.__getitem__) == golden
    )


def test_reuse_across_traces_resets_cleanly():
    # decode_trace resets the engine: back-to-back calls on one
    # decoder behave like calls on fresh decoders.
    deployment = seeded_deployment("reuse", 5)
    decoder = _decoder_for(deployment)
    for which in (0, 1, 0, 2):
        trace = deployment.trace_for(which)
        assert decoder.decode_trace(
            trace, deployment.image.__getitem__
        ) == _golden(deployment, trace)
