"""Property-based tests of the full hardware decode path.

Random multi-block configurations, random block sizes, random revisit
orders — the TT/BBIT/fetch-decoder stack must restore every word,
always.  This is the hardware-level analogue of the stream-codec
round-trip properties.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.program_codec import encode_basic_block
from repro.hw.bbit import BasicBlockIdentificationTable, BBITEntry
from repro.hw.fetch_decoder import FetchDecoder
from repro.hw.tt import TransformationTable

blocks_strategy = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        min_size=1,
        max_size=18,
    ),
    min_size=1,
    max_size=4,
)


def _materialise_many(block_words, block_size):
    # Worst case: 4 blocks x 18 words at k=2 is ~17 segments per
    # block, so 64 entries can genuinely run out.
    tt = TransformationTable(capacity=128)
    bbit = BasicBlockIdentificationTable(capacity=16)
    image = {}
    bases = []
    for i, words in enumerate(block_words):
        base = 0x400000 + 0x1000 * i
        encoding = encode_basic_block(words, block_size)
        index = tt.allocate(encoding)
        bbit.install(
            BBITEntry(pc=base, tt_index=index, num_instructions=len(words))
        )
        for offset, word in enumerate(encoding.encoded_words):
            image[base + 4 * offset] = word
        bases.append(base)
    return tt, bbit, image, bases


@given(blocks_strategy, st.integers(min_value=2, max_value=7))
@settings(max_examples=120, deadline=None)
def test_multi_block_roundtrip(block_words, block_size):
    tt, bbit, image, bases = _materialise_many(block_words, block_size)
    decoder = FetchDecoder(tt, bbit, block_size)
    for base, words in zip(bases, block_words):
        decoded = [
            decoder.fetch(base + 4 * i, image[base + 4 * i])
            for i in range(len(words))
        ]
        assert decoded == words


@given(
    blocks_strategy,
    st.integers(min_value=2, max_value=7),
    st.data(),
)
@settings(max_examples=80, deadline=None)
def test_random_revisit_order(block_words, block_size, data):
    """Blocks executed in arbitrary repeated order (like a real CFG
    walk) still decode exactly; every entry re-synchronises."""
    tt, bbit, image, bases = _materialise_many(block_words, block_size)
    decoder = FetchDecoder(tt, bbit, block_size)
    visits = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(block_words) - 1),
            min_size=1,
            max_size=8,
        )
    )
    for which in visits:
        base = bases[which]
        words = block_words[which]
        decoded = [
            decoder.fetch(base + 4 * i, image[base + 4 * i])
            for i in range(len(words))
        ]
        assert decoded == words


@given(blocks_strategy, st.integers(min_value=2, max_value=7), st.data())
@settings(max_examples=60, deadline=None)
def test_partial_execution_then_reentry(block_words, block_size, data):
    """Leaving a block early (taken branch) never corrupts later
    decodes."""
    tt, bbit, image, bases = _materialise_many(block_words, block_size)
    decoder = FetchDecoder(tt, bbit, block_size)
    base = bases[0]
    words = block_words[0]
    cut = data.draw(st.integers(min_value=1, max_value=len(words)))
    for i in range(cut):
        assert decoder.fetch(base + 4 * i, image[base + 4 * i]) == words[i]
    # Branch to an unencoded address, then execute the block fully.
    assert decoder.fetch(0x700000, 0x12345678) == 0x12345678
    decoded = [
        decoder.fetch(base + 4 * i, image[base + 4 * i])
        for i in range(len(words))
    ]
    assert decoded == words
