"""Composable fault injectors for the decode/deploy path.

Each model corrupts one aspect of a freshly materialised deployment —
the TT, the BBIT, the encoded image, or the fetch stream itself — the
way a single-event upset or a loader bug would: *without* updating the
parity words the legitimate write path maintains.  Injection is
deterministic under a seed: the same :class:`random.Random` produces
the same corruption on the same target.

Taxonomy (see ``docs/robustness.md``):

========================  ==================================================
model                     corruption
========================  ==================================================
``tt_selector_flip``      one bit of one 3-bit selector in one TT row
``tt_end_flip``           the E bit of one TT row
``tt_count_corruption``   the CT field of one TT row
``tt_double_bit_flip``    two distinct stored bits of one TT row
``bbit_wrong_tt_index``   a BBIT row points at the wrong TT base index
``bbit_wrong_length``     a BBIT row's ``num_instructions`` is off
``bbit_stale_pc``         a BBIT row's CAM tag names a stale PC
``bbit_double_bit_flip``  two distinct non-tag bits of one BBIT row
``image_bit_flip``        one stored bit of one encoded word
``image_3bit_flip``       three stored bits of one encoded word
``mid_block_entry``       the fetch stream jumps into an encoded block
``early_exit_reenter``    exit an encoded block early, re-enter mid-block
``trace_truncation``      the fetch stream ends while a block is active
``scheme_tag_corruption`` a mixed-scheme region's tag names no backend
========================  ==================================================

Models whose corruption the hardened path *guarantees* to detect or
recover from (SEC-DED-protected table rows, protocol checks) carry
``protected = True``; encoded-image flips do not — the image is digest
-checked at load time but has no per-word runtime protection, exactly
like instruction SRAM without ECC.

With SEC-DED rows (PR 4) the single-bit table models
(``tt_selector_flip``, ``tt_end_flip``, ``tt_count_corruption``,
``bbit_wrong_tt_index``) are now *corrected* transparently rather than
detected; the ``*_double_bit_flip`` models exercise the uncorrectable
path (quarantine → detect / repair / degrade).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.hw import integrity
from repro.hw.bbit import BasicBlockIdentificationTable, BBITEntry
from repro.hw.tt import TTEntry, TransformationTable


@dataclass
class RunState:
    """The mutable deployment one fault-injection trial runs against:
    freshly built tables, a private copy of the stored image and the
    fetch trace.  Injectors mutate this state in place."""

    tt: TransformationTable
    bbit: BasicBlockIdentificationTable
    image: list[int]
    trace: list[int]
    encoded_region: set[int]
    text_base: int
    #: Mixed-scheme bundle state (empty for classic deployments):
    #: ``pc -> scheme tag``, ``tag -> decode_word | None``, and the
    #: raw per-region metadata the bundle shipped (injector targets).
    region_schemes: dict = field(default_factory=dict)
    scheme_word_decoders: dict = field(default_factory=dict)
    regions: list = field(default_factory=list)

    def word_index(self, pc: int) -> int:
        return (pc - self.text_base) >> 2

    def blocks(self) -> list[BBITEntry]:
        """Installed BBIT rows, in PC order (injector targets)."""
        return sorted(self.bbit._by_pc.values(), key=lambda e: e.pc)

    def neutral_pc(self) -> int | None:
        """Some fetchable address *outside* every encoded block (used
        by protocol injectors to force a non-sequential exit)."""
        for index in range(len(self.image)):
            pc = self.text_base + 4 * index
            if pc not in self.encoded_region:
                return pc
        return None


@dataclass(frozen=True)
class InjectionRecord:
    """What one injector actually did (goes into the JSON report)."""

    model: str
    applicable: bool
    detail: dict = field(default_factory=dict)


class FaultModel:
    """Base class: a named, seeded corruption of a :class:`RunState`."""

    name = "abstract"
    #: True when the hardened decode path guarantees detection or
    #: recovery once the corruption manifests during the trace.
    protected = True

    def inject(self, state: RunState, rng: random.Random) -> InjectionRecord:
        raise NotImplementedError

    def _done(self, **detail) -> InjectionRecord:
        return InjectionRecord(self.name, True, detail)

    def _skip(self, reason: str) -> InjectionRecord:
        return InjectionRecord(self.name, False, {"reason": reason})


# ----------------------------------------------------------------------
# Transformation Table corruptions
# ----------------------------------------------------------------------


class _TTRowFault(FaultModel):
    """Helper: pick a TT row and replace it, leaving parity stale."""

    def _pick_row(self, state: RunState, rng: random.Random):
        if not state.tt.entries:
            return None, None
        index = rng.randrange(len(state.tt.entries))
        return index, state.tt.entries[index]

    @staticmethod
    def _overwrite(state: RunState, index: int, entry: TTEntry) -> None:
        # Deliberately bypasses TransformationTable.write(): an SEU
        # flips the stored bits without refreshing the parity word.
        state.tt.entries[index] = entry


class TTSelectorFlip(_TTRowFault):
    name = "tt_selector_flip"

    def inject(self, state, rng):
        index, entry = self._pick_row(state, rng)
        if entry is None:
            return self._skip("TT is empty")
        line = rng.randrange(entry.width)
        bit = rng.randrange(3)
        selectors = list(entry.selectors)
        selectors[line] ^= 1 << bit
        self._overwrite(
            state,
            index,
            TTEntry(
                selectors=tuple(selectors), end=entry.end, count=entry.count
            ),
        )
        return self._done(tt_index=index, line=line, selector_bit=bit)


class TTEndFlip(_TTRowFault):
    name = "tt_end_flip"

    def inject(self, state, rng):
        index, entry = self._pick_row(state, rng)
        if entry is None:
            return self._skip("TT is empty")
        self._overwrite(
            state,
            index,
            TTEntry(
                selectors=entry.selectors, end=not entry.end, count=entry.count
            ),
        )
        return self._done(tt_index=index, end=not entry.end)


class TTCountCorruption(_TTRowFault):
    name = "tt_count_corruption"

    def inject(self, state, rng):
        index, entry = self._pick_row(state, rng)
        if entry is None:
            return self._skip("TT is empty")
        corrupted = entry.count ^ (1 << rng.randrange(4))  # CT is 4 bits
        self._overwrite(
            state,
            index,
            TTEntry(
                selectors=entry.selectors, end=entry.end, count=corrupted
            ),
        )
        return self._done(tt_index=index, count=corrupted, was=entry.count)


class TTDoubleBitFlip(_TTRowFault):
    """Two distinct stored bits of one TT row flip — past SEC-DED's
    correction power, so the row must be quarantined (detected,
    repaired from the bundle, or degraded; never served)."""

    name = "tt_double_bit_flip"

    def inject(self, state, rng):
        index, entry = self._pick_row(state, rng)
        if entry is None:
            return self._skip("TT is empty")
        row_bits = integrity.tt_row_bits(entry.width)
        positions = rng.sample(range(row_bits), 2)
        data = integrity.tt_row_data(entry.selectors, entry.end, entry.count)
        for position in positions:
            data ^= 1 << position
        selectors, end, count = integrity.tt_row_fields(data, entry.width)
        self._overwrite(
            state,
            index,
            TTEntry(selectors=selectors, end=end, count=count),
        )
        return self._done(tt_index=index, bits=sorted(positions))


# ----------------------------------------------------------------------
# BBIT corruptions
# ----------------------------------------------------------------------


class _BBITRowFault(FaultModel):
    @staticmethod
    def _overwrite(state: RunState, pc: int, entry: BBITEntry) -> None:
        # Bypasses install(): the stored parity word goes stale.
        state.bbit._by_pc[pc] = entry

    def _pick_row(self, state: RunState, rng: random.Random):
        blocks = state.blocks()
        if not blocks:
            return None
        return rng.choice(blocks)


class BBITWrongTTIndex(_BBITRowFault):
    name = "bbit_wrong_tt_index"

    def inject(self, state, rng):
        entry = self._pick_row(state, rng)
        if entry is None:
            return self._skip("BBIT is empty")
        corrupted = entry.tt_index ^ (1 << rng.randrange(4))
        self._overwrite(
            state,
            entry.pc,
            BBITEntry(
                pc=entry.pc,
                tt_index=corrupted,
                num_instructions=entry.num_instructions,
            ),
        )
        return self._done(pc=entry.pc, tt_index=corrupted, was=entry.tt_index)


class BBITWrongLength(_BBITRowFault):
    name = "bbit_wrong_length"

    def inject(self, state, rng):
        entry = self._pick_row(state, rng)
        if entry is None:
            return self._skip("BBIT is empty")
        corrupted = max(1, entry.num_instructions ^ (1 << rng.randrange(4)))
        if corrupted == entry.num_instructions:
            corrupted += 1
        self._overwrite(
            state,
            entry.pc,
            BBITEntry(
                pc=entry.pc,
                tt_index=entry.tt_index,
                num_instructions=corrupted,
            ),
        )
        return self._done(
            pc=entry.pc,
            num_instructions=corrupted,
            was=entry.num_instructions,
        )


class BBITStalePC(_BBITRowFault):
    name = "bbit_stale_pc"

    def inject(self, state, rng):
        entry = self._pick_row(state, rng)
        if entry is None:
            return self._skip("BBIT is empty")
        stale = entry.pc + 4 * rng.randrange(1, 4)
        # The CAM tag flips: the row now matches a stale PC.  The
        # parity word travels with the row (it is stored in the row),
        # but was computed over the original tag.
        del state.bbit._by_pc[entry.pc]
        state.bbit._by_pc[stale] = BBITEntry(
            pc=stale,
            tt_index=entry.tt_index,
            num_instructions=entry.num_instructions,
        )
        if entry.pc in state.bbit._parity:
            state.bbit._parity[stale] = state.bbit._parity.pop(entry.pc)
        return self._done(pc=stale, was=entry.pc)


class BBITDoubleBitFlip(_BBITRowFault):
    """Two distinct stored bits of one BBIT row flip, both outside the
    CAM tag (a double-flipped tag simply never matches the probe line,
    i.e. it degenerates to a miss rather than exercising the code)."""

    name = "bbit_double_bit_flip"

    def inject(self, state, rng):
        entry = self._pick_row(state, rng)
        if entry is None:
            return self._skip("BBIT is empty")
        positions = rng.sample(
            range(
                integrity.BBIT_PC_BITS,
                integrity.bbit_row_bits(),
            ),
            2,
        )
        data = integrity.bbit_row_data(
            entry.pc, entry.tt_index, entry.num_instructions
        )
        for position in positions:
            data ^= 1 << position
        pc, tt_index, num_instructions = integrity.bbit_row_fields(data)
        self._overwrite(
            state,
            entry.pc,
            BBITEntry(
                pc=pc, tt_index=tt_index, num_instructions=num_instructions
            ),
        )
        return self._done(pc=entry.pc, bits=sorted(positions))


# ----------------------------------------------------------------------
# Encoded-image corruptions
# ----------------------------------------------------------------------


class ImageBitFlip(FaultModel):
    """Flip ``bits`` distinct stored bits of one encoded word.  Not
    ``protected``: the image is digest-checked at bundle load, but a
    post-load upset has no per-word runtime check to trip."""

    protected = False

    def __init__(self, bits: int = 1):
        if bits < 1:
            raise ValueError("need at least one bit to flip")
        self.bits = bits
        self.name = (
            "image_bit_flip" if bits == 1 else f"image_{bits}bit_flip"
        )

    def inject(self, state, rng):
        candidates = sorted(state.encoded_region)
        if not candidates:
            return self._skip("no encoded words in the image")
        pc = rng.choice(candidates)
        lines = rng.sample(range(32), self.bits)
        mask = 0
        for line in lines:
            mask |= 1 << line
        state.image[state.word_index(pc)] ^= mask
        return self._done(pc=pc, mask=mask, lines=sorted(lines))


# ----------------------------------------------------------------------
# Fetch-protocol violations
# ----------------------------------------------------------------------


class _ProtocolFault(FaultModel):
    @staticmethod
    def _pick_block(state, rng, min_instructions=3):
        blocks = [
            e
            for e in state.blocks()
            if e.num_instructions >= min_instructions
        ]
        return rng.choice(blocks) if blocks else None


class MidBlockEntry(_ProtocolFault):
    """A (mis-predicted/corrupted) branch lands in the middle of an
    encoded block: the appended fetches enter at instruction ``j > 0``
    and run to the block's end."""

    name = "mid_block_entry"

    def inject(self, state, rng):
        entry = self._pick_block(state, rng)
        if entry is None:
            return self._skip("no encoded block with >= 3 instructions")
        neutral = state.neutral_pc()
        if neutral is None:
            return self._skip("image has no unencoded word to detour through")
        j = rng.randrange(1, entry.num_instructions)
        mid_pc = entry.pc + 4 * j
        tail = [
            entry.pc + 4 * i for i in range(j, entry.num_instructions)
        ]
        state.trace.extend([neutral] + tail)
        return self._done(pc=mid_pc, block=entry.pc, offset=j)


class EarlyExitReenter(_ProtocolFault):
    """The fetch stream leaves an encoded block early (non-sequential
    fetch) and then resumes exactly where it left off — mid-block,
    with the decoder's history long gone."""

    name = "early_exit_reenter"

    def inject(self, state, rng):
        entry = self._pick_block(state, rng)
        if entry is None:
            return self._skip("no encoded block with >= 3 instructions")
        neutral = state.neutral_pc()
        if neutral is None:
            return self._skip("image has no unencoded word to detour through")
        try:
            start = state.trace.index(entry.pc)
        except ValueError:
            return self._skip("chosen block never entered by the trace")
        j = rng.randrange(1, entry.num_instructions)
        state.trace[start + j : start + j] = [neutral]
        return self._done(block=entry.pc, offset=j, detour=neutral)


class TraceTruncation(_ProtocolFault):
    """The fetch stream ends while a block is still being decoded
    (e.g. a watchdog reset mid-loop): detected by the decoder's
    end-of-stream check."""

    name = "trace_truncation"

    def inject(self, state, rng):
        entry = self._pick_block(state, rng, min_instructions=2)
        if entry is None:
            return self._skip("no encoded block with >= 2 instructions")
        try:
            start = state.trace.index(entry.pc)
        except ValueError:
            return self._skip("chosen block never entered by the trace")
        j = rng.randrange(1, entry.num_instructions)
        del state.trace[start + j :]
        return self._done(block=entry.pc, kept=j)


# ----------------------------------------------------------------------
# Mixed-scheme bundle corruptions
# ----------------------------------------------------------------------


class SchemeTagCorruption(FaultModel):
    """One mixed-scheme region's per-region scheme tag is rewritten to
    a name no backend registered — a loader bug or a metadata upset.
    Every fetch into the region then carries an unhonourable tag:
    strict mode raises :class:`~repro.errors.SchemeTagError`, recover
    and degraded modes serve the region from the golden bundle.  Not
    applicable to classic single-scheme deployments."""

    name = "scheme_tag_corruption"
    protected = True

    #: Deliberately not in any encoder registry, and not ``ttbbit`` or
    #: ``raw`` either — the decoder must treat it as a fault.
    BOGUS_TAG = "zz-corrupted"

    def inject(self, state, rng):
        if not state.regions or not state.region_schemes:
            return self._skip("deployment has no mixed-scheme regions")
        region = rng.choice(state.regions)
        rewritten = []
        for block in region["blocks"]:
            pc = int(block["pc"])
            for i in range(int(block["num_instructions"])):
                addr = pc + 4 * i
                if addr in state.region_schemes:
                    state.region_schemes[addr] = self.BOGUS_TAG
                    rewritten.append(addr)
        if not rewritten:
            return self._skip("chosen region tags no addresses")
        return self._done(
            scheme=str(region["scheme"]),
            tag=self.BOGUS_TAG,
            addresses=len(rewritten),
            first_pc=min(rewritten),
        )


#: The standard campaign sweep, in report order.
DEFAULT_MODELS: tuple[FaultModel, ...] = (
    TTSelectorFlip(),
    TTEndFlip(),
    TTCountCorruption(),
    TTDoubleBitFlip(),
    BBITWrongTTIndex(),
    BBITWrongLength(),
    BBITStalePC(),
    BBITDoubleBitFlip(),
    ImageBitFlip(bits=1),
    ImageBitFlip(bits=3),
    MidBlockEntry(),
    EarlyExitReenter(),
    TraceTruncation(),
    SchemeTagCorruption(),
)

MODELS_BY_NAME = {model.name: model for model in DEFAULT_MODELS}
