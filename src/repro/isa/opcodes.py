"""Instruction specifications: formats, opcodes and operand syntax.

The encoding follows MIPS I field layout:

===========  =======================================================
Format       Fields (msb..lsb)
===========  =======================================================
``R``        op(6)=0  rs(5) rt(5) rd(5) shamt(5) funct(6)
``I``        op(6)    rs(5) rt(5) imm(16)
``J``        op(6)    target(26)
``RI``       op(6)=1  rs(5) cond(5) imm(16)          (bltz/bgez)
``FR``       op(6)=17 fmt(5) ft(5) fs(5) fd(5) funct(6)
``FB``       op(6)=17 fmt(5)=8 flag/tf(5) imm(16)    (bc1f/bc1t)
``FM``       op(6)=17 fmt(5) rt(5) fs(5) 0(11)       (mtc1/mfc1)
===========  =======================================================

``syntax`` strings describe assembly operand order; the assembler and
disassembler share them.  Recognised operand kinds:

``rd rs rt shamt`` integer register / shift fields,
``imm``            16-bit immediate,
``mem``            ``offset(base)`` addressing (fills imm + rs),
``target``         26-bit jump target (label),
``branch``         16-bit PC-relative branch (label),
``fd fs ft``       FP register fields.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one machine instruction."""

    name: str
    fmt: str  # 'R', 'I', 'J', 'RI', 'FR', 'FB', 'FM'
    opcode: int
    funct: int = 0
    cop_fmt: int = 0  # COP1 fmt field (0x11 = double, 0x14 = word)
    cond: int = 0  # regimm condition field (bltz=0, bgez=1)
    syntax: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.fmt not in ("R", "I", "J", "RI", "FR", "FB", "FM"):
            raise ValueError(f"unknown format {self.fmt!r}")


OP_SPECIAL = 0
OP_REGIMM = 1
OP_COP1 = 0x11
FMT_D = 0x11  # COP1 double-precision
FMT_W = 0x14  # COP1 word (for conversions)
FMT_BC = 0x08  # COP1 branch-on-condition
FMT_MFC1 = 0x00
FMT_MTC1 = 0x04


def _r(name: str, funct: int, syntax: str) -> InstructionSpec:
    return InstructionSpec(name, "R", OP_SPECIAL, funct=funct, syntax=tuple(syntax.split()))


def _i(name: str, opcode: int, syntax: str) -> InstructionSpec:
    return InstructionSpec(name, "I", opcode, syntax=tuple(syntax.split()))


def _j(name: str, opcode: int) -> InstructionSpec:
    return InstructionSpec(name, "J", opcode, syntax=("target",))


def _ri(name: str, cond: int) -> InstructionSpec:
    return InstructionSpec(name, "RI", OP_REGIMM, cond=cond, syntax=("rs", "branch"))


def _fr(name: str, funct: int, syntax: str, cop_fmt: int = FMT_D) -> InstructionSpec:
    return InstructionSpec(
        name, "FR", OP_COP1, funct=funct, cop_fmt=cop_fmt, syntax=tuple(syntax.split())
    )


_SPECS: tuple[InstructionSpec, ...] = (
    # --- R-type integer ---------------------------------------------------
    _r("sll", 0x00, "rd rt shamt"),
    _r("srl", 0x02, "rd rt shamt"),
    _r("sra", 0x03, "rd rt shamt"),
    _r("sllv", 0x04, "rd rt rs"),
    _r("srlv", 0x06, "rd rt rs"),
    _r("srav", 0x07, "rd rt rs"),
    _r("jr", 0x08, "rs"),
    _r("jalr", 0x09, "rd rs"),
    _r("syscall", 0x0C, ""),
    _r("mfhi", 0x10, "rd"),
    _r("mflo", 0x12, "rd"),
    _r("mthi", 0x11, "rs"),
    _r("mtlo", 0x13, "rs"),
    _r("mult", 0x18, "rs rt"),
    _r("multu", 0x19, "rs rt"),
    _r("div", 0x1A, "rs rt"),
    _r("divu", 0x1B, "rs rt"),
    _r("add", 0x20, "rd rs rt"),
    _r("addu", 0x21, "rd rs rt"),
    _r("sub", 0x22, "rd rs rt"),
    _r("subu", 0x23, "rd rs rt"),
    _r("and", 0x24, "rd rs rt"),
    _r("or", 0x25, "rd rs rt"),
    _r("xor", 0x26, "rd rs rt"),
    _r("nor", 0x27, "rd rs rt"),
    _r("slt", 0x2A, "rd rs rt"),
    _r("sltu", 0x2B, "rd rs rt"),
    # --- regimm branches --------------------------------------------------
    _ri("bltz", 0x00),
    _ri("bgez", 0x01),
    # --- I-type -----------------------------------------------------------
    _i("beq", 0x04, "rs rt branch"),
    _i("bne", 0x05, "rs rt branch"),
    _i("blez", 0x06, "rs branch"),
    _i("bgtz", 0x07, "rs branch"),
    _i("addi", 0x08, "rt rs imm"),
    _i("addiu", 0x09, "rt rs imm"),
    _i("slti", 0x0A, "rt rs imm"),
    _i("sltiu", 0x0B, "rt rs imm"),
    _i("andi", 0x0C, "rt rs imm"),
    _i("ori", 0x0D, "rt rs imm"),
    _i("xori", 0x0E, "rt rs imm"),
    _i("lui", 0x0F, "rt imm"),
    _i("lb", 0x20, "rt mem"),
    _i("lh", 0x21, "rt mem"),
    _i("lw", 0x23, "rt mem"),
    _i("lbu", 0x24, "rt mem"),
    _i("lhu", 0x25, "rt mem"),
    _i("sb", 0x28, "rt mem"),
    _i("sh", 0x29, "rt mem"),
    _i("sw", 0x2B, "rt mem"),
    _i("lwc1", 0x31, "ft mem"),
    _i("ldc1", 0x35, "ft mem"),
    _i("swc1", 0x39, "ft mem"),
    _i("sdc1", 0x3D, "ft mem"),
    # --- J-type -----------------------------------------------------------
    _j("j", 0x02),
    _j("jal", 0x03),
    # --- COP1 double arithmetic -------------------------------------------
    _fr("add.d", 0x00, "fd fs ft"),
    _fr("sub.d", 0x01, "fd fs ft"),
    _fr("mul.d", 0x02, "fd fs ft"),
    _fr("div.d", 0x03, "fd fs ft"),
    _fr("sqrt.d", 0x04, "fd fs"),
    _fr("abs.d", 0x05, "fd fs"),
    _fr("mov.d", 0x06, "fd fs"),
    _fr("neg.d", 0x07, "fd fs"),
    _fr("cvt.w.d", 0x24, "fd fs"),  # double -> int (truncating)
    _fr("cvt.d.w", 0x21, "fd fs", cop_fmt=FMT_W),  # int -> double
    _fr("c.eq.d", 0x32, "fs ft"),
    _fr("c.lt.d", 0x3C, "fs ft"),
    _fr("c.le.d", 0x3E, "fs ft"),
    # --- COP1 moves and branches -------------------------------------------
    InstructionSpec("mfc1", "FM", OP_COP1, cop_fmt=FMT_MFC1, syntax=("rt", "fs")),
    InstructionSpec("mtc1", "FM", OP_COP1, cop_fmt=FMT_MTC1, syntax=("rt", "fs")),
    InstructionSpec("bc1f", "FB", OP_COP1, cop_fmt=FMT_BC, cond=0, syntax=("branch",)),
    InstructionSpec("bc1t", "FB", OP_COP1, cop_fmt=FMT_BC, cond=1, syntax=("branch",)),
)

#: Specs indexed by mnemonic.
SPECS_BY_NAME: dict[str, InstructionSpec] = {s.name: s for s in _SPECS}

#: R-type specs by funct field.
R_BY_FUNCT: dict[int, InstructionSpec] = {
    s.funct: s for s in _SPECS if s.fmt == "R"
}

#: I/J-type specs by opcode.
IJ_BY_OPCODE: dict[int, InstructionSpec] = {
    s.opcode: s for s in _SPECS if s.fmt in ("I", "J")
}

#: regimm specs by condition field.
RI_BY_COND: dict[int, InstructionSpec] = {
    s.cond: s for s in _SPECS if s.fmt == "RI"
}

#: COP1 arithmetic by (fmt, funct).
FR_BY_KEY: dict[tuple[int, int], InstructionSpec] = {
    (s.cop_fmt, s.funct): s for s in _SPECS if s.fmt == "FR"
}

#: Mnemonics that end a basic block (for CFG leader detection).
CONTROL_TRANSFER = {
    "j",
    "jal",
    "jr",
    "jalr",
    "beq",
    "bne",
    "blez",
    "bgtz",
    "bltz",
    "bgez",
    "bc1f",
    "bc1t",
    "syscall",
}

#: Conditional branches (fall-through successor exists).
CONDITIONAL_BRANCHES = {
    "beq",
    "bne",
    "blez",
    "bgtz",
    "bltz",
    "bgez",
    "bc1f",
    "bc1t",
}
