"""The fetch-path decode engine (Section 7.2, Figure 5).

Walks a fetch stream exactly as the hardware would:

* On every fetch the PC is matched against the BBIT.  A hit activates
  decoding for that basic block: the entry supplies the base TT index,
  a segment-position counter resets, and the per-line one-bit history
  registers load from the first (pass-through) instruction.
* While active, each fetched word is restored by applying the current
  TT entry's per-line transformations to the stored word and the
  previous *decoded* word; the segment counter advances to the next TT
  entry every ``k - 1`` instructions (one-bit overlap).
* The entry with the E bit set finishes after CT decoded instructions;
  the engine then deactivates until the next BBIT hit.
* A non-sequential fetch (taken branch out of the block) also
  deactivates the engine; the new PC immediately re-probes the BBIT.

Fetches that miss the BBIT pass through unchanged — the identity
treatment for unencoded code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.bbit import BasicBlockIdentificationTable
from repro.hw.tt import TransformationTable


class DecodeFault(RuntimeError):
    """Raised when the fetch stream violates the decode protocol,
    e.g. jumping into the middle of an encoded basic block."""


@dataclass
class _ActiveBlock:
    base_tt_index: int
    start_pc: int
    instructions_total: int
    index: int  # instruction index within the basic block


class FetchDecoder:
    """Behavioural model of the decode hardware on the fetch path."""

    def __init__(
        self,
        tt: TransformationTable,
        bbit: BasicBlockIdentificationTable,
        block_size: int,
        encoded_region: set[int] | None = None,
    ):
        if block_size < 2:
            raise ValueError("block size must be >= 2")
        self.tt = tt
        self.bbit = bbit
        self.block_size = block_size
        #: Addresses whose stored words are encoded; used to detect
        #: protocol violations (entering an encoded block mid-way).
        self.encoded_region = encoded_region or set()
        self._active: _ActiveBlock | None = None
        self._history_word = 0
        self._expected_pc: int | None = None
        self.decoded_instructions = 0
        self.passthrough_instructions = 0
        #: Activity counters for the overhead argument (Section 7.2):
        #: TT reads happen once per decoded (non-anchor) instruction,
        #: BBIT probes only when the engine is inactive.
        self.tt_reads = 0

    def reset(self) -> None:
        self._active = None
        self._history_word = 0
        self._expected_pc = None

    # ------------------------------------------------------------------

    def fetch(self, pc: int, stored_word: int) -> int:
        """Process one fetch; returns the restored instruction word."""
        if self._active is not None and pc != self._expected_pc:
            # Taken branch out of the current block.
            self._active = None
        if self._active is None:
            entry = self.bbit.lookup(pc)
            if entry is None:
                if pc in self.encoded_region:
                    raise DecodeFault(
                        f"fetch of encoded word at {pc:#010x} without an "
                        "active basic block (mid-block entry?)"
                    )
                self.passthrough_instructions += 1
                self._expected_pc = None
                return stored_word
            self._active = _ActiveBlock(
                base_tt_index=entry.tt_index,
                start_pc=pc,
                instructions_total=entry.num_instructions,
                index=0,
            )

        active = self._active
        if active.index == 0:
            decoded = stored_word  # block's first instruction passes through
        else:
            segment = (active.index - 1) // (self.block_size - 1)
            # Direct list indexing: entry() resolves per-fetch otherwise.
            tt_entry = self.tt.entries[active.base_tt_index + segment]
            self.tt_reads += 1
            decoded = tt_entry.decode(stored_word, self._history_word)
        self._history_word = decoded
        self.decoded_instructions += 1
        active.index += 1
        if active.index >= active.instructions_total:
            self._active = None
            self._expected_pc = None
        else:
            self._expected_pc = pc + 4
        return decoded

    # ------------------------------------------------------------------

    def decode_trace(
        self,
        addresses: list[int],
        stored_image_lookup,
    ) -> list[int]:
        """Decode a full fetch trace.  ``stored_image_lookup`` maps a
        PC to the stored (possibly encoded) word."""
        self.reset()
        return [self.fetch(pc, stored_image_lookup(pc)) for pc in addresses]
