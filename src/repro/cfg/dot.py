"""Graphviz DOT export for CFGs and loop annotations.

Produces plain DOT text (no graphviz dependency) for inspection or
documentation — the Figure 5c style picture of an application loop.
"""

from __future__ import annotations

from typing import Sequence

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.loops import NaturalLoop
from repro.cfg.profile import BlockProfile


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def cfg_to_dot(
    cfg: ControlFlowGraph,
    profile: BlockProfile | None = None,
    loops: Sequence[NaturalLoop] | None = None,
    selected: Sequence[int] | None = None,
) -> str:
    """Render a CFG as DOT.

    Nodes are labelled with address, size, and (when a profile is
    given) fetch counts; loop headers get a double border; blocks in
    ``selected`` (the encoded set) are filled.
    """
    headers = {loop.header for loop in loops} if loops else set()
    loop_blocks: set[int] = set()
    if loops:
        for loop in loops:
            loop_blocks |= loop.body
    chosen = set(selected) if selected else set()

    lines = ["digraph cfg {", '  node [shape=box, fontname="monospace"];']
    for start, block in sorted(cfg.blocks.items()):
        label = f"{start:#x}\\n{len(block)} instr"
        if profile is not None:
            label += f"\\n{profile.weight(start)} fetches"
        attrs = [f'label="{_escape(label)}"']
        if start in headers:
            attrs.append("peripheries=2")
        if start in chosen:
            attrs.append('style=filled fillcolor="lightblue"')
        elif start in loop_blocks:
            attrs.append('style=filled fillcolor="lightyellow"')
        lines.append(f'  n{start:x} [{" ".join(attrs)}];')
    for start, block in sorted(cfg.blocks.items()):
        for successor in block.successors:
            lines.append(f"  n{start:x} -> n{successor:x};")
        if block.has_indirect_successor:
            lines.append(
                f'  n{start:x} -> indirect [style=dashed];'
            )
    if any(b.has_indirect_successor for b in cfg.blocks.values()):
        lines.append('  indirect [shape=ellipse, label="jr/jalr"];')
    lines.append("}")
    return "\n".join(lines)
