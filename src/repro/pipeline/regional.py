"""Regional reprogramming: one table configuration per hot region.

The paper's hardware is *reprogrammable*: "the information about the
transformation is provided to the processor core either when loading
the program or by software prior to entering the application hot spot"
(Section 1), enabling "flexible and inexpensive switches between the
transformations" (abstract).  The baseline flow programs the tables
once; this variant gives every top-level hot loop its own full TT/BBIT
configuration, reloaded (by software, Section 7.1 style) whenever
execution moves between regions.

That matters exactly when a single 16-entry TT cannot cover all hot
loops at once — multi-phase programs.  The result reports the regional
reduction, the number of reloads the trace would trigger, and the
reload traffic (table words written through the peripheral), so the
benefit can be weighed against the reprogramming cost the paper calls
"insignificant in volume".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.hotspot import select_hot_blocks
from repro.cfg.loops import NaturalLoop, find_natural_loops
from repro.cfg.profile import profile_trace
from repro.core.program_codec import encode_basic_block
from repro.core.transformations import OPTIMAL_SET, Transformation
from repro.hw.bbit import BasicBlockIdentificationTable, BBITEntry
from repro.hw.fetch_decoder import FetchDecoder
from repro.hw.peripheral import programming_words
from repro.hw.tt import TransformationTable
from repro.isa.assembler import Program
from repro.sim.bus import count_trace_transitions


@dataclass
class Region:
    """One top-level hot loop and its table configuration."""

    header: int
    blocks: set[int]
    tt: TransformationTable
    bbit: BasicBlockIdentificationTable
    encoded_blocks: list[int] = field(default_factory=list)
    programming_store_count: int = 0


@dataclass
class RegionalResult:
    """Measurements for the regional-reprogramming flow."""

    name: str
    block_size: int
    baseline_transitions: int
    encoded_transitions: int
    regions: list[Region]
    reloads: int
    reload_words: int  # total peripheral stores across all reloads
    decode_verified: bool

    @property
    def reduction_percent(self) -> float:
        if self.baseline_transitions == 0:
            return 0.0
        return (
            100.0
            * (self.baseline_transitions - self.encoded_transitions)
            / self.baseline_transitions
        )


def _top_level_loops(loops: Sequence[NaturalLoop]) -> list[NaturalLoop]:
    return [
        loop
        for loop in loops
        if not any(loop.is_nested_in(other) for other in loops)
    ]


@dataclass
class RegionPlan:
    """A hot region before any encoding commitment: its loop header,
    the body blocks it claims, and the blocks/lengths the hot-block
    selector would encode under the full table budget.  Shared between
    the regional flow (which always encodes with TT/BBIT) and the
    per-scheme selector (which may hand the region to a different
    backend entirely)."""

    header: int
    blocks: set[int]
    selected: list[int]
    lengths: dict[int, int]  # selected block start -> encoded length


def plan_regions(
    cfg: ControlFlowGraph,
    profile,
    block_size: int,
    tt_capacity: int = 16,
    bbit_capacity: int = 16,
) -> list[RegionPlan]:
    """Decompose the program into top-level hot-loop regions, ordered
    by profile weight, each with its own full-budget block selection.
    Regions whose selection came up empty are kept (``selected == []``)
    — the selector can still hand them to a non-TT backend."""
    loops = find_natural_loops(cfg)
    top_loops = sorted(
        _top_level_loops(loops), key=profile.loop_weight, reverse=True
    )
    plans: list[RegionPlan] = []
    claimed: set[int] = set()
    for loop in top_loops:
        body = loop.body - claimed
        if not body:
            continue
        claimed |= body
        plan = select_hot_blocks(
            profile,
            block_size,
            tt_capacity=tt_capacity,
            bbit_capacity=bbit_capacity,
            loops=[loop],
            loops_only=True,
        )
        selected = [start for start in plan.selected if start in body]
        lengths = {
            start: plan.encoded_length(start, len(cfg.blocks[start]))
            for start in selected
        }
        plans.append(
            RegionPlan(
                header=loop.header,
                blocks=set(body),
                selected=selected,
                lengths=lengths,
            )
        )
    return plans


class RegionalEncodingFlow:
    """Per-region table configurations with software reload between."""

    def __init__(
        self,
        block_size: int,
        tt_capacity: int = 16,
        bbit_capacity: int = 16,
        transformations: Sequence[Transformation] = OPTIMAL_SET,
    ):
        self.block_size = block_size
        self.tt_capacity = tt_capacity
        self.bbit_capacity = bbit_capacity
        self.transformations = tuple(transformations)

    def run(
        self, program: Program, trace: Sequence[int], name: str = "program"
    ) -> RegionalResult:
        cfg = ControlFlowGraph.build(program)
        profile = profile_trace(cfg, trace)
        plans = plan_regions(
            cfg,
            profile,
            self.block_size,
            tt_capacity=self.tt_capacity,
            bbit_capacity=self.bbit_capacity,
        )

        image = list(program.words)
        regions: list[Region] = []
        block_to_region: dict[int, Region] = {}
        for region_plan in plans:
            selected = region_plan.selected
            if not selected:
                continue
            region = Region(
                header=region_plan.header,
                blocks=set(region_plan.blocks),
                tt=TransformationTable(self.tt_capacity),
                bbit=BasicBlockIdentificationTable(self.bbit_capacity),
            )
            encodings = []
            for start in selected:
                block = cfg.blocks[start]
                length = region_plan.lengths[start]
                encoding = encode_basic_block(
                    block.words[:length],
                    self.block_size,
                    transformations=self.transformations,
                )
                base_index = region.tt.allocate(encoding)
                region.bbit.install(
                    BBITEntry(
                        pc=start, tt_index=base_index, num_instructions=length
                    )
                )
                first = program.index_of(start)
                for offset, word in enumerate(encoding.encoded_words):
                    image[first + offset] = word
                region.encoded_blocks.append(start)
                encodings.append((start, encoding))
            region.programming_store_count = len(programming_words(encodings))
            regions.append(region)
            for start in region.blocks:
                block_to_region[start] = region

        # Walk the trace: switch table configurations at region entry,
        # decode through the active region's hardware.
        reloads = 0
        reload_words = 0
        active: Region | None = None
        decoder: FetchDecoder | None = None
        base = program.text_base
        decoded: list[int] = []
        for pc in trace:
            block_start = cfg.block_of(pc).start
            region = block_to_region.get(block_start)
            if region is not None and region is not active:
                active = region
                decoder = FetchDecoder(
                    region.tt, region.bbit, self.block_size
                )
                reloads += 1
                reload_words += region.programming_store_count
            stored = image[(pc - base) >> 2]
            if region is None or decoder is None:
                decoded.append(stored)
            else:
                decoded.append(decoder.fetch(pc, stored))
        original = [program.words[(pc - base) >> 2] for pc in trace]
        decode_verified = decoded == original
        if regions and not decode_verified:
            raise RuntimeError(
                f"{name}: regional decode failed to restore the stream"
            )

        return RegionalResult(
            name=name,
            block_size=self.block_size,
            baseline_transitions=count_trace_transitions(program, trace),
            encoded_transitions=count_trace_transitions(program, trace, image),
            regions=regions,
            reloads=reloads,
            reload_words=reload_words,
            decode_verified=decode_verified,
        )
