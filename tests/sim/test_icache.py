"""Tests for the instruction-cache model and the storage-independence
claim (Section 8)."""

import pytest

from repro.pipeline.flow import EncodingFlow
from repro.sim.bus import count_trace_transitions
from repro.sim.cpu import run_program
from repro.sim.icache import (
    CacheStats,
    InstructionCache,
    simulate_cache_buses,
)
from repro.workloads.registry import build_workload


class TestCacheMechanics:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            InstructionCache(line_bytes=12)
        with pytest.raises(ValueError):
            InstructionCache(size_bytes=100, line_bytes=16, associativity=2)

    def test_cold_miss_then_hit(self):
        cache = InstructionCache(size_bytes=256, line_bytes=16, associativity=1)
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.access(0x1004)  # same line
        assert cache.stats.misses == 1
        assert cache.stats.accesses == 3

    def test_conflict_eviction_direct_mapped(self):
        cache = InstructionCache(size_bytes=64, line_bytes=16, associativity=1)
        # 4 sets; addresses 0x0 and 0x40 conflict in set 0.
        assert not cache.access(0x00)
        assert not cache.access(0x40)
        assert not cache.access(0x00)  # evicted
        assert cache.stats.misses == 3

    def test_associativity_avoids_conflict(self):
        cache = InstructionCache(size_bytes=128, line_bytes=16, associativity=2)
        assert not cache.access(0x00)
        assert not cache.access(0x40)
        assert cache.access(0x00)  # both fit in the 2-way set
        assert cache.access(0x40)

    def test_lru_order(self):
        cache = InstructionCache(size_bytes=64, line_bytes=16, associativity=2)
        # 2 sets; lines 0x00, 0x20, 0x40 all map to set 0.
        cache.access(0x00)
        cache.access(0x20)
        cache.access(0x00)  # touch 0x00 -> 0x20 is now LRU
        cache.access(0x40)  # evicts 0x20
        assert cache.access(0x00)
        assert not cache.access(0x20)

    def test_refill_addresses(self):
        cache = InstructionCache(line_bytes=16)
        assert cache.refill_addresses(0x1008) == [0x1000, 0x1004, 0x1008, 0x100C]

    def test_reset(self):
        cache = InstructionCache()
        cache.access(0)
        cache.reset()
        assert cache.stats == CacheStats()
        assert not cache.access(0)


class TestStorageIndependence:
    """The paper's claim: cache or memory, the CPU-side bit transition
    reductions are identical."""

    @pytest.fixture(scope="class")
    def setup(self):
        workload = build_workload("lu", n=10)
        program = workload.assemble()
        cpu, trace = run_program(program)
        result = EncodingFlow(block_size=5).run(program, trace, "lu")
        return program, trace, result

    def test_cpu_side_equals_raw_trace_counting(self, setup):
        program, trace, result = setup
        cache = InstructionCache(size_bytes=512, line_bytes=16, associativity=2)
        report = simulate_cache_buses(
            cache, trace, list(program.words), program.text_base
        )
        assert report.cpu_side_transitions == count_trace_transitions(
            program, trace
        )

    def test_reduction_identical_through_any_cache(self, setup):
        program, trace, result = setup
        for geometry in (
            {"size_bytes": 128, "line_bytes": 16, "associativity": 1},
            {"size_bytes": 1024, "line_bytes": 32, "associativity": 2},
            {"size_bytes": 8192, "line_bytes": 64, "associativity": 4},
        ):
            base = simulate_cache_buses(
                InstructionCache(**geometry),
                trace,
                list(program.words),
                program.text_base,
            )
            enc = simulate_cache_buses(
                InstructionCache(**geometry),
                trace,
                result.encoded_image,
                program.text_base,
            )
            # CPU-side transitions: baseline and encoded counts do not
            # depend on the cache geometry at all.
            assert base.cpu_side_transitions == result.baseline_transitions
            assert enc.cpu_side_transitions == result.encoded_transitions

    def test_refill_bus_also_benefits(self, setup):
        # The encoded image is what the refill bus carries too; with a
        # small (thrashing) cache the refill traffic is significant
        # and the encoding reduces it as well.
        program, trace, result = setup
        cache = InstructionCache(size_bytes=128, line_bytes=16, associativity=1)
        base = simulate_cache_buses(
            cache, trace, list(program.words), program.text_base
        )
        cache2 = InstructionCache(size_bytes=128, line_bytes=16, associativity=1)
        enc = simulate_cache_buses(
            cache2, trace, result.encoded_image, program.text_base
        )
        assert base.stats.misses == enc.stats.misses  # same trace
        assert enc.refill_transitions < base.refill_transitions

    def test_bigger_cache_fewer_refills(self, setup):
        program, trace, _ = setup
        small = simulate_cache_buses(
            InstructionCache(size_bytes=128, line_bytes=16, associativity=1),
            trace,
            list(program.words),
            program.text_base,
        )
        big = simulate_cache_buses(
            InstructionCache(size_bytes=4096, line_bytes=16, associativity=4),
            trace,
            list(program.words),
            program.text_base,
        )
        assert big.stats.misses <= small.stats.misses
        assert big.stats.hit_rate >= small.stats.hit_rate
