"""Chaos/load selftest: the service's own acceptance harness.

``repro serve --selftest`` drives a seeded fleet of concurrent
tenants against a live :class:`~repro.serve.server.EncodingServer`
while :class:`~repro.faults.service.ChaosPolicy` injects worker
kills, stalls past deadline, and malformed requests — then holds the
run to three hard standards:

1. **zero wrong results** — every completed job's payload (bundle
   digest included) must equal an independent serial recompute of the
   same request with a fresh cache;
2. **a closed failure taxonomy** — every non-``ok`` outcome must be
   exactly the one its chaos annotation predicts (``malformed`` /
   ``deadline_exceeded``); a killed worker's job must still end
   ``ok`` via retry;
3. **deterministic reporting** — under ``--deterministic`` the
   ``SERVE_report.json`` is a pure function of the seed, which is
   what lets CI SIGKILL the server mid-queue, ``--resume`` it, and
   ``cmp`` the two reports byte for byte.

``BENCH_serve.json`` (tail latency, throughput, shed/retry/rebuild
counters) is the operational side-artifact; it is *not* byte-gated.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from dataclasses import dataclass

from repro.faults.service import CHAOS_KINDS, SLOW_DEADLINE_S, ChaosPolicy
from repro.pipeline.cache import BundleCache
from repro.runtime import atomic_write_text
from repro.serve.client import ServeClient, start_tcp_server
from repro.serve.jobs import deterministic_result, parse_request
from repro.serve.server import EncodingServer, ServeConfig
from repro.serve.worker import _compute

#: Small-parameter workload menu: each point simulates + encodes in
#: tens of milliseconds, so hundreds of jobs fit in a CI selftest.
MENU = (
    ("fir", {"taps": 8, "samples": 48}),
    ("mmul", {"n": 6}),
    ("sor", {"n": 8, "sweeps": 2}),
    ("conv2d", {"n": 8}),
)

_KIND_CYCLE = ("encode", "decode_verify", "encode", "deploy")
_K_CYCLE = (4, 5)
_STRATEGY_CYCLE = ("greedy", "greedy", "optimal")


@dataclass
class SelftestOptions:
    seed: int = 0
    tenants: int = 6
    jobs_per_tenant: int = 25
    workers: int = 2
    queue_depth: int = 16
    chaos: tuple[str, ...] = CHAOS_KINDS
    deterministic: bool = False
    transport: str = "inproc"  # "inproc" | "tcp"
    default_deadline_s: float = 30.0
    wal_path: str | None = None
    resume: bool = False
    cache_dir: str | None = None
    report_path: str | None = None
    bench_path: str | None = None
    #: Extra knobs threaded to ServeConfig (tests shrink these).
    retry_attempts: int = 4
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 2.0
    #: Telemetry-plane artifacts: a one-shot OpenMetrics scrape taken
    #: at the end of the run (over the live TCP endpoint when the
    #: transport is tcp) and the flight-record destination.
    openmetrics_path: str | None = None
    flight_path: str | None = None
    rebuild_storm_threshold: int = 3
    slo_latency_target_s: float = 2.0

    def batch_key(self) -> str:
        """The WAL identity of this generated batch: everything that
        changes *which jobs exist*, nothing about how they are run."""
        identity = json.dumps(
            {
                "selftest": 1,
                "seed": self.seed,
                "tenants": self.tenants,
                "jobs_per_tenant": self.jobs_per_tenant,
                "chaos": sorted(self.chaos),
            },
            sort_keys=True,
        )
        return hashlib.sha256(identity.encode()).hexdigest()[:16]


def generate_requests(options: SelftestOptions) -> list[dict]:
    """The seeded job batch: pure function of the options."""
    policy = ChaosPolicy(options.seed, models=tuple(options.chaos))
    requests: list[dict] = []
    for t in range(options.tenants):
        tenant = f"tenant{t:02d}"
        for j in range(options.jobs_per_tenant):
            job_id = f"j{j:03d}"
            workload, params = MENU[(t + j) % len(MENU)]
            request = {
                "tenant": tenant,
                "job_id": job_id,
                "kind": _KIND_CYCLE[j % len(_KIND_CYCLE)],
                "workload": workload,
                "block_size": _K_CYCLE[(t + j) % len(_K_CYCLE)],
                "tt_capacity": 16,
                "strategy": _STRATEGY_CYCLE[j % len(_STRATEGY_CYCLE)],
                "workload_params": dict(params),
            }
            plan = policy.plan_for(tenant, job_id)
            if plan is None:
                pass
            elif plan.kind == "malformed":
                request = policy.corrupt(request, tenant, job_id)
            elif plan.kind == "slow":
                request["chaos"] = "slow"
                request["deadline_s"] = SLOW_DEADLINE_S
            else:  # kill
                request["chaos"] = "kill"
            requests.append(request)
    return requests


def expected_outcome(request: dict) -> str:
    """The taxonomy contract: what chaos predicts for this request."""
    if "_chaos_mutation" in request:
        return "malformed"
    if request.get("chaos") == "slow":
        return "deadline_exceeded"
    return "ok"  # including "kill": the retry must succeed


def _oracle_payloads(requests: list[dict]) -> dict[str, dict]:
    """Independent serial recompute of every well-formed request's
    payload, deduped by compute identity, using a fresh private cache
    (so a poisoned service-side cache could never vouch for itself)."""
    cache = BundleCache(capacity=64, cache_dir=None)
    oracle: dict[str, dict] = {}
    for raw in requests:
        if "_chaos_mutation" in raw:
            continue
        clean = dict(raw)
        clean["chaos"] = ""
        clean.pop("deadline_s", None)
        request = parse_request(clean)
        key = f"{request.kind}|{request.config_key}"
        if key not in oracle:
            oracle[key] = _compute(request, cache)
    return oracle


def verify_results(
    requests: list[dict], results: list[dict]
) -> list[str]:
    """Hold the (request, result) pairs to the three standards; every
    violation becomes one human-readable problem string."""
    problems: list[str] = []
    oracle = _oracle_payloads(requests)
    for raw, result in zip(requests, results):
        tag = f"{result.get('tenant')}/{result.get('job_id')}"
        expected = expected_outcome(raw)
        outcome = result.get("outcome")
        if outcome != expected:
            problems.append(
                f"{tag}: outcome {outcome!r}, chaos predicts {expected!r}"
                + (f" (error: {result.get('error')})" if result.get("error") else "")
            )
            continue
        if outcome != "ok":
            continue
        clean = dict(raw)
        clean["chaos"] = ""
        clean.pop("deadline_s", None)
        request = parse_request(clean)
        want = oracle[f"{request.kind}|{request.config_key}"]
        got = result.get("payload")
        if got != want:
            drift = sorted(
                k
                for k in set(want) | set(got or {})
                if (got or {}).get(k) != want.get(k)
            )
            problems.append(
                f"{tag}: payload drifts from serial recompute in "
                f"field(s) {', '.join(drift)}"
            )
        elif request.kind == "decode_verify" and not got.get("verified"):
            problems.append(f"{tag}: decode_verify returned verified=false")
    return problems


async def _scrape_openmetrics(port: int) -> str:
    """Fetch /metrics over plain HTTP from the live TCP endpoint —
    the same bytes a Prometheus scraper would see."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
        await writer.drain()
        data = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    text = data.decode("utf-8", "replace")
    if "\r\n\r\n" in text:
        return text.split("\r\n\r\n", 1)[1]
    return text


async def _drive_tcp(
    server: EncodingServer, requests: list[dict], scrape: bool = False
) -> tuple[list[dict], str | None]:
    """One TCP client per tenant, each submitting its jobs
    concurrently — the many-concurrent-clients load shape."""
    tcp = await start_tcp_server(server)
    port = tcp.sockets[0].getsockname()[1]
    by_tenant: dict[str, list[tuple[int, dict]]] = {}
    for index, raw in enumerate(requests):
        tenant = raw.get("tenant", "?")
        by_tenant.setdefault(tenant, []).append((index, raw))
    results: list[dict | None] = [None] * len(requests)
    scraped: str | None = None

    async def tenant_session(jobs: list[tuple[int, dict]]) -> None:
        async with ServeClient("127.0.0.1", port) as client:
            async def one(index: int, raw: dict) -> None:
                results[index] = await client.submit(raw)

            await asyncio.gather(*(one(i, r) for i, r in jobs))

    try:
        await asyncio.gather(
            *(tenant_session(jobs) for jobs in by_tenant.values())
        )
        if scrape:
            # Scrape while the server (and everything merged from its
            # workers) is still live — the acceptance evidence that
            # the endpoint works, not a post-mortem reconstruction.
            scraped = await _scrape_openmetrics(port)
    finally:
        tcp.close()
        await tcp.wait_closed()
    return results, scraped  # type: ignore[return-value]


async def _run(
    options: SelftestOptions,
) -> tuple[list[dict], EncodingServer, str | None]:
    config = ServeConfig(
        workers=options.workers,
        queue_depth=options.queue_depth,
        default_deadline_s=options.default_deadline_s,
        retry_attempts=options.retry_attempts,
        breaker_threshold=options.breaker_threshold,
        breaker_cooldown_s=options.breaker_cooldown_s,
        seed=options.seed,
        cache_dir=options.cache_dir,
        wal_path=options.wal_path,
        resume=options.resume,
        batch_key=options.batch_key(),
        flight_path=options.flight_path,
        rebuild_storm_threshold=options.rebuild_storm_threshold,
        slo_latency_target_s=options.slo_latency_target_s,
    )
    requests = generate_requests(options)
    scrape = options.openmetrics_path is not None
    scraped: str | None = None
    async with EncodingServer(config) as server:
        if options.transport == "tcp":
            results, scraped = await _drive_tcp(
                server, requests, scrape=scrape
            )
        else:
            results = await server.run_batch(requests)
            if scrape:
                scraped = server.openmetrics()
    return results, server, scraped


def run_selftest(options: SelftestOptions) -> tuple[dict, list[str]]:
    """Run the whole harness; returns (report dict, problems)."""
    requests = generate_requests(options)
    started = time.monotonic()
    results, server, scraped = asyncio.run(_run(options))
    wall_s = time.monotonic() - started
    if options.openmetrics_path and scraped is not None:
        atomic_write_text(options.openmetrics_path, scraped)

    problems = verify_results(requests, results)

    ordered = sorted(results, key=lambda r: (r["tenant"], r["job_id"]))
    if options.deterministic:
        ordered = [deterministic_result(r) for r in ordered]
    outcome_counts: dict[str, int] = {}
    for result in results:
        outcome = result["outcome"]
        outcome_counts[outcome] = outcome_counts.get(outcome, 0) + 1
    report = {
        "schema": "repro.serve.selftest/1",
        "seed": options.seed,
        "tenants": options.tenants,
        "jobs_per_tenant": options.jobs_per_tenant,
        "chaos": sorted(options.chaos),
        "transport": options.transport,
        "deterministic": options.deterministic,
        "summary": {
            "jobs": len(results),
            "outcomes": dict(sorted(outcome_counts.items())),
            "problems": len(problems),
        },
        "problems": problems,
        "jobs": ordered,
    }
    if not options.deterministic:
        # Operational detail is real-run only: timing-dependent by
        # nature, it must stay out of anything gated byte-identical.
        report["ops"] = {"stats": dict(server.stats), "wall_s": round(wall_s, 3)}
    if options.report_path:
        atomic_write_text(
            options.report_path, json.dumps(report, indent=1) + "\n"
        )
    if options.bench_path:
        atomic_write_text(
            options.bench_path,
            json.dumps(_bench_report(options, server, results, wall_s), indent=1)
            + "\n",
        )
    return report, problems


def _quantile(ordered: list[float], q: float) -> float | None:
    if not ordered:
        return None
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def _bench_report(
    options: SelftestOptions,
    server: EncodingServer,
    results: list[dict],
    wall_s: float,
) -> dict:
    """BENCH_serve.json v2: the v1 tail-latency and failure-handling
    block, byte-compatible, plus the telemetry plane's rolling windows
    and per-tenant SLO verdicts."""
    ordered = sorted(server.latencies)
    as_ms = lambda v: None if v is None else round(v * 1000.0, 3)  # noqa: E731
    return {
        "generated_by": "repro serve --selftest",
        "schema": "repro.serve.bench/2",
        "config": {
            "seed": options.seed,
            "tenants": options.tenants,
            "jobs_per_tenant": options.jobs_per_tenant,
            "workers": options.workers,
            "queue_depth": options.queue_depth,
            "chaos": sorted(options.chaos),
            "transport": options.transport,
            "resume": options.resume,
        },
        "jobs": len(results),
        "wall_s": round(wall_s, 3),
        "throughput_jobs_per_s": (
            round(len(results) / wall_s, 2) if wall_s > 0 else None
        ),
        "latency_ms": {
            "count": len(ordered),
            "p50": as_ms(_quantile(ordered, 0.50)),
            "p90": as_ms(_quantile(ordered, 0.90)),
            "p99": as_ms(_quantile(ordered, 0.99)),
            "mean": as_ms(sum(ordered) / len(ordered)) if ordered else None,
            "max": as_ms(ordered[-1]) if ordered else None,
        },
        "stats": dict(server.stats),
        # v2 additions (everything above is byte-compatible with v1).
        "windows": server.windows.snapshot(),
        "slo": server.slo.snapshot(),
        "flight": server.flight.snapshot(),
    }
