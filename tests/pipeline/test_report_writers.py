"""Tests for the CSV/markdown report writers and theory extensions."""

import pytest

from repro.core.theory import expected_improvement_biased, theory_row
from repro.pipeline.flow import EncodingFlow
from repro.pipeline.report import fig6_table, fig6_to_csv, fig6_to_markdown
from repro.sim.cpu import run_program
from repro.workloads.registry import build_workload


@pytest.fixture(scope="module")
def small_results():
    workload = build_workload("lu", n=8)
    program = workload.assemble()
    cpu, trace = run_program(program)
    return {
        "lu": {
            k: EncodingFlow(block_size=k).run(program, trace, "lu")
            for k in (4, 5)
        }
    }


class TestWriters:
    def test_csv_shape(self, small_results):
        table = fig6_table(small_results)
        csv = fig6_to_csv(table)
        lines = csv.splitlines()
        assert lines[0] == "metric,lu"
        assert any(line.startswith("tr_millions,") for line in lines)
        assert any(line.startswith("reduction_k4,") for line in lines)
        # Values parse as floats.
        for line in lines[1:]:
            float(line.split(",")[1])

    def test_markdown_shape(self, small_results):
        table = fig6_table(small_results)
        md = fig6_to_markdown(table)
        assert md.startswith("| metric | lu |")
        assert "| #TR (M) |" in md
        assert "reduction k=5" in md
        # Every row has the same column count.
        counts = {line.count("|") for line in md.splitlines()}
        assert len(counts) == 1

    def test_csv_and_markdown_agree(self, small_results):
        table = fig6_table(small_results)
        csv_value = float(
            [
                line
                for line in fig6_to_csv(table).splitlines()
                if line.startswith("reduction_k5,")
            ][0].split(",")[1]
        )
        md_line = [
            line
            for line in fig6_to_markdown(table).splitlines()
            if "reduction k=5" in line
        ][0]
        md_value = float(md_line.split("|")[2].strip().rstrip("%"))
        assert csv_value == pytest.approx(md_value, abs=0.05)


class TestBiasedTheory:
    def test_uniform_case_matches_figure3(self):
        for k in (3, 4, 5, 6):
            assert expected_improvement_biased(k, 0.5) == pytest.approx(
                theory_row(k).improvement_percent
            )

    def test_symmetry(self):
        # Global-inversion duality: bias p and 1-p give identical
        # expected improvements.
        for bias in (0.1, 0.25, 0.4):
            assert expected_improvement_biased(5, bias) == pytest.approx(
                expected_improvement_biased(5, 1.0 - bias)
            )

    def test_matches_empirical_sweep(self):
        from repro.core.analysis import random_streams, summarize_streams

        for bias in (0.2, 0.5, 0.8):
            theory = expected_improvement_biased(5, bias)
            measured = summarize_streams(
                random_streams(10, 2000, seed=31, bias=bias), 5
            ).reduction_percent
            # Overlap + sampling noise keep these within ~3 points.
            assert measured == pytest.approx(theory, abs=3.0)

    def test_degenerate_biases(self):
        # All-zero / all-one streams have no transitions to remove.
        assert expected_improvement_biased(5, 0.0) == 0.0
        assert expected_improvement_biased(5, 1.0) == 0.0

    def test_bias_validation(self):
        with pytest.raises(ValueError):
            expected_improvement_biased(5, -0.1)
