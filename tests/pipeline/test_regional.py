"""Tests for the regional-reprogramming flow."""

import pytest

from repro.isa.assembler import assemble
from repro.pipeline.flow import EncodingFlow
from repro.pipeline.regional import RegionalEncodingFlow
from repro.sim.cpu import run_program

# Two sequential phases, each with a big hot loop body: together they
# exceed a small TT, separately each fits.
TWO_PHASE = """
        .text
main:   li $s0, 60
phase1:
        addu $t0, $t1, $t2
        xor  $t3, $t0, $t1
        sll  $t4, $t3, 2
        or   $t5, $t4, $t0
        subu $t6, $t5, $t2
        and  $t7, $t6, $t3
        addu $t1, $t7, $t0
        addiu $s0, $s0, -1
        bnez $s0, phase1
        li $s1, 60
phase2:
        lui  $t0, 0x1234
        ori  $t1, $t0, 0x5678
        srl  $t2, $t1, 3
        nor  $t3, $t2, $t0
        sra  $t4, $t3, 1
        slt  $t5, $t4, $t1
        xor  $t6, $t5, $t2
        addiu $s1, $s1, -1
        bnez $s1, phase2
        li $v0, 10
        syscall
"""


@pytest.fixture(scope="module")
def two_phase():
    program = assemble(TWO_PHASE)
    cpu, trace = run_program(program)
    return program, trace


class TestRegionalFlow:
    def test_decode_verified(self, two_phase):
        program, trace = two_phase
        result = RegionalEncodingFlow(block_size=5).run(
            program, trace, "two-phase"
        )
        assert result.decode_verified
        assert len(result.regions) == 2

    def test_reload_counting(self, two_phase):
        program, trace = two_phase
        result = RegionalEncodingFlow(block_size=5).run(
            program, trace, "two-phase"
        )
        # Phase 1 then phase 2: exactly two region entries.
        assert result.reloads == 2
        assert result.reload_words > 0

    def test_beats_static_under_tt_pressure(self, two_phase):
        program, trace = two_phase
        # A tiny TT cannot hold both phases at once; regional
        # reprogramming gives each phase the whole table.
        capacity = 3
        static = EncodingFlow(block_size=5, tt_capacity=capacity).run(
            program, trace, "static"
        )
        regional = RegionalEncodingFlow(block_size=5, tt_capacity=capacity).run(
            program, trace, "regional"
        )
        assert regional.decode_verified
        assert regional.encoded_transitions < static.encoded_transitions

    def test_matches_static_when_capacity_ample(self, two_phase):
        program, trace = two_phase
        static = EncodingFlow(block_size=5, tt_capacity=32).run(
            program, trace, "static"
        )
        regional = RegionalEncodingFlow(block_size=5, tt_capacity=32).run(
            program, trace, "regional"
        )
        # With room for everything, both approaches encode the same
        # blocks; transitions agree.
        assert regional.encoded_transitions == static.encoded_transitions

    def test_reload_traffic_is_small(self, two_phase):
        program, trace = two_phase
        result = RegionalEncodingFlow(block_size=5).run(
            program, trace, "two-phase"
        )
        # The paper: "the amount of information needed is insignificant
        # in volume".  Reload words must be tiny next to the fetch
        # traffic.
        assert result.reload_words * 32 < 0.05 * 32 * len(trace)

    def test_no_loops_program(self):
        program = assemble(
            ".text\nmain: addu $t0, $t1, $t2\nli $v0, 10\nsyscall\n"
        )
        cpu, trace = run_program(program)
        result = RegionalEncodingFlow(block_size=5).run(program, trace, "flat")
        assert result.regions == []
        assert result.reloads == 0
        assert result.reduction_percent == 0.0

    def test_revisiting_region_reloads_once_per_switch(self):
        # Alternate between two loop phases several times.
        program = assemble(
            """
            .text
main:       li $s7, 3
outer:      li $s0, 10
loopA:      addu $t0, $t1, $t2
            xor  $t3, $t0, $t1
            addiu $s0, $s0, -1
            bnez $s0, loopA
            li $s1, 10
loopB:      lui  $t4, 0x4321
            ori  $t5, $t4, 9
            addiu $s1, $s1, -1
            bnez $s1, loopB
            addiu $s7, $s7, -1
            bnez $s7, outer
            li $v0, 10
            syscall
            """
        )
        cpu, trace = run_program(program)
        result = RegionalEncodingFlow(block_size=4).run(program, trace, "alt")
        assert result.decode_verified
        # The outer loop contains both inner loops, so the whole nest
        # is one top-level region: a single reload.
        assert result.reloads == 1
