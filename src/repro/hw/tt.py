"""The Transformation Table (TT) of Figure 5.

One entry per encoded code block (segment).  An entry stores a 3-bit
transformation selector for every bus line, the End (E) bit marking
the final segment of a basic block, and the CT counter giving the
number of instructions decoded under that final segment (Section 7.2:
"a counter corresponding to the size of the last bit sequence ...
decremented with each instruction fetched").

For fast word-level decoding each entry precomputes one 32-bit mask
per transformation selector; a stored word then decodes with eight
bitwise operations instead of 32 bit-by-bit gate evaluations — the
software analogue of the per-line parallel gates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.program_codec import BlockEncoding
from repro.errors import TableCapacityError, TableIntegrityError
from repro.hw import integrity
from repro.obs import OBS

# Selector indices, fixed by repro.core.transformations.OPTIMAL_SET:
# 0=x 1=~x 2=y 3=~y 4=xor 5=xnor 6=nor 7=nand
_NUM_SELECTORS = 8


def _decode_masked(selector: int, stored: int, prev: int, mask: int) -> int:
    if selector == 0:
        return stored & mask
    if selector == 1:
        return ~stored & mask
    if selector == 2:
        return prev & mask
    if selector == 3:
        return ~prev & mask
    if selector == 4:
        return (stored ^ prev) & mask
    if selector == 5:
        return ~(stored ^ prev) & mask
    if selector == 6:
        return ~(stored | prev) & mask
    if selector == 7:
        return ~(stored & prev) & mask
    raise ValueError(f"selector out of range: {selector}")


@dataclass
class TTEntry:
    """One Transformation Table entry (Figure 5a)."""

    selectors: tuple[int, ...]  # 3-bit selector per bus line
    end: bool = False  # E field
    count: int = 0  # CT field (instructions under a final segment)
    _masks: list[int] = field(default_factory=list, repr=False)
    _ops: list[tuple[int, int]] = field(default_factory=list, repr=False)
    _word_mask: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        for selector in self.selectors:
            if not 0 <= selector < _NUM_SELECTORS:
                raise ValueError(f"selector out of range: {selector}")
        masks = [0] * _NUM_SELECTORS
        for line, selector in enumerate(self.selectors):
            masks[selector] |= 1 << line
        self._masks = masks
        # Hot-path lookups: only the selectors actually used by some
        # line (typically far fewer than eight per entry).
        self._ops = [
            (selector, mask) for selector, mask in enumerate(masks) if mask
        ]
        self._word_mask = (1 << len(self.selectors)) - 1

    @property
    def width(self) -> int:
        return len(self.selectors)

    def decode(self, stored_word: int, previous_decoded: int) -> int:
        """Restore an original word from the stored word and the
        previously decoded word (the per-line one-bit history)."""
        out = 0
        for selector, mask in self._ops:
            out |= _decode_masked(
                selector, stored_word, previous_decoded, mask
            )
        return out & self._word_mask

    @classmethod
    def identity(cls, width: int = 32) -> "TTEntry":
        """The all-zero entry: decodes any block unchanged (the
        paper's shared entry for infrequent basic blocks)."""
        return cls(selectors=(0,) * width)


class TransformationTable:
    """A fixed-capacity TT with allocation bookkeeping.

    Entries for one basic block occupy a contiguous index range whose
    final entry has E set (Section 7.2).  The table is reprogrammable:
    :meth:`clear` + :meth:`allocate` model the software reload before
    entering a new application hot spot.

    With ``parity=True`` every row written through :meth:`install` /
    :meth:`write` / :meth:`allocate` carries a SEC-DED check word
    (:mod:`repro.hw.integrity`); each :meth:`read` validates it.  A
    single flipped bit is **corrected in place** (counted in
    :attr:`ecc_corrections` and the ``hw.ecc_corrections`` metric); a
    double-bit error **quarantines** the row and raises
    :class:`~repro.errors.TableIntegrityError`.  Quarantined rows stay
    unreadable until :meth:`repair_row` (the scrubber's golden-bundle
    path) rewrites them.
    """

    def __init__(self, capacity: int = 16, width: int = 32, parity: bool = False):
        if capacity < 1:
            raise ValueError("TT needs at least one entry")
        self.capacity = capacity
        self.width = width
        self.parity_enabled = parity
        self.entries: list[TTEntry] = []
        #: SEC-DED check word per row, written alongside the row
        #: itself; mutating ``entries`` directly (as a fault would)
        #: leaves the stored check word stale, which is exactly what a
        #: read corrects or detects.
        self._parity: list[int] = []
        #: Row indices whose last check found an uncorrectable
        #: (double-bit) error; unreadable until repaired.
        self.quarantined: set[int] = set()
        #: Activity counters, published onto the metrics registry by
        #: whoever drives the table (the fetch decoder, the flow).
        self.reads = 0
        self.writes = 0
        self.parity_checks = 0
        self.parity_failures = 0
        self.ecc_corrections = 0
        self.ecc_double_faults = 0
        self.repairs = 0

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def free_entries(self) -> int:
        return self.capacity - len(self.entries)

    def clear(self) -> None:
        self.entries.clear()
        self._parity.clear()
        self.quarantined.clear()

    # ------------------------------------------------------------------
    # Checked access
    # ------------------------------------------------------------------

    def _row_ecc(self, entry: TTEntry) -> int:
        return integrity.tt_row_ecc(entry.selectors, entry.end, entry.count)

    def install(self, entry: TTEntry) -> int:
        """Append one row (with its check word); returns its index."""
        if len(self.entries) >= self.capacity:
            raise TableCapacityError(
                f"TT full ({self.capacity} entries); cannot install another"
            )
        self.entries.append(entry)
        self._parity.append(self._row_ecc(entry))
        self.writes += 1
        return len(self.entries) - 1

    def write(self, index: int, entry: TTEntry) -> None:
        """Program one row at ``index`` (the MMIO peripheral path),
        padding any gap below it with identity rows."""
        if not 0 <= index < self.capacity:
            raise TableCapacityError(
                f"TT index {index} exceeds capacity {self.capacity}"
            )
        while len(self.entries) <= index:
            self.install(TTEntry.identity(self.width))
        self.entries[index] = entry
        self._parity[index] = self._row_ecc(entry)
        self.quarantined.discard(index)

    def check_row(self, index: int) -> str:
        """Validate one populated row against its stored check word
        without raising: corrects a single-bit error in place and
        returns ``"clean"`` / ``"corrected"`` / ``"quarantined"``.
        The scrubber's sweep primitive; :meth:`read` layers the
        raising behaviour on top."""
        if index in self.quarantined:
            return "quarantined"
        entry = self.entries[index]
        if index >= len(self._parity):
            # A row with no check word at all (direct population
            # without seal()): treat as uncorrectable.
            self.quarantined.add(index)
            self.ecc_double_faults += 1
            return "quarantined"
        data = integrity.tt_row_data(entry.selectors, entry.end, entry.count)
        status, fixed_data, fixed_check = integrity.secded_decode(
            data, integrity.tt_row_bits(entry.width), self._parity[index]
        )
        if status == integrity.CLEAN:
            return "clean"
        if status == integrity.CORRECTED:
            selectors, end, count = integrity.tt_row_fields(
                fixed_data, entry.width
            )
            self.entries[index] = TTEntry(
                selectors=selectors, end=end, count=count
            )
            self._parity[index] = fixed_check
            self.ecc_corrections += 1
            if OBS.enabled:
                OBS.registry.counter(
                    "hw.ecc_corrections",
                    "single-bit table-row errors corrected by SEC-DED",
                    table="tt",
                ).inc()
            return "corrected"
        self.quarantined.add(index)
        self.ecc_double_faults += 1
        if OBS.enabled:
            OBS.registry.counter(
                "hw.ecc_double_faults",
                "uncorrectable (double-bit) table-row errors",
                table="tt",
            ).inc()
        return "quarantined"

    def read(self, index: int) -> TTEntry:
        """Checked row read: bounds, then SEC-DED (when enabled).

        A single-bit upset is corrected transparently; an
        uncorrectable or quarantined row raises
        :class:`~repro.errors.TableIntegrityError`."""
        self.reads += 1
        if not 0 <= index < len(self.entries):
            raise TableIntegrityError(
                f"TT read at index {index} outside the populated range "
                f"[0, {len(self.entries)})"
            )
        if self.parity_enabled:
            self.parity_checks += 1
            status = self.check_row(index)
            if status == "quarantined":
                self.parity_failures += 1
                raise TableIntegrityError(
                    f"TT entry {index} failed its SEC-DED check "
                    "(uncorrectable error; row quarantined)"
                )
        return self.entries[index]

    def repair_row(self, index: int, entry: TTEntry) -> None:
        """Rewrite one row from a trusted source (the golden bundle),
        lifting its quarantine."""
        self.write(index, entry)
        self.repairs += 1
        if OBS.enabled:
            OBS.registry.counter(
                "hw.rows_repaired",
                "quarantined table rows rewritten from a golden source",
                table="tt",
            ).inc()

    def seal(self) -> None:
        """Recompute every check word from the current rows (for
        callers that populated ``entries`` directly)."""
        self._parity = [self._row_ecc(entry) for entry in self.entries]
        self.quarantined.clear()

    def allocate(self, encoding: BlockEncoding) -> int:
        """Install a basic block's segment plans; returns the base
        index its first entry landed at."""
        if encoding.width != self.width:
            raise ValueError(
                f"encoding width {encoding.width} != table width {self.width}"
            )
        selector_rows = encoding.selectors()
        if len(selector_rows) > self.free_entries:
            raise TableCapacityError(
                f"need {len(selector_rows)} entries, only "
                f"{self.free_entries} free of {self.capacity}"
            )
        base = len(self.entries)
        bounds = encoding.bounds
        for row, (start, seg_len) in zip(selector_rows, bounds):
            is_tail = start + seg_len >= len(encoding.original_words)
            self.install(
                TTEntry(
                    selectors=tuple(row),
                    end=is_tail,
                    # Instructions decoded under this entry: the tail
                    # segment's non-overlap positions (every position
                    # for a single-segment block).
                    count=(seg_len if start == 0 else seg_len - 1)
                    if is_tail
                    else 0,
                )
            )
        return base

    def entry(self, index: int) -> TTEntry:
        return self.read(index)

    def storage_bits(self, ct_bits: int = 4) -> int:
        """Physical SRAM bits: per entry, 3 selector bits per line plus
        the E bit plus the CT field."""
        return self.capacity * (3 * self.width + 1 + ct_bits)


def selectors_from_sequence(rows: Sequence[Sequence[int]]) -> list[TTEntry]:
    """Build raw entries from selector rows (testing helper)."""
    return [TTEntry(selectors=tuple(row)) for row in rows]
