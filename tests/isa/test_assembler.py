"""Tests for the two-pass assembler."""

import struct

import pytest

from repro.isa.assembler import (
    DATA_BASE,
    TEXT_BASE,
    AssemblerError,
    assemble,
)
from repro.isa.disassembler import disassemble_word


class TestBasics:
    def test_empty_program(self):
        program = assemble("")
        assert program.words == []
        assert program.entry == TEXT_BASE

    def test_single_instruction(self):
        program = assemble(".text\naddu $t0, $t1, $t2\n")
        assert program.words == [0x012A4021]

    def test_entry_is_main(self):
        program = assemble(
            """
            .text
            nop
            main: nop
            """
        )
        assert program.entry == TEXT_BASE + 4

    def test_comments_and_blank_lines(self):
        program = assemble(
            """
            # full-line comment

            .text
            nop  # trailing comment
            """
        )
        assert len(program.words) == 1

    def test_label_on_own_line(self):
        program = assemble(
            """
            .text
            start:
            nop
            """
        )
        assert program.address_of("start") == TEXT_BASE

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble(".text\na: nop\na: nop\n")

    def test_unknown_instruction_rejected(self):
        with pytest.raises(AssemblerError, match="unknown instruction"):
            assemble(".text\nfrobnicate $t0\n")

    def test_instruction_in_data_rejected(self):
        with pytest.raises(AssemblerError, match="only valid in .text"):
            assemble(".data\nnop\n")

    def test_error_carries_line_number(self):
        try:
            assemble(".text\nnop\nbogus $t0\n")
        except AssemblerError as error:
            assert error.line_no == 3
        else:
            pytest.fail("expected AssemblerError")


class TestDataDirectives:
    def test_word_layout(self):
        program = assemble(".data\nvalues: .word 1, 2, -1\n")
        assert program.data_image[:12] == struct.pack("<iii", 1, 2, -1)
        assert program.address_of("values") == DATA_BASE

    def test_byte_and_half(self):
        program = assemble(".data\n.byte 1, 2\n.half 0x1234\n")
        # .half aligns to 2 after the two bytes.
        assert bytes(program.data_image) == b"\x01\x02\x34\x12"

    def test_double(self):
        program = assemble(".data\nd: .double 2.5, -1.0\n")
        assert struct.unpack("<dd", bytes(program.data_image[:16])) == (2.5, -1.0)

    def test_label_before_aligned_double(self):
        # The critical case: a label followed by an aligning directive
        # must bind to the aligned address.
        program = assemble(
            """
            .data
            pad: .word 1
            val: .double 7.0
            """
        )
        assert program.address_of("val") == DATA_BASE + 8
        assert struct.unpack(
            "<d", bytes(program.data_image[8:16])
        ) == (7.0,)

    def test_space(self):
        program = assemble(".data\nbuf: .space 16\nend: .word 1\n")
        assert program.address_of("end") == DATA_BASE + 16

    def test_align(self):
        program = assemble(".data\n.byte 1\n.align 3\nlab: .word 2\n")
        assert program.address_of("lab") == DATA_BASE + 8

    def test_asciiz(self):
        program = assemble('.data\nmsg: .asciiz "hi"\n')
        assert bytes(program.data_image[:3]) == b"hi\x00"

    def test_word_in_text_rejected(self):
        with pytest.raises(AssemblerError, match="only valid in .data"):
            assemble(".text\n.word 5\n")


class TestPseudoInstructions:
    def test_nop(self):
        program = assemble(".text\nnop\n")
        assert program.words == [0]

    def test_li_small(self):
        program = assemble(".text\nli $t0, 5\n")
        assert len(program.words) == 1
        assert disassemble_word(program.words[0]) == "addiu $t0, $zero, 5"

    def test_li_negative(self):
        program = assemble(".text\nli $t0, -3\n")
        assert disassemble_word(program.words[0]) == "addiu $t0, $zero, -3"

    def test_li_unsigned16(self):
        program = assemble(".text\nli $t0, 0xFFFF\n")
        assert len(program.words) == 1
        assert disassemble_word(program.words[0]).startswith("ori")

    def test_li_large_expands_to_two(self):
        program = assemble(".text\nli $t0, 0x12345678\n")
        assert len(program.words) == 2
        assert disassemble_word(program.words[0]).startswith("lui")
        assert disassemble_word(program.words[1]).startswith("ori")

    def test_la_expands_to_two(self):
        program = assemble(".data\nv: .word 0\n.text\nla $t0, v\n")
        assert len(program.words) == 2

    def test_move(self):
        program = assemble(".text\nmove $t0, $t1\n")
        assert disassemble_word(program.words[0]) == "addu $t0, $t1, $zero"

    def test_branch_pseudos_expand(self):
        program = assemble(
            """
            .text
            loop: blt $t0, $t1, loop
            bge $t0, $t1, loop
            bgt $t0, $t1, loop
            ble $t0, $t1, loop
            """
        )
        assert len(program.words) == 8  # each expands to slt + branch

    def test_beqz_bnez(self):
        program = assemble(".text\nx: beqz $t0, x\nbnez $t0, x\n")
        assert len(program.words) == 2

    def test_mul_divq_rem(self):
        program = assemble(
            ".text\nmul $t0, $t1, $t2\ndivq $t0, $t1, $t2\nrem $t0, $t1, $t2\n"
        )
        assert len(program.words) == 6

    def test_blt_with_immediate_rejected(self):
        with pytest.raises(AssemblerError, match="expected reg"):
            assemble(".text\nx: blt $t0, 5, x\n")


class TestBranchesAndJumps:
    def test_backward_branch_offset(self):
        program = assemble(".text\nloop: nop\nbne $t0, $t1, loop\n")
        # Branch at +4, target +0: offset = (0 - 8) / 4 = -2.
        inst = program.instructions[1]
        assert inst.simm == -2

    def test_forward_branch_offset(self):
        program = assemble(".text\nbeq $t0, $t1, skip\nnop\nskip: nop\n")
        assert program.instructions[0].simm == 1

    def test_jump_target(self):
        program = assemble(".text\nmain: j main\n")
        assert program.instructions[0].get("target") == TEXT_BASE >> 2

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError, match="undefined label"):
            assemble(".text\nj nowhere\n")

    def test_branch_out_of_range_rejected(self):
        body = "\n".join(["nop"] * 40000)
        with pytest.raises(AssemblerError, match="out of range"):
            assemble(f".text\ntop: nop\n{body}\nbne $t0, $t1, top\n")


class TestProgramApi:
    def test_index_and_word_lookup(self):
        program = assemble(".text\nnop\naddu $t0, $t1, $t2\n")
        assert program.index_of(TEXT_BASE + 4) == 1
        assert program.word_at(TEXT_BASE + 4) == 0x012A4021
        assert program.instruction_at(TEXT_BASE).name == "sll"

    def test_bad_address_rejected(self):
        program = assemble(".text\nnop\n")
        with pytest.raises(ValueError):
            program.index_of(TEXT_BASE + 2)
        with pytest.raises(ValueError):
            program.index_of(TEXT_BASE + 8)

    def test_unknown_label_keyerror(self):
        program = assemble(".text\nnop\n")
        with pytest.raises(KeyError):
            program.address_of("nope")


class TestDisassemblerRoundTrip:
    def test_full_program_roundtrip(self):
        source = """
        .data
        v: .word 1, 2, 3
        .text
        main: la $t0, v
        lw $t1, 0($t0)
        addiu $t1, $t1, 10
        sw $t1, 4($t0)
        beq $t1, $zero, main
        jr $ra
        """
        program = assemble(source)
        # Disassemble every word and re-assemble; the words must match.
        from repro.isa.disassembler import disassemble_word

        lines = []
        for i, word in enumerate(program.words):
            text = disassemble_word(word)
            # Rewrite branch/jump targets as self-referencing labels to
            # keep the program assemblable.
            if text.startswith(("beq", "bne", "j ", "jal ")):
                continue
            lines.append(text)
        reassembled = assemble(".text\n" + "\n".join(lines))
        survivors = [
            w
            for w in program.words
            if not disassemble_word(w).startswith(("beq", "bne", "j ", "jal "))
        ]
        assert reassembled.words == survivors
