"""Dedicated disassembler tests."""

import pytest

from repro.isa.assembler import TEXT_BASE, assemble
from repro.isa.disassembler import (
    disassemble,
    disassemble_word,
    format_instruction,
)
from repro.isa.instruction import DecodeError, decode_word


class TestFormatting:
    def test_r_type(self):
        assert disassemble_word(0x012A4021) == "addu $t0, $t1, $t2"

    def test_i_type_negative_imm(self):
        program = assemble(".text\naddiu $t0, $t0, -1\n")
        assert disassemble_word(program.words[0]) == "addiu $t0, $t0, -1"

    def test_memory_operand(self):
        program = assemble(".text\nlw $t4, -8($sp)\n")
        assert disassemble_word(program.words[0]) == "lw $t4, -8($sp)"

    def test_fp_memory_operand(self):
        program = assemble(".text\nl.d $f4, 16($t0)\n")
        assert disassemble_word(program.words[0]) == "ldc1 $f4, 16($t0)"

    def test_fp_arith(self):
        program = assemble(".text\nmul.d $f2, $f4, $f6\n")
        assert disassemble_word(program.words[0]) == "mul.d $f2, $f4, $f6"

    def test_branch_with_address(self):
        program = assemble(".text\nmain: beq $t0, $t1, main\n")
        text = disassemble_word(program.words[0], TEXT_BASE)
        assert text == f"beq $t0, $t1, {TEXT_BASE:#010x}"

    def test_branch_without_address_relative(self):
        program = assemble(".text\nmain: beq $t0, $t1, main\n")
        text = disassemble_word(program.words[0])
        assert text == "beq $t0, $t1, .+0"

    def test_jump_target(self):
        program = assemble(".text\nmain: j main\n")
        assert disassemble_word(program.words[0]) == f"j {TEXT_BASE:#010x}"

    def test_shift_amount(self):
        program = assemble(".text\nsll $t0, $t1, 7\n")
        assert disassemble_word(program.words[0]) == "sll $t0, $t1, 7"

    def test_syscall_bare(self):
        program = assemble(".text\nsyscall\n")
        assert disassemble_word(program.words[0]) == "syscall"


class TestListing:
    def test_with_addresses(self):
        program = assemble(".text\nnop\nnop\n")
        listing = disassemble(program.words, program.text_base)
        lines = listing.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith(f"{TEXT_BASE:#010x}:")
        assert "00000000" in lines[0]

    def test_without_addresses(self):
        program = assemble(".text\naddu $t0, $t1, $t2\n")
        listing = disassemble(program.words, with_addresses=False)
        assert listing == "addu $t0, $t1, $t2"

    def test_empty(self):
        assert disassemble([]) == ""


class TestRoundTrips:
    def test_format_instruction_consistent_with_decode(self):
        program = assemble(
            """
            .text
            main: li $t0, 42
            sw $t0, -4($sp)
            mul.d $f2, $f4, $f6
            bc1t main
            jr $ra
            """
        )
        for i, word in enumerate(program.words):
            inst = decode_word(word)
            text = format_instruction(inst, program.text_base + 4 * i)
            assert text.split()[0] == inst.name

    def test_undecodable_word_raises(self):
        with pytest.raises(DecodeError):
            disassemble_word(0xFFFFFFFF)
