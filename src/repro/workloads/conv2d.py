"""2-D convolution (``conv2d``) — extended workload.

A 3x3 kernel convolved over an ``n`` x ``n`` image (valid region
only), the inner loop of every embedded imaging pipeline.  The 3x3
inner loops are fully unrolled, as a DSP compiler would emit them,
giving a long straight-line hot block — a useful structural contrast
to fft's short blocks.
"""

from __future__ import annotations

from repro.workloads.common import (
    Workload,
    assert_close,
    format_doubles,
    pseudo_values,
    read_doubles,
)

DEFAULT_N = 24

KERNEL = (
    0.0625, 0.125, 0.0625,
    0.125, 0.25, 0.125,
    0.0625, 0.125, 0.0625,
)  # Gaussian blur


def _reference(image: list[float], n: int) -> list[float]:
    out = [0.0] * (n * n)
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            acc = 0.0
            for di in (-1, 0, 1):
                for dj in (-1, 0, 1):
                    acc += (
                        KERNEL[(di + 1) * 3 + (dj + 1)]
                        * image[(i + di) * n + (j + dj)]
                    )
            out[i * n + j] = acc
    return out


def build(n: int = DEFAULT_N) -> Workload:
    """Build the conv2d workload for an ``n`` x ``n`` image."""
    if n < 3:
        raise ValueError(f"image must be at least 3x3, got {n}")
    image = pseudo_values(n * n, seed=15)
    expected = _reference(image, n)

    taps = []
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            offset = 8 * (di * n + dj)
            weight_index = 8 * ((di + 1) * 3 + (dj + 1))
            taps.append(
                f"""
        l.d   $f6, {weight_index}($s4)
        l.d   $f8, {offset}($t3)
        mul.d $f10, $f6, $f8
        add.d $f4, $f4, $f10"""
            )
    unrolled = "".join(taps)

    source = f"""
# conv2d: 3x3 Gaussian kernel over a {n}x{n} image, unrolled taps
        .data
IMG:
{format_doubles(image)}
OUT:
        .space {8 * n * n}
K:
{format_doubles(list(KERNEL))}
        .text
main:
        li    $s0, {n}
        la    $s5, IMG
        la    $s6, OUT
        la    $s4, K
        li    $s1, 1            # i
iloop:
        mul   $t5, $s1, $s0
        addiu $t5, $t5, 1
        sll   $t5, $t5, 3
        addu  $t3, $s5, $t5     # &IMG[i][1]
        addu  $t4, $s6, $t5     # &OUT[i][1]
        li    $s2, 1            # j
jloop:
        mtc1  $zero, $f4        # acc{unrolled}
        s.d   $f4, 0($t4)
        addiu $t3, $t3, 8
        addiu $t4, $t4, 8
        addiu $s2, $s2, 1
        addiu $t7, $s0, -1
        bne   $s2, $t7, jloop
        addiu $s1, $s1, 1
        bne   $s1, $t7, iloop
        li    $v0, 10
        syscall
"""

    def verify(cpu) -> None:
        measured = read_doubles(cpu, "OUT", n * n)
        assert_close(measured, expected, tolerance=1e-12, what="conv2d out")

    return Workload(
        name="conv2d",
        description=f"3x3 convolution over a {n}x{n} image, unrolled (extended workload)",
        source=source,
        params={"n": n},
        verify=verify,
    )
