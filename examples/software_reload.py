"""Section 7.1's second alternative: the application programs its own
decode tables by software, "just prior to entering the loop under
consideration".

The demo program carries a loader prologue that streams (register,
value) pairs from a data table into the table-programming peripheral
(an MMIO window), then enters a hot loop.  The host side plays the
compiler: it encodes the hot basic blocks of the *final* program image
and bakes the resulting programming sequence into the data table.

After simulation the script checks that

* the software-programmed Transformation Table / BBIT decode the
  encoded memory image bit-exactly over the real fetch trace, and
* the bus-transition savings match what the build-time flow computes.

Run:  python examples/software_reload.py
"""

from repro.cfg.graph import ControlFlowGraph
from repro.core.program_codec import encode_basic_block
from repro.hw.fetch_decoder import FetchDecoder
from repro.hw.peripheral import (
    DEFAULT_BASE,
    EncodingLoaderPeripheral,
    programming_words,
)
from repro.isa.assembler import assemble
from repro.sim.bus import count_trace_transitions
from repro.sim.cpu import Cpu

BLOCK_SIZE = 5
MAX_PAIRS = 128

SOURCE = f"""
# software reload demo: loader prologue + dot-product hot loop
        .data
LOADTAB:
        .space {4 + 8 * MAX_PAIRS}   # count, then (offset, value) pairs
A:      .space 800
B:      .space 800
        .text
main:
        la    $t0, LOADTAB
        lw    $t1, 0($t0)       # pair count (host-filled)
        addiu $t0, $t0, 4
        li    $t2, {DEFAULT_BASE:#x}
ldloop:
        beqz  $t1, ldone
        lw    $t3, 0($t0)       # register offset
        lw    $t4, 4($t0)       # value
        addu  $t5, $t2, $t3
        sw    $t4, 0($t5)       # program the peripheral
        addiu $t0, $t0, 8
        addiu $t1, $t1, -1
        b     ldloop
ldone:
# initialise the arrays
        la    $t0, A
        la    $t1, B
        li    $t2, 0
initloop:
        sll   $t3, $t2, 2
        addu  $t4, $t0, $t3
        sw    $t2, 0($t4)
        addu  $t4, $t1, $t3
        sll   $t5, $t2, 1
        sw    $t5, 0($t4)
        addiu $t2, $t2, 1
        li    $t6, 200
        bne   $t2, $t6, initloop
# the hot loop: s0 = dot(A, B)
        li    $s0, 0
        li    $t2, 0
hot:
        sll   $t3, $t2, 2
        addu  $t4, $t0, $t3
        lw    $t5, 0($t4)
        addu  $t4, $t1, $t3
        lw    $t6, 0($t4)
        mul   $t7, $t5, $t6
        addu  $s0, $s0, $t7
        addiu $t2, $t2, 1
        li    $t8, 200
        bne   $t2, $t8, hot
        move  $a0, $s0
        li    $v0, 1
        syscall
        li    $v0, 10
        syscall
"""


def main() -> None:
    program = assemble(SOURCE)
    cfg = ControlFlowGraph.build(program)

    # Host side ("compiler"): encode the hot loop's basic block and
    # bake the peripheral programming sequence into LOADTAB.
    hot_start = program.address_of("hot")
    hot_block = cfg.blocks[hot_start]
    encoding = encode_basic_block(hot_block.words, BLOCK_SIZE)
    stores = programming_words([(hot_start, encoding)])
    assert len(stores) <= MAX_PAIRS
    table_offset = program.address_of("LOADTAB") - program.data_base
    image = program.data_image
    image[table_offset : table_offset + 4] = len(stores).to_bytes(4, "little")
    for i, (offset, value) in enumerate(stores):
        at = table_offset + 4 + 8 * i
        image[at : at + 4] = offset.to_bytes(4, "little")
        image[at + 4 : at + 8] = (value & 0xFFFFFFFF).to_bytes(4, "little")
    print(
        f"host: hot block @ {hot_start:#x}, {len(hot_block)} instructions, "
        f"{encoding.num_segments} TT entries, {len(stores)} programming stores"
    )

    # Target side: the program loads its own tables through the MMIO
    # window while running.
    peripheral = EncodingLoaderPeripheral()
    cpu = Cpu(program)
    cpu.memory.add_mmio(peripheral.region())
    trace: list[int] = []
    cpu.run(trace=trace)
    print(
        f"target: ran {cpu.steps} instructions, dot product = "
        f"{cpu.output[0]}, peripheral commits = {peripheral.commits}"
    )
    assert cpu.output[0] == str(sum(i * 2 * i for i in range(200)))
    assert len(peripheral.tt) == encoding.num_segments
    assert len(peripheral.bbit) == 1

    # Build the encoded memory image and decode the trace through the
    # *software-programmed* tables.
    encoded_image = list(program.words)
    first = program.index_of(hot_start)
    for offset, word in enumerate(encoding.encoded_words):
        encoded_image[first + offset] = word
    decoder = FetchDecoder(peripheral.tt, peripheral.bbit, BLOCK_SIZE)
    base = program.text_base
    decoded = decoder.decode_trace(
        trace, lambda pc: encoded_image[(pc - base) >> 2]
    )
    original = [program.words[(pc - base) >> 2] for pc in trace]
    assert decoded == original
    before = count_trace_transitions(program, trace)
    after = count_trace_transitions(program, trace, encoded_image)
    print(
        "decode through software-loaded tables: bit-exact; "
        f"bus transitions {before} -> {after} "
        f"({100 * (before - after) / before:.1f}% saved)"
    )


if __name__ == "__main__":
    main()
