"""Cross-validation of the compiled codebook fast path against the
seed :class:`BlockSolver` reference implementation.

The contract is strict bit-identity: for any stream, block size and
strategy, encoding through the codebook must produce a byte-identical
:class:`StreamEncoding` (same stored bits, same segment/transformation
plan) to the reference path, and both decoders must round-trip."""

import itertools

import pytest
from hypothesis import given, settings

from tests.strategies import (
    bit_streams,
    encode_strategies,
    hw_block_sizes,
    rng_for,
    seeded_blocks,
    seeded_words,
)

from repro.core.bitstream import (
    count_transitions,
    count_transitions_int,
    pack_bits,
    unpack_bits,
)
from repro.core.block_solver import BlockSolver
from repro.core.boolfunc import TT_Y, BoolFunc
from repro.core.fastpath import (
    CompiledCodebook,
    clear_codebook_cache,
    decode_suffix_table,
    get_codebook,
)
from repro.core.program_codec import (
    decode_basic_block,
    encode_basic_block,
    encode_basic_blocks,
)
from repro.core.stream_codec import (
    StreamEncoder,
    decode_stream,
    decode_with_plan,
    encode_stream,
)
from repro.core.transformations import (
    ALL_TRANSFORMATIONS,
    OPTIMAL_SET,
    Transformation,
)

# Shared suite-wide strategies (tests/strategies.py): the same input
# distributions the `repro verify` differential campaign draws from.
streams = bit_streams
block_sizes = hw_block_sizes
strategies = encode_strategies


class TestIntHelpers:
    @given(streams)
    def test_pack_unpack_roundtrip(self, stream):
        packed = pack_bits(stream)
        assert list(unpack_bits(packed, len(stream))) == stream

    @given(streams)
    def test_int_transition_count_matches(self, stream):
        packed = pack_bits(stream)
        assert count_transitions_int(packed, len(stream)) == count_transitions(
            stream
        )


class TestCodebookTables:
    def test_anchored_table_matches_solver(self):
        book = get_codebook(4)
        solver = BlockSolver(OPTIMAL_SET)
        for length in (1, 2, 3, 4):
            for word_int in range(1 << length):
                word = [(word_int >> i) & 1 for i in range(length)]
                solution = solver.solve_anchored(word)
                code_int, tau, cost = book.anchored[length][word_int]
                assert code_int == pack_bits(list(solution.code))
                assert tau == solution.transformation
                assert cost == solution.encoded_transitions

    def test_constrained_table_matches_solver(self):
        book = get_codebook(4)
        solver = BlockSolver(OPTIMAL_SET)
        for length in (2, 3, 4):
            for fixed in (0, 1):
                for word_int in range(1 << length):
                    word = [(word_int >> i) & 1 for i in range(length)]
                    solution = solver.solve_constrained(word, fixed)
                    code_int, tau, cost = book.constrained[length][fixed][
                        word_int
                    ]
                    assert code_int == pack_bits(list(solution.code))
                    assert tau == solution.transformation
                    assert cost == solution.encoded_transitions

    def test_cache_returns_same_object(self):
        assert get_codebook(5) is get_codebook(5, OPTIMAL_SET)

    def test_cache_distinguishes_sets(self):
        assert get_codebook(5, OPTIMAL_SET) is not get_codebook(
            5, ALL_TRANSFORMATIONS
        )

    def test_cache_clear(self):
        before = get_codebook(3)
        clear_codebook_cache()
        assert get_codebook(3) is not before

    def test_block_size_too_small(self):
        with pytest.raises(ValueError):
            CompiledCodebook(1)

    def test_decode_suffix_table_matches_chain(self):
        for tt in range(16):
            func = BoolFunc(tt)
            table = decode_suffix_table(tt, 3)
            for history in (0, 1):
                for stored in range(8):
                    h, out = history, 0
                    for i in range(3):
                        h = func((stored >> i) & 1, h)
                        out |= h << i
                    assert table[history][stored] == out


class TestStreamBitIdentity:
    @given(streams, block_sizes, strategies)
    @settings(max_examples=300, deadline=None)
    def test_fast_matches_reference(self, stream, block_size, strategy):
        fast = encode_stream(stream, block_size, strategy=strategy)
        reference = encode_stream(
            stream, block_size, strategy=strategy, use_codebook=False
        )
        assert fast == reference  # full dataclass identity
        assert decode_stream(fast) == stream
        assert decode_stream(fast, use_tables=False) == stream

    @given(streams, block_sizes)
    @settings(max_examples=150, deadline=None)
    def test_full_16_set_matches(self, stream, block_size):
        fast = encode_stream(stream, block_size, ALL_TRANSFORMATIONS)
        reference = encode_stream(
            stream, block_size, ALL_TRANSFORMATIONS, use_codebook=False
        )
        assert fast == reference

    def test_long_random_streams_all_strategies(self):
        # The satellite regression: random streams, k in 2..7, every
        # strategy, byte-identical encodings plus exact round-trips.
        rng = rng_for("fastpath-long-streams", 20030310)
        for block_size in range(2, 8):
            for strategy in ("greedy", "optimal", "disjoint"):
                stream = [rng.randint(0, 1) for _ in range(400)]
                fast = encode_stream(stream, block_size, strategy=strategy)
                reference = encode_stream(
                    stream, block_size, strategy=strategy, use_codebook=False
                )
                assert fast == reference
                assert decode_stream(fast) == stream
                assert decode_stream(fast, use_tables=False) == stream
                if strategy != "disjoint":
                    plan = fast.transformations()
                    assert (
                        decode_with_plan(
                            list(fast.encoded), block_size, plan
                        )
                        == stream
                    )
                    assert (
                        decode_with_plan(
                            list(fast.encoded),
                            block_size,
                            plan,
                            use_tables=False,
                        )
                        == stream
                    )

    @given(streams, block_sizes)
    @settings(max_examples=150, deadline=None)
    def test_plan_decode_fast_matches_reference(self, stream, block_size):
        encoding = encode_stream(stream, block_size)
        stored = list(encoding.encoded)
        plan = encoding.transformations()
        assert decode_with_plan(stored, block_size, plan) == decode_with_plan(
            stored, block_size, plan, use_tables=False
        )


class TestProgramBitIdentity:
    def test_basic_block_fast_matches_reference(self):
        for num_words, block_size in itertools.product((1, 2, 5, 17, 64), (2, 5, 7)):
            words = seeded_words((num_words, block_size, 99), num_words)
            fast = encode_basic_block(words, block_size)
            reference = encode_basic_block(
                words, block_size, use_codebook=False
            )
            assert fast == reference
            assert decode_basic_block(fast) == words
            assert decode_basic_block(fast, use_tables=False) == words

    def test_basic_block_strategies_match(self):
        words = seeded_words(7, 20)
        for strategy in ("greedy", "optimal"):
            fast = encode_basic_block(words, 5, strategy=strategy)
            reference = encode_basic_block(
                words, 5, strategy=strategy, use_codebook=False
            )
            assert fast == reference

    def test_bad_strategy_rejected(self):
        with pytest.raises(ValueError):
            encode_basic_block([1, 2, 3], 5, strategy="magic")

    def test_batch_matches_single(self):
        blocks = seeded_blocks(31, 6)
        batch = encode_basic_blocks(blocks, 5)
        singles = [encode_basic_block(words, 5) for words in blocks]
        assert batch == singles

    def test_parallel_matches_serial(self):
        blocks = seeded_blocks(32, 4, max_words=16)
        serial = encode_basic_blocks(blocks, 5)
        try:
            parallel = encode_basic_blocks(blocks, 5, parallel=2)
        except (OSError, PermissionError) as exc:  # pragma: no cover
            pytest.skip(f"process pools unavailable here: {exc}")
        assert parallel == serial


class TestDegenerateSets:
    """A candidate set without identity/inversion cannot express every
    block word; fast and reference paths must fail identically."""

    HISTORY_ONLY = (Transformation(BoolFunc(TT_Y)),)

    def test_greedy_raises_same_error(self):
        stream = [0, 1, 1, 0, 1]
        with pytest.raises(RuntimeError) as fast_error:
            encode_stream(stream, 3, self.HISTORY_ONLY)
        with pytest.raises(RuntimeError) as reference_error:
            encode_stream(stream, 3, self.HISTORY_ONLY, use_codebook=False)
        assert str(fast_error.value) == str(reference_error.value)

    def test_optimal_raises_clear_error_both_paths(self):
        stream = [0, 1, 1, 0, 1]
        for use_codebook in (True, False):
            with pytest.raises(RuntimeError, match="optimal DP state is empty"):
                encode_stream(
                    stream,
                    3,
                    self.HISTORY_ONLY,
                    strategy="optimal",
                    use_codebook=use_codebook,
                )

    def test_expressible_stream_still_encodes(self):
        # ~y alone expresses alternating streams; both paths agree.
        alternating = [0, 1] * 6
        tau_set = (Transformation(BoolFunc(0b0101)),)  # ~y
        fast = encode_stream(alternating, 4, tau_set)
        reference = encode_stream(
            alternating, 4, tau_set, use_codebook=False
        )
        assert fast == reference
        assert decode_stream(fast) == alternating
