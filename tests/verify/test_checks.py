"""Differential checks: clean inputs agree, contracts hold, sweeps pass."""

import pytest

from tests.strategies import rng_for, seeded_stream, seeded_words

from repro.verify.checks import (
    TABLE_FAULTS,
    CheckResult,
    check_encoders,
    check_program,
    check_stream,
    check_tables,
    sweep_boundary,
    sweep_codebook,
    sweep_encoder_tables,
    sweep_tau,
)


class TestCheckResult:
    def test_fail_keeps_only_the_first_mismatch(self):
        result = CheckResult()
        result.fail("first", detail=1)
        result.fail("second", detail=2)
        assert not result.ok
        assert result.mismatch == {"kind": "first", "detail": 1}

    def test_coverage_lists_are_sorted_and_json_friendly(self):
        result = CheckResult()
        result.cover("dim", "b")
        result.cover("dim", "a")
        assert result.coverage_lists() == {"dim": ["a", "b"]}


class TestCheckStream:
    @pytest.mark.parametrize("strategy", ["greedy", "optimal", "disjoint"])
    def test_clean_streams_agree_everywhere(self, strategy):
        stream = seeded_stream(("checks", strategy), 120, bias=0.5)
        result = check_stream(stream, 5, strategy)
        assert result.ok, result.mismatch
        assert "codebook_entries" in result.coverage
        assert "block_sizes" in result.coverage

    def test_boundary_coverage_keys(self):
        stream = seeded_stream(("checks", "tail"), 10, bias=0.5)
        result = check_stream(stream, 4, "greedy")
        assert result.ok
        assert result.coverage["boundary_residues"] == {
            f"k=4|mod={10 % 3}"
        }
        assert len(result.coverage["tail_lengths"]) == 1

    def test_first_segment_covers_anchored(self):
        result = check_stream([1, 0, 1, 1], 4, "greedy")
        assert result.ok
        assert any(
            "anchored" in key
            for key in result.coverage["codebook_entries"]
        )


class TestCheckProgram:
    def test_clean_program_agrees_in_all_modes(self):
        words = seeded_words(("checks", "program"), 14)
        result = check_program(words, 5)
        assert result.ok, result.mismatch
        assert result.coverage["decoder_transitions"] == {
            "clean:strict",
            "clean:recover",
            "clean:degraded",
        }

    def test_single_word_block(self):
        result = check_program([0xDEADBEEF], 4)
        assert result.ok, result.mismatch


class TestCheckTables:
    @pytest.mark.parametrize("fault", TABLE_FAULTS)
    def test_every_fault_class_meets_its_contract(self, fault):
        rng = rng_for("checks-tables", fault)
        blocks = [
            [rng.getrandbits(32) for _ in range(6)] for _ in range(2)
        ]
        result = check_tables(blocks, 5, fault, f"flip:{fault}")
        assert result.ok, result.mismatch
        event = {
            "none": "clean",
            "single_bit": "corrected",
            "double_bit_tt": "tt_uncorrectable",
            "double_bit_bbit": "bbit_uncorrectable",
        }[fault]
        assert result.coverage["decoder_transitions"] == {
            f"{event}:strict",
            f"{event}:recover",
            f"{event}:degraded",
        }

    def test_unknown_fault_is_a_mismatch_not_a_crash(self):
        result = check_tables([[1, 2]], 4, "gamma_ray", "seed")
        assert not result.ok
        assert result.mismatch["kind"] == "unknown_table_fault"

    def test_same_flip_seed_reproduces_the_same_verdict(self):
        blocks = [seeded_words(("checks", "repro"), 8)]
        a = check_tables(blocks, 4, "double_bit_tt", "flip:same")
        b = check_tables(blocks, 4, "double_bit_tt", "flip:same")
        assert a.ok == b.ok
        assert a.coverage_lists() == b.coverage_lists()


class TestSweeps:
    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_codebook_sweep_is_clean_and_exhaustive(self, k):
        result = sweep_codebook(k)
        assert result.ok, result.mismatch
        assert len(result.coverage["codebook_entries"]) == 3 * (1 << k)

    @pytest.mark.parametrize("k", [3, 5])
    def test_tau_sweep_covers_all_eight_selectors(self, k):
        result = sweep_tau(k)
        assert result.ok, result.mismatch
        assert len(result.coverage["tau_selectors"]) == 8

    def test_boundary_sweep_covers_every_residue_and_tail(self, k=5):
        result = sweep_boundary(k)
        assert result.ok, result.mismatch
        assert result.coverage["boundary_residues"] == {
            f"k={k}|mod={r}" for r in range(k - 1)
        }
        assert result.coverage["tail_lengths"] == {
            f"k={k}|tail={t}" for t in range(1, k + 1)
        }


class TestCheckEncoders:
    def test_clean_on_hot_stream_covers_every_scheme(
        self, seeded_hot_words, encoder_schemes
    ):
        result = check_encoders(seeded_hot_words("checks-enc", 120))
        assert result.ok, result.mismatch
        assert result.coverage["encoder_schemes"] == set(encoder_schemes)

    def test_clean_on_empty_and_singleton_streams(self):
        for words in ([], [0xFFFFFFFF]):
            result = check_encoders(words)
            assert result.ok, result.mismatch

    def test_scheme_subset_restricts_coverage(self):
        result = check_encoders([1, 2, 3], schemes=("gray",))
        assert result.ok, result.mismatch
        assert result.coverage["encoder_schemes"] == {"gray"}

    def test_deterministic_verdict(self, seeded_hot_words):
        words = seeded_hot_words("checks-det", 80)
        a, b = check_encoders(words), check_encoders(words)
        assert a.ok == b.ok
        assert a.coverage_lists() == b.coverage_lists()


class TestSweepEncoderTables:
    def test_sweep_is_clean_and_covers_all_schemes(self, encoder_schemes):
        result = sweep_encoder_tables()
        assert result.ok, result.mismatch
        assert result.coverage["encoder_schemes"] == set(encoder_schemes)

    def test_sweep_is_deterministic(self):
        a, b = sweep_encoder_tables(), sweep_encoder_tables()
        assert a.ok == b.ok
        assert a.coverage_lists() == b.coverage_lists()
