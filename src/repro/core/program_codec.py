"""Vertical per-bus-line encoding of instruction words (Section 4).

A basic block of ``m`` instructions induces ``width`` vertical bit
streams (one per bus line, Figure 1b).  Every stream is chain-encoded
with the same block segmentation — a Transformation Table entry is one
segment: the 3-bit selectors for *all* bus lines plus the E/CT tail
bookkeeping (Figure 5a).  This module produces the encoded instruction
words (what is stored in program memory) and the per-segment selector
plans (what is loaded into the TT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.bitstream import (
    columns_to_words,
    total_word_transitions,
    word_column,
)
from repro.core.stream_codec import (
    StreamEncoder,
    decode_with_plan,
    segment_bounds,
)
from repro.core.transformations import OPTIMAL_SET, Transformation


@dataclass(frozen=True)
class BlockEncoding:
    """The encoded form of one basic block.

    Attributes
    ----------
    original_words / encoded_words:
        Instruction words in fetch order, before and after encoding.
    block_size:
        The vertical block length ``k``.
    width:
        Bus width in bits (32 for our ISA).
    segment_plans:
        ``segment_plans[s][b]`` is the transformation applied by bus
        line ``b`` during segment ``s`` — exactly the payload of the
        ``s``-th Transformation Table entry for this basic block.
    """

    original_words: tuple[int, ...]
    encoded_words: tuple[int, ...]
    block_size: int
    width: int
    segment_plans: tuple[tuple[Transformation, ...], ...]

    def __len__(self) -> int:
        return len(self.original_words)

    @property
    def num_segments(self) -> int:
        """Transformation Table entries this basic block consumes."""
        return len(self.segment_plans)

    @property
    def bounds(self) -> list[tuple[int, int]]:
        """(start, length) of each segment in instruction indices."""
        return segment_bounds(len(self.original_words), self.block_size)

    @property
    def original_transitions(self) -> int:
        """Bus transitions fetching the original block start-to-end."""
        return total_word_transitions(self.original_words)

    @property
    def encoded_transitions(self) -> int:
        """Bus transitions fetching the encoded block start-to-end."""
        return total_word_transitions(self.encoded_words)

    @property
    def reduction_percent(self) -> float:
        total = self.original_transitions
        if total == 0:
            return 0.0
        return 100.0 * (total - self.encoded_transitions) / total

    def selectors(self) -> list[list[int]]:
        """3-bit TT selector codes, ``selectors()[segment][line]``.

        Raises if any planned transformation lies outside the optimal
        8-set (cannot happen when encoding used the default set).
        """
        table = []
        for plan in self.segment_plans:
            row = []
            for transformation in plan:
                if transformation.selector is None:
                    raise ValueError(
                        f"transformation {transformation.name!r} has no "
                        "hardware selector (outside the optimal 8-set)"
                    )
                row.append(transformation.selector)
            table.append(row)
        return table


def tt_entries_required(num_instructions: int, block_size: int) -> int:
    """Transformation Table entries a basic block of the given length
    consumes (used by the hot-spot selector's capacity accounting)."""
    return max(1, len(segment_bounds(num_instructions, block_size)))


def encode_basic_block(
    words: Sequence[int],
    block_size: int,
    width: int = 32,
    transformations: Sequence[Transformation] = OPTIMAL_SET,
    strategy: str = "greedy",
) -> BlockEncoding:
    """Encode a basic block's instruction words vertically.

    Every bus line is encoded independently (Section 4: "Each bit, or
    column ..., undergoes a distinct encoding analysis"), but all lines
    share the same segmentation so a TT entry can carry one selector
    per line.
    """
    words = [int(w) for w in words]
    for w in words:
        if w < 0 or w >= (1 << width):
            raise ValueError(f"word {w:#x} does not fit in {width} bits")
    if not words:
        return BlockEncoding((), (), block_size, width, ())

    encoder = StreamEncoder(block_size, transformations, strategy)
    encoded_columns: list[list[int]] = []
    per_line_segments: list[list[Transformation]] = []
    for line in range(width):
        encoding = encoder.encode(word_column(words, line))
        encoded_columns.append(list(encoding.encoded))
        per_line_segments.append(encoding.transformations())

    num_segments = len(per_line_segments[0])
    segment_plans = tuple(
        tuple(per_line_segments[line][segment] for line in range(width))
        for segment in range(num_segments)
    )
    encoded_words = columns_to_words(encoded_columns)
    return BlockEncoding(
        original_words=tuple(words),
        encoded_words=tuple(encoded_words),
        block_size=block_size,
        width=width,
        segment_plans=segment_plans,
    )


def decode_basic_block(encoding: BlockEncoding) -> list[int]:
    """Restore the original instruction words from a
    :class:`BlockEncoding` (software mirror of the fetch hardware)."""
    if not encoding.encoded_words:
        return []
    decoded_columns = []
    for line in range(encoding.width):
        stored = word_column(encoding.encoded_words, line)
        plan = [plan[line] for plan in encoding.segment_plans]
        decoded_columns.append(
            decode_with_plan(stored, encoding.block_size, plan)
        )
    return columns_to_words(decoded_columns)
