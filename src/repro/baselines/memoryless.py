"""Memoryless minimum-transition codebook encoding.

After Chee, Colbourn & Ling, *Optimal Memoryless Encoding for Low
Power Off-Chip Data Buses* (arXiv:0712.2640): a memoryless code is a
fixed bijective remapping of bus values — no history, no extra lines —
chosen to minimise the expected number of transitions under the
observed word-pair distribution.  Finding the optimal remap for a full
32-bit bus is intractable, but the problem decomposes: the Hamming
distance of a 32-bit transfer is the sum of independent per-sub-bus
distances, so we split the bus into narrow sub-buses (4 lines by
default) and solve each one against its own transition graph.

Per sub-bus, ``fit`` counts how often each unordered pair of sub-bus
values appears on consecutive transfers (the weighted transition
graph), then assigns codewords:

* **exact** when at most ``max_exact`` distinct values occur — a
  branch-and-bound search over injective assignments of values to the
  ``2**subbus_width`` codewords, minimising
  ``sum(weight(u, v) * popcount(code(u) ^ code(v)))``.  This is the
  regime the paper's optimality result covers; the golden-vector tests
  cross-check it against brute force.
* **greedy** otherwise — values are placed in descending order of
  incident weight, each taking the free codeword with the least
  weighted distance to the already-placed neighbours.

Values never seen in the profile get the leftover codewords in
deterministic order, so the map is always a bijection and the encoder
is deployable: stored words are rewritten in the image and each fetch
decodes independently through the inverse tables.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.baselines.protocol import (
    EncodedStream,
    Encoder,
    HardwareBudget,
    register_encoder,
    register_reference_counter,
)
from repro.core.transitions import word_transitions
from repro.errors import EncodingError


def _pair_weights(values: Sequence[int]) -> Dict[Tuple[int, int], int]:
    """Weighted transition graph: unordered pair -> adjacency count."""
    weights: Dict[Tuple[int, int], int] = {}
    for a, b in zip(values, values[1:]):
        if a == b:
            continue  # zero distance under any bijection
        key = (a, b) if a < b else (b, a)
        weights[key] = weights.get(key, 0) + 1
    return weights


def _incident_weight(value: int, weights: Dict[Tuple[int, int], int]) -> int:
    return sum(w for (u, v), w in weights.items() if value in (u, v))


def exact_assignment(
    distinct: Sequence[int],
    weights: Dict[Tuple[int, int], int],
    code_space: int,
) -> Dict[int, int]:
    """Optimal injective value->codeword map by branch and bound.

    ``distinct`` fixes the placement order; candidate codewords are
    tried in ascending order and the bound is the accumulated weighted
    distance, so among all optima the result is deterministic.
    """
    n = len(distinct)
    codes = list(range(code_space))
    pair_w = [
        [
            weights.get(
                (distinct[i], distinct[j]) if distinct[i] < distinct[j] else (distinct[j], distinct[i]),
                0,
            )
            for j in range(n)
        ]
        for i in range(n)
    ]
    best_cost = [float("inf")]
    best: list[list[int]] = [[]]
    chosen: list[int] = []
    used = [False] * code_space

    def walk(i: int, cost: int) -> None:
        if cost >= best_cost[0]:
            return
        if i == n:
            best_cost[0] = cost
            best[0] = list(chosen)
            return
        for code in codes:
            if used[code]:
                continue
            step = cost
            for j in range(i):
                w = pair_w[i][j]
                if w:
                    step += w * (code ^ chosen[j]).bit_count()
            if step >= best_cost[0]:
                continue
            used[code] = True
            chosen.append(code)
            walk(i + 1, step)
            chosen.pop()
            used[code] = False

    walk(0, 0)
    return dict(zip(distinct, best[0]))


def greedy_assignment(
    distinct: Sequence[int],
    weights: Dict[Tuple[int, int], int],
    code_space: int,
) -> Dict[int, int]:
    """Heuristic value->codeword map for dense transition graphs."""
    assignment: Dict[int, int] = {}
    free_codes = list(range(code_space))
    remaining = list(distinct)
    while remaining:
        if not assignment:
            value = remaining.pop(0)
            assignment[value] = free_codes.pop(0)
            continue
        # heaviest coupling to the already-placed set goes next
        def coupling(v: int) -> int:
            total = 0
            for placed in assignment:
                key = (v, placed) if v < placed else (placed, v)
                total += weights.get(key, 0)
            return total

        remaining.sort(key=lambda v: (-coupling(v), v))
        value = remaining.pop(0)
        best_code, best_cost = None, None
        for code in free_codes:
            cost = 0
            for placed, placed_code in assignment.items():
                key = (value, placed) if value < placed else (placed, value)
                w = weights.get(key, 0)
                if w:
                    cost += w * (code ^ placed_code).bit_count()
            if best_cost is None or cost < best_cost:
                best_code, best_cost = code, cost
        assignment[value] = best_code  # type: ignore[assignment]
        free_codes.remove(best_code)  # type: ignore[arg-type]
    return assignment


@register_encoder
class MemorylessCodebookEncoder(Encoder):
    """Per-sub-bus bijective remapping minimising weighted transitions."""

    scheme = "memoryless"
    deployable = True

    def __init__(
        self,
        width: int = 32,
        subbus_width: int = 4,
        max_exact: int = 5,
    ) -> None:
        if width % subbus_width != 0:
            raise EncodingError(
                f"width {width} is not a multiple of sub-bus width {subbus_width}"
            )
        self.width = width
        self.subbus_width = subbus_width
        self.max_exact = max_exact
        self._mask = (1 << width) - 1
        self._sub_mask = (1 << subbus_width) - 1
        self.num_subbuses = width // subbus_width
        size = 1 << subbus_width
        self._maps: list[list[int]] = [list(range(size)) for _ in range(self.num_subbuses)]
        self._inverse: list[list[int]] = [list(range(size)) for _ in range(self.num_subbuses)]

    # -- fitting -------------------------------------------------------
    def subbus_values(self, words: Sequence[int], bus: int) -> list[int]:
        shift = bus * self.subbus_width
        return [(w >> shift) & self._sub_mask for w in words]

    def fit(self, words: Sequence[int]) -> "MemorylessCodebookEncoder":
        size = 1 << self.subbus_width
        for bus in range(self.num_subbuses):
            values = self.subbus_values(words, bus)
            weights = _pair_weights(values)
            distinct = sorted(
                set(values),
                key=lambda v: (-_incident_weight(v, weights), v),
            )
            if len(distinct) <= self.max_exact:
                assignment = exact_assignment(distinct, weights, size)
            else:
                assignment = greedy_assignment(distinct, weights, size)
            used = set(assignment.values())
            leftovers = iter(c for c in range(size) if c not in used)
            table = [0] * size
            for value in range(size):
                table[value] = assignment.get(value, -1)
            for value in range(size):
                if table[value] < 0:
                    table[value] = next(leftovers)
            self._set_tables(bus, table)
        return self

    def _set_tables(self, bus: int, table: list[int]) -> None:
        size = 1 << self.subbus_width
        inverse = [0] * size
        for value, code in enumerate(table):
            inverse[code] = value
        self._maps[bus] = table
        self._inverse[bus] = inverse

    # -- stateless word recoding ---------------------------------------
    def encode_word(self, word: int) -> int:
        word &= self._mask
        out = 0
        for bus in range(self.num_subbuses):
            shift = bus * self.subbus_width
            out |= self._maps[bus][(word >> shift) & self._sub_mask] << shift
        return out

    def decode_word(self, word: int) -> int:
        word &= self._mask
        out = 0
        for bus in range(self.num_subbuses):
            shift = bus * self.subbus_width
            out |= self._inverse[bus][(word >> shift) & self._sub_mask] << shift
        return out

    def encode(self, words: Sequence[int]) -> EncodedStream:
        return EncodedStream(
            self.scheme, self.width, [self.encode_word(w) for w in words]
        )

    def decode(self, stream: EncodedStream) -> list[int]:
        return [self.decode_word(w) for w in stream.driven]

    # -- metadata ------------------------------------------------------
    def budget(self) -> HardwareBudget:
        size = 1 << self.subbus_width
        return HardwareBudget(
            table_bits=self.num_subbuses * size * self.subbus_width * 2,
            extra_lines=0,
            stateful=False,
        )

    def to_config(self) -> dict:
        return {
            "width": self.width,
            "subbus_width": self.subbus_width,
            "max_exact": self.max_exact,
            "maps": [list(t) for t in self._maps],
        }

    @classmethod
    def from_config(cls, config: dict) -> "MemorylessCodebookEncoder":
        enc = cls(
            width=int(config.get("width", 32)),
            subbus_width=int(config.get("subbus_width", 4)),
            max_exact=int(config.get("max_exact", 5)),
        )
        maps = config.get("maps")
        if maps is not None:
            if len(maps) != enc.num_subbuses:
                raise EncodingError("memoryless config has wrong sub-bus count")
            size = 1 << enc.subbus_width
            for bus, table in enumerate(maps):
                table = [int(c) for c in table]
                if sorted(table) != list(range(size)):
                    raise EncodingError(
                        f"memoryless sub-bus {bus} map is not a bijection"
                    )
                enc._set_tables(bus, table)
        return enc


@register_reference_counter("memoryless")
def _memoryless_reference(encoder: Encoder, words: Sequence[int]) -> int:
    """Sub-bus-by-sub-bus recount: the Hamming distance of the packed
    stream must equal the sum of per-sub-bus mapped distances."""
    total = 0
    for bus in range(encoder.num_subbuses):
        values = encoder.subbus_values(words, bus)
        mapped = [encoder._maps[bus][v] for v in values]
        total += word_transitions(mapped)
    return total
