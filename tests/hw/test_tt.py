"""Tests for the Transformation Table model."""

import random

import pytest

from repro.core.program_codec import encode_basic_block
from repro.core.transformations import OPTIMAL_SET
from repro.hw.tt import TableCapacityError, TTEntry, TransformationTable


class TestTTEntry:
    def test_identity_entry_passthrough(self):
        entry = TTEntry.identity()
        assert entry.decode(0xDEADBEEF, 0x12345678) == 0xDEADBEEF

    def test_selector_semantics_per_line(self):
        # Line 0: identity, line 1: inversion, line 2: history, line 3:
        # inverted history, 4: xor, 5: xnor, 6: nor, 7: nand.
        entry = TTEntry(selectors=(0, 1, 2, 3, 4, 5, 6, 7))
        stored = 0b10101010
        prev = 0b11001100
        decoded = entry.decode(stored, prev)
        for line, transformation in enumerate(OPTIMAL_SET):
            x = (stored >> line) & 1
            y = (prev >> line) & 1
            assert (decoded >> line) & 1 == transformation(x, y), line

    def test_decode_matches_gate_by_gate_random(self):
        rng = random.Random(3)
        for _ in range(50):
            selectors = tuple(rng.randrange(8) for _ in range(32))
            entry = TTEntry(selectors=selectors)
            stored = rng.getrandbits(32)
            prev = rng.getrandbits(32)
            decoded = entry.decode(stored, prev)
            for line in range(32):
                x = (stored >> line) & 1
                y = (prev >> line) & 1
                expected = OPTIMAL_SET[selectors[line]](x, y)
                assert (decoded >> line) & 1 == expected

    def test_width_respected(self):
        entry = TTEntry(selectors=(1,) * 8)  # 8-bit bus, all inverted
        assert entry.decode(0x00, 0x00) == 0xFF
        assert entry.width == 8

    def test_bad_selector_rejected(self):
        with pytest.raises(ValueError):
            TTEntry(selectors=(8,))


class TestTransformationTable:
    def _encoding(self, words=None, block_size=5):
        words = words or [0x8C880000 | i for i in range(12)]
        return encode_basic_block(words, block_size)

    def test_allocate_returns_base_index(self):
        tt = TransformationTable(capacity=16)
        encoding = self._encoding()
        base1 = tt.allocate(encoding)
        base2 = tt.allocate(encoding)
        assert base1 == 0
        assert base2 == encoding.num_segments

    def test_end_bit_on_tail_only(self):
        tt = TransformationTable(capacity=16)
        encoding = self._encoding()
        tt.allocate(encoding)
        flags = [entry.end for entry in tt.entries]
        assert flags[-1] is True
        assert all(flag is False for flag in flags[:-1])

    def test_ct_counts_tail_instructions(self):
        tt = TransformationTable(capacity=16)
        # 12 instructions, k=5: segments (0,5), (4,5), (8,4); the tail
        # decodes instructions 9..11 -> CT = 3.
        encoding = self._encoding()
        tt.allocate(encoding)
        assert tt.entries[-1].count == 3

    def test_single_segment_block_ct(self):
        tt = TransformationTable(capacity=4)
        encoding = self._encoding(words=[1, 2, 3], block_size=5)
        tt.allocate(encoding)
        (entry,) = tt.entries
        assert entry.end and entry.count == 3

    def test_capacity_enforced(self):
        tt = TransformationTable(capacity=2)
        encoding = self._encoding()  # needs 3 entries
        with pytest.raises(TableCapacityError):
            tt.allocate(encoding)

    def test_clear(self):
        tt = TransformationTable(capacity=16)
        tt.allocate(self._encoding())
        tt.clear()
        assert len(tt) == 0
        assert tt.free_entries == 16

    def test_storage_bits(self):
        tt = TransformationTable(capacity=16, width=32)
        # 16 * (96 selector bits + E + 4-bit CT)
        assert tt.storage_bits(ct_bits=4) == 16 * 101

    def test_width_mismatch_rejected(self):
        tt = TransformationTable(capacity=16, width=16)
        with pytest.raises(ValueError):
            tt.allocate(self._encoding())

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            TransformationTable(capacity=0)
