"""Longer-history transformations — the paper's stated generalisation.

Section 5.1: "The transformation tau should be a function of the
current bit and a highly limited number, h, of history bits in the
form of ``x_n = tau(x~_n, x_{n-1}, ..., x_{n-h})``.  While
transformations with various history lengths can be considered, in
this paper we concentrate our attention on transformations with one
bit history."

This module explores the road not taken: ``h``-history transformations
as boolean functions of ``1 + h`` inputs (``2**2**(1+h)`` functions —
16 for h=1, 256 for h=2).  It answers, computationally, what the paper
leaves open:

* how much more transition reduction does h=2 buy on the theoretical
  (uniform) tables and on streams?
* what does it cost? (selector bits per block-line grow from 3 to
  ``ceil(log2 |set|)``, the per-line gate becomes a 3-input LUT, and
  the decoder needs a second history flip-flop.)

The encoder/decoder protocol generalises the h=1 anchored scheme: the
first ``h`` bits of a stream pass through unchanged (the decoder has
no history for them), later bits decode as
``x_n = tau(x~_n, x_{n-1}, ..., x_{n-h})`` over *decoded* history.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from repro.core.bitstream import count_transitions, validate_bits
from repro.errors import EncodingError

_INF = 1 << 30


@dataclass(frozen=True)
class HistoryFunc:
    """A boolean function of (stored bit, h history bits).

    ``truth_table`` bit index: ``x * 2**h + int(history_bits)`` where
    ``history_bits`` packs ``(y_1 .. y_h)`` (``y_1`` = most recent) in
    binary with ``y_1`` as the high bit.
    """

    history: int  # h
    truth_table: int

    def __post_init__(self) -> None:
        if self.history < 1:
            raise ValueError("history must be >= 1")
        size = 1 << (1 + self.history)
        if not 0 <= self.truth_table < (1 << size):
            raise ValueError(
                f"truth table must fit {size} entries, got {self.truth_table}"
            )

    def __call__(self, x: int, history_bits: Sequence[int]) -> int:
        if len(history_bits) != self.history:
            raise ValueError(
                f"expected {self.history} history bits, got {len(history_bits)}"
            )
        packed = 0
        for bit in history_bits:
            packed = (packed << 1) | (bit & 1)
        return (self.truth_table >> (((x & 1) << self.history) | packed)) & 1

    def solve_x(self, result: int, history_bits: Sequence[int]) -> tuple[int, ...]:
        """Stored bits ``x`` with ``f(x, history) == result``."""
        return tuple(
            x for x in (0, 1) if self(x, history_bits) == result
        )


def num_functions(history: int) -> int:
    """``2**2**(1+h)`` boolean functions of 1+h inputs."""
    return 1 << (1 << (1 + history))


def identity_function(history: int) -> HistoryFunc:
    """The function returning the stored bit regardless of history."""
    size = 1 << (1 + history)
    table = 0
    for index in range(size):
        x = index >> history
        table |= x << index
    return HistoryFunc(history, table)


class MultiHistorySolver:
    """Anchored per-block optimal search for h-history functions.

    The block's first ``h`` bits are anchored (stored unchanged); for
    ``i >= h`` the equation ``x_i = tau(c_i, x_{i-1}, .., x_{i-h})``
    must hold.  As in the h=1 case, for a fixed tau each position's
    stored bit is forced, free or infeasible, and a tiny DP fills free
    positions with minimal transitions.
    """

    def __init__(self, history: int, functions: Sequence[HistoryFunc] | None = None):
        if history < 1:
            raise ValueError("history must be >= 1")
        self.history = history
        if functions is None:
            functions = [
                HistoryFunc(history, tt) for tt in range(num_functions(history))
            ]
        self.functions = tuple(functions)

    def best_for_function(
        self, word: Sequence[int], func: HistoryFunc
    ) -> tuple[int, list[int]] | None:
        h = self.history
        allowed: list[tuple[int, ...]] = [(bit,) for bit in word[:h]]
        for i in range(h, len(word)):
            history_bits = [word[i - j] for j in range(1, h + 1)]
            options = func.solve_x(word[i], history_bits)
            if not options:
                return None
            allowed.append(options)
        # Min-transition fill (same DP as the h=1 solver).
        cost = {bit: 0 if bit in allowed[0] else _INF for bit in (0, 1)}
        back: list[dict[int, int]] = []
        for options in allowed[1:]:
            new_cost = {0: _INF, 1: _INF}
            pointers: dict[int, int] = {}
            for bit in options:
                best_prev, best = 0, _INF
                for prev in (0, 1):
                    candidate = cost[prev] + (prev != bit)
                    if candidate < best:
                        best, best_prev = candidate, prev
                new_cost[bit] = best
                pointers[bit] = best_prev
            cost = new_cost
            back.append(pointers)
        final_bit = 0 if cost[0] <= cost[1] else 1
        if cost[final_bit] >= _INF:
            return None
        bits = [final_bit]
        for pointers in reversed(back):
            bits.append(pointers[bits[-1]])
        bits.reverse()
        return cost[final_bit], bits

    def solve(self, word: Sequence[int]) -> tuple[int, list[int], HistoryFunc]:
        """Optimal (transitions, code, function) for one block word."""
        word = validate_bits(word)
        if len(word) <= self.history:
            return count_transitions(word), list(word), identity_function(self.history)
        best: tuple[int, list[int], HistoryFunc] | None = None
        for func in self.functions:
            result = self.best_for_function(word, func)
            if result is None:
                continue
            transitions, code = result
            if best is None or transitions < best[0]:
                best = (transitions, code, func)
                if transitions == 0:
                    break
        if best is None:  # identity is always feasible
            raise EncodingError(
                f"no feasible code word for block word {list(word)} although "
                "the identity transformation is always applicable"
            )
        return best

    def decode(
        self, code: Sequence[int], func: HistoryFunc
    ) -> list[int]:
        """Bit-serial decode: first h bits pass through."""
        h = self.history
        decoded = list(code[:h])
        for i in range(h, len(code)):
            history_bits = [decoded[i - j] for j in range(1, h + 1)]
            decoded.append(func(code[i], history_bits))
        return decoded


def theory_rtn(block_size: int, history: int) -> int:
    """RTN over all block words for h-history transformations.

    The h=1 case must agree with :mod:`repro.core.theory`; h=2 answers
    the paper's open generalisation.  Exponential in ``2**2**(1+h)`` —
    practical for h <= 2.
    """
    solver = MultiHistorySolver(history)
    total = 0
    for word in itertools.product((0, 1), repeat=block_size):
        transitions, _, _ = solver.solve(list(word))
        total += transitions
    return total


def used_functions(block_size: int, history: int) -> set[int]:
    """Truth tables of functions chosen by the optimal codebooks."""
    solver = MultiHistorySolver(history)
    used = set()
    for word in itertools.product((0, 1), repeat=block_size):
        _, _, func = solver.solve(list(word))
        used.add(func.truth_table)
    return used
