"""32-bit instruction word encoding and decoding."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import (
    FMT_BC,
    FMT_MFC1,
    FMT_MTC1,
    FR_BY_KEY,
    IJ_BY_OPCODE,
    OP_COP1,
    OP_REGIMM,
    OP_SPECIAL,
    R_BY_FUNCT,
    RI_BY_COND,
    SPECS_BY_NAME,
    InstructionSpec,
)

MASK32 = 0xFFFFFFFF


class DecodeError(ValueError):
    """Raised when a word does not decode to a known instruction."""


@dataclass(frozen=True)
class Instruction:
    """A decoded (or assembled) instruction: spec plus field values.

    Field dictionary keys: ``rs rt rd shamt imm target ft fs fd``.
    ``imm`` is stored as an unsigned 16-bit value; use :attr:`simm`
    for the sign-extended interpretation.
    """

    spec: InstructionSpec
    fields: dict[str, int] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.spec.name

    def get(self, key: str) -> int:
        return self.fields.get(key, 0)

    @property
    def simm(self) -> int:
        """Sign-extended 16-bit immediate."""
        imm = self.get("imm")
        return imm - 0x10000 if imm & 0x8000 else imm

    def encode(self) -> int:
        """Pack the instruction into its 32-bit word."""
        return encode_fields(self.spec, self.fields)

    def __repr__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"Instruction({self.name} {parts})"


def _check(value: int, width: int, what: str) -> int:
    if value < 0 or value >= (1 << width):
        raise ValueError(f"{what} {value} does not fit in {width} bits")
    return value


def encode_fields(spec: InstructionSpec, fields: dict[str, int]) -> int:
    """Pack a spec + field dict into a 32-bit instruction word."""
    get = lambda key: fields.get(key, 0)  # noqa: E731 - tiny local alias
    rs = _check(get("rs"), 5, "rs")
    # FP loads/stores (ldc1 etc.) are I-format with the FP register in
    # the rt bit positions.
    rt = _check(get("rt") or get("ft"), 5, "rt")
    if spec.fmt == "R":
        return (
            (OP_SPECIAL << 26)
            | (rs << 21)
            | (rt << 16)
            | (_check(get("rd"), 5, "rd") << 11)
            | (_check(get("shamt"), 5, "shamt") << 6)
            | spec.funct
        )
    if spec.fmt == "I":
        return (
            (spec.opcode << 26)
            | (rs << 21)
            | (rt << 16)
            | _check(get("imm"), 16, "imm")
        )
    if spec.fmt == "J":
        return (spec.opcode << 26) | _check(get("target"), 26, "target")
    if spec.fmt == "RI":
        return (
            (OP_REGIMM << 26)
            | (rs << 21)
            | (spec.cond << 16)
            | _check(get("imm"), 16, "imm")
        )
    if spec.fmt == "FR":
        return (
            (OP_COP1 << 26)
            | (spec.cop_fmt << 21)
            | (_check(get("ft"), 5, "ft") << 16)
            | (_check(get("fs"), 5, "fs") << 11)
            | (_check(get("fd"), 5, "fd") << 6)
            | spec.funct
        )
    if spec.fmt == "FB":
        return (
            (OP_COP1 << 26)
            | (FMT_BC << 21)
            | (spec.cond << 16)
            | _check(get("imm"), 16, "imm")
        )
    if spec.fmt == "FM":
        return (
            (OP_COP1 << 26)
            | (spec.cop_fmt << 21)
            | (rt << 16)
            | (_check(get("fs"), 5, "fs") << 11)
        )
    raise AssertionError(f"unhandled format {spec.fmt}")


def decode_word(word: int) -> Instruction:
    """Decode a 32-bit word into an :class:`Instruction`.

    Raises :class:`DecodeError` for unknown encodings.
    """
    word &= MASK32
    opcode = word >> 26
    rs = (word >> 21) & 0x1F
    rt = (word >> 16) & 0x1F
    rd = (word >> 11) & 0x1F
    shamt = (word >> 6) & 0x1F
    funct = word & 0x3F
    imm = word & 0xFFFF

    if opcode == OP_SPECIAL:
        spec = R_BY_FUNCT.get(funct)
        if spec is None:
            raise DecodeError(f"unknown R-type funct {funct:#x} in {word:#010x}")
        return Instruction(
            spec, {"rs": rs, "rt": rt, "rd": rd, "shamt": shamt}
        )
    if opcode == OP_REGIMM:
        spec = RI_BY_COND.get(rt)
        if spec is None:
            raise DecodeError(f"unknown regimm cond {rt} in {word:#010x}")
        return Instruction(spec, {"rs": rs, "imm": imm})
    if opcode == OP_COP1:
        cop_fmt = rs
        if cop_fmt == FMT_BC:
            spec = SPECS_BY_NAME["bc1t" if rt & 1 else "bc1f"]
            return Instruction(spec, {"imm": imm})
        if cop_fmt == FMT_MFC1:
            return Instruction(SPECS_BY_NAME["mfc1"], {"rt": rt, "fs": rd})
        if cop_fmt == FMT_MTC1:
            return Instruction(SPECS_BY_NAME["mtc1"], {"rt": rt, "fs": rd})
        spec = FR_BY_KEY.get((cop_fmt, funct))
        if spec is None:
            raise DecodeError(
                f"unknown COP1 fmt/funct {cop_fmt:#x}/{funct:#x} in {word:#010x}"
            )
        return Instruction(spec, {"ft": rt, "fs": rd, "fd": shamt})
    spec = IJ_BY_OPCODE.get(opcode)
    if spec is None:
        raise DecodeError(f"unknown opcode {opcode:#x} in {word:#010x}")
    if spec.fmt == "J":
        return Instruction(spec, {"target": word & 0x3FFFFFF})
    if "ft" in spec.syntax:  # FP load/store: rt bits hold the FP register
        return Instruction(spec, {"rs": rs, "ft": rt, "imm": imm})
    return Instruction(spec, {"rs": rs, "rt": rt, "imm": imm})
