"""Register naming for the MIPS-like ISA.

Thirty-two integer registers with the standard MIPS ABI names and
thirty-two floating-point registers ``$f0``-``$f31``.  ``$zero`` is
hard-wired to zero; ``$at`` is reserved for assembler pseudo-instruction
expansion.
"""

from __future__ import annotations

#: ABI names indexed by register number.
REG_NAMES: tuple[str, ...] = (
    "zero",
    "at",
    "v0",
    "v1",
    "a0",
    "a1",
    "a2",
    "a3",
    "t0",
    "t1",
    "t2",
    "t3",
    "t4",
    "t5",
    "t6",
    "t7",
    "s0",
    "s1",
    "s2",
    "s3",
    "s4",
    "s5",
    "s6",
    "s7",
    "t8",
    "t9",
    "k0",
    "k1",
    "gp",
    "sp",
    "fp",
    "ra",
)

_NAME_TO_NUM: dict[str, int] = {name: i for i, name in enumerate(REG_NAMES)}
_NAME_TO_NUM.update({str(i): i for i in range(32)})

#: Number of integer / floating point registers.
NUM_REGS = 32
NUM_FREGS = 32

#: Register numbers with special roles.
ZERO, AT, V0, V1 = 0, 1, 2, 3
A0, A1, A2, A3 = 4, 5, 6, 7
GP, SP, FP, RA = 28, 29, 30, 31


def reg_num(token: str) -> int:
    """Parse an integer register reference like ``$t0``, ``$8`` or
    ``t0`` into its number."""
    name = token[1:] if token.startswith("$") else token
    try:
        return _NAME_TO_NUM[name.lower()]
    except KeyError:
        raise ValueError(f"unknown integer register {token!r}") from None


def reg_name(num: int) -> str:
    """ABI name (with ``$``) for a register number."""
    if not 0 <= num < NUM_REGS:
        raise ValueError(f"register number out of range: {num}")
    return f"${REG_NAMES[num]}"


def freg_num(token: str) -> int:
    """Parse a floating-point register reference like ``$f4``."""
    name = token[1:] if token.startswith("$") else token
    name = name.lower()
    if name.startswith("f"):
        try:
            num = int(name[1:])
        except ValueError:
            raise ValueError(f"unknown FP register {token!r}") from None
        if 0 <= num < NUM_FREGS:
            return num
    raise ValueError(f"unknown FP register {token!r}")


def freg_name(num: int) -> str:
    """Name (with ``$``) for an FP register number."""
    if not 0 <= num < NUM_FREGS:
        raise ValueError(f"FP register number out of range: {num}")
    return f"$f{num}"


def is_freg(token: str) -> bool:
    """True if the token looks like an FP register reference."""
    name = token[1:] if token.startswith("$") else token
    return (
        len(name) >= 2
        and name[0] in "fF"
        and name[1:].isdigit()
        and 0 <= int(name[1:]) < NUM_FREGS
    )
