"""Storage-fault injection: every durability op, every fault model.

The contract under test, for ``atomic_write_text`` and
``CheckpointLog`` with a fault injected at *every* syscall index:

* only typed :class:`StorageError`\\ s (or :class:`SimulatedCrash`)
  reach the caller — never a bare ``OSError``;
* the on-disk artifact honours its invariant regardless of where the
  fault landed (complete-old-or-complete-new; no acknowledged WAL
  record lost);
* once the fault clears (``plan.disarm()``), a retry succeeds and
  leaves the final state.
"""

import pytest

from repro.errors import (
    StorageError,
    StorageFullError,
    StorageReplaceError,
    StorageSyncError,
    StorageWriteError,
)
from repro.obs.flight import FlightRecorder
from repro.runtime.checkpoint import CheckpointLog, atomic_write_text
from repro.runtime.storage_faults import (
    ENV_SPEC,
    FaultPlan,
    FaultSpec,
    FaultyVFS,
    SimulatedCrash,
    plan_from_spec,
)

KINDS = ("eio", "enospc", "torn", "crash", "crash-after")

OLD = '{"version": 1}\n'
NEW = '{"version": 2}\n'

RECORDS = [
    ("case-a", {"outcome": "detected", "n": 1}),
    ("case-b", {"outcome": "recovered", "n": 2}),
    ("case-c", {"outcome": "masked", "n": 3}),
]

#: Generous upper bounds on the syscall counts of the two workloads,
#: so the sweeps cover every index plus a few that never fire.
ATOMIC_SYSCALLS = 8
WAL_SYSCALLS = 14


def _plan(kind: str, at: int) -> FaultPlan:
    return FaultPlan(specs=[FaultSpec(op="any", kind=kind, at=at)], seed=7)


class TestAtomicWriteSweep:
    @pytest.mark.parametrize("kind", KINDS)
    def test_every_syscall_fault_point(self, tmp_path, kind):
        target = tmp_path / "report.json"
        for at in range(ATOMIC_SYSCALLS):
            target.write_text(OLD)
            plan = _plan(kind, at)
            vfs = FaultyVFS(plan)
            try:
                atomic_write_text(target, NEW, vfs=vfs)
            except SimulatedCrash:
                pass
            except StorageError:
                pass
            except OSError as err:  # pragma: no cover - the failure mode
                pytest.fail(
                    f"bare OSError escaped at syscall {at}: {err!r}"
                )
            # Never torn, regardless of where the fault landed.
            assert target.read_text() in (OLD, NEW), (kind, at)
            # The disk heals; the write must now land.
            plan.disarm()
            atomic_write_text(target, NEW, vfs=vfs)
            assert target.read_text() == NEW

    def test_typed_error_matches_the_failed_op(self, tmp_path):
        target = tmp_path / "r.json"
        # Syscall order in atomic_write_text: open, write, fsync,
        # replace — each maps to its own typed error.
        cases = [
            (0, "eio", StorageWriteError),
            (1, "eio", StorageWriteError),
            (2, "eio", StorageSyncError),
            (3, "eio", StorageReplaceError),
            (1, "enospc", StorageFullError),
            (2, "enospc", StorageFullError),
        ]
        for at, kind, expected in cases:
            with pytest.raises(expected):
                atomic_write_text(
                    target, NEW, vfs=FaultyVFS(_plan(kind, at))
                )

    def test_storage_errors_still_read_as_oserror(self, tmp_path):
        # Legacy `except OSError` degradation paths must keep working.
        with pytest.raises(OSError):
            atomic_write_text(
                tmp_path / "r.json", NEW, vfs=FaultyVFS(_plan("eio", 1))
            )
        assert issubclass(StorageFullError, OSError)

    def test_crash_leaves_no_cleanup_but_no_tear(self, tmp_path):
        target = tmp_path / "r.json"
        target.write_text(OLD)
        with pytest.raises(SimulatedCrash):
            atomic_write_text(target, NEW, vfs=FaultyVFS(_plan("torn", 1)))
        # Dead processes don't clean up: the orphan tmp file stays,
        # the target holds the complete old version.
        assert target.read_text() == OLD
        orphans = list(tmp_path.glob(".r.json.*.tmp"))
        assert orphans, "a real kill leaves the temp file behind"


class TestCheckpointSweep:
    @pytest.mark.parametrize("kind", KINDS)
    def test_every_syscall_fault_point(self, tmp_path, kind):
        expected = dict(RECORDS)
        for at in range(WAL_SYSCALLS):
            wal = tmp_path / f"{kind}-{at}.wal"
            plan = _plan(kind, at)
            vfs = FaultyVFS(plan)
            acked: list[str] = []
            log = CheckpointLog(wal, run_key="rk", vfs=vfs)
            try:
                for key, result in RECORDS:
                    log.record(key, result)
                    acked.append(key)
            except SimulatedCrash:
                pass
            except StorageError:
                pass
            except OSError as err:  # pragma: no cover - the failure mode
                pytest.fail(
                    f"bare OSError escaped at syscall {at}: {err!r}"
                )
            finally:
                log.close()
            # Replay through the real filesystem: every acknowledged
            # record intact, nothing phantom.
            replayed = CheckpointLog(wal, run_key="rk").load()
            for key in acked:
                assert replayed[key] == expected[key], (kind, at)
            for key, value in replayed.items():
                assert expected[key] == value, (kind, at)
            # Heal and finish the run on the same log file.
            plan.disarm()
            retry = CheckpointLog(wal, run_key="rk", vfs=vfs)
            retry.load()
            for key, result in RECORDS:
                retry.record(key, result)
            retry.close()
            final = CheckpointLog(wal, run_key="rk").load()
            assert final == expected, (kind, at)

    def test_torn_header_recovery_rewrites_the_header(self, tmp_path):
        # A crash can tear the header line itself; the next writer
        # must notice the header is missing and re-append it, or the
        # replay mistakes the first record for the header.
        wal = tmp_path / "x.wal"
        wal.write_bytes(b'{"run_key": "rk"')  # torn: no close, no \n
        log = CheckpointLog(wal, run_key="rk")
        log.record("a", {"v": 1})
        log.close()
        assert CheckpointLog(wal, run_key="rk").load() == {"a": {"v": 1}}

    def test_enospc_on_fsync_is_the_degradable_error(self, tmp_path):
        # The serve path degrades on StorageFullError specifically —
        # delayed allocation makes fsync the op that surfaces ENOSPC.
        log = CheckpointLog(
            tmp_path / "x.wal",
            run_key="rk",
            vfs=FaultyVFS(
                FaultPlan(
                    specs=[FaultSpec(op="fsync", kind="enospc", at=2)],
                    seed=1,
                )
            ),
        )
        log.record("a", {"v": 1})  # header fsync=0, record fsync=1
        with pytest.raises(StorageFullError):
            log.record("b", {"v": 2})
        log.close()


class TestPlanMechanics:
    def test_spec_validation_rejects_unknown_names(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="gremlins")
        with pytest.raises(ValueError):
            FaultSpec(op="mmap")

    def test_path_filter_scopes_the_blast_radius(self, tmp_path):
        plan = FaultPlan(
            specs=[FaultSpec(op="any", kind="eio", path="camp.wal", always=True)]
        )
        vfs = FaultyVFS(plan)
        # The WAL is broken ...
        log = CheckpointLog(tmp_path / "camp.wal", run_key="rk", vfs=vfs)
        with pytest.raises(StorageError):
            log.record("a", {"v": 1})
        log.close()
        # ... the report next to it is not.
        atomic_write_text(tmp_path / "report.json", NEW, vfs=vfs)
        assert (tmp_path / "report.json").read_text() == NEW

    def test_torn_cut_is_seed_deterministic(self, tmp_path):
        def torn_bytes(run: int) -> bytes:
            target = tmp_path / f"t{run}.json"
            with pytest.raises(SimulatedCrash):
                atomic_write_text(
                    target, "x" * 200, vfs=FaultyVFS(_plan("torn", 1))
                )
            orphan = next(tmp_path.glob(f".t{run}.json.*.tmp"))
            return orphan.read_bytes()

        assert torn_bytes(0) == torn_bytes(1)

    def test_plan_from_spec_round_trip(self):
        plan = plan_from_spec(
            "seed=3;op=write,kind=torn,path=camp.wal,at=17;"
            "op=fsync,kind=enospc,always=true"
        )
        assert plan.seed == 3
        assert len(plan.specs) == 2
        first, second = plan.specs
        assert (first.op, first.kind, first.path, first.at) == (
            "write",
            "torn",
            "camp.wal",
            17,
        )
        assert second.always is True

    def test_bad_spec_is_rejected_loudly(self):
        with pytest.raises(ValueError):
            plan_from_spec("write-torn-17")

    def test_env_spec_arms_injection(self, tmp_path, monkeypatch):
        import repro.runtime.storage_faults as sf

        monkeypatch.setenv(ENV_SPEC, "seed=5;op=write,kind=eio,at=0")
        monkeypatch.setattr(sf, "_env_checked", False)
        monkeypatch.setattr(sf, "_active", None)
        vfs = sf.get_vfs()
        assert isinstance(vfs, FaultyVFS)
        with pytest.raises(StorageError):
            atomic_write_text(tmp_path / "x.json", "hello")


class TestFlightDumpHardening:
    def test_failed_dump_counts_and_keeps_the_ring(self, tmp_path):
        recorder = FlightRecorder(
            capacity=8,
            vfs=FaultyVFS(
                FaultPlan(specs=[FaultSpec(op="write", kind="eio", always=True)])
            ),
        )
        recorder.record("tick", n=1)
        assert recorder.dump(tmp_path / "f.jsonl", reason="test") is False
        assert recorder.dump_errors == 1
        assert len(recorder.tail(10)) == 1  # ring intact
        snapshot = recorder.snapshot()
        assert snapshot["dump_errors"] == 1
        assert snapshot["dumps_written"] == 0

    def test_failed_dump_does_not_burn_the_rate_limit(self, tmp_path):
        clock = {"t": 0.0}
        plan = FaultPlan(specs=[FaultSpec(op="write", kind="eio", always=True)])
        recorder = FlightRecorder(
            capacity=8, clock=lambda: clock["t"], vfs=FaultyVFS(plan)
        )
        recorder.record("tick")
        assert recorder.dump(tmp_path / "f.jsonl", reason="r") is False
        # Same instant, same reason: a *successful* first dump would be
        # rate-limited here; the failed one must not be.
        plan.disarm()
        assert recorder.dump(tmp_path / "f.jsonl", reason="r") is True

    def test_dump_repairs_a_torn_boundary_before_appending(self, tmp_path):
        import json

        path = tmp_path / "f.jsonl"
        path.write_bytes(b'{"event": "flight_dump", "torn": ')  # no newline
        recorder = FlightRecorder(capacity=8)
        recorder.record("tick")
        assert recorder.dump(path, reason="r") is True
        lines = path.read_bytes().split(b"\n")
        # Torn fragment newline-terminated, every later line parses.
        assert lines[0] == b'{"event": "flight_dump", "torn": '
        for line in lines[1:-1]:
            json.loads(line)
