"""Instruction-bus transition and energy model.

Power on a bus line is proportional to its toggle count times the line
capacitance (the paper's premise, after [1]).  This module counts bit
transitions over a fetch trace for an arbitrary memory image — the
baseline image or the power-encoded one — using numpy so multi-million
fetch traces are cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.isa.assembler import Program


def _trace_words(
    program: Program,
    addresses: Sequence[int],
    image: Sequence[int] | None = None,
) -> np.ndarray:
    """Vector of bus words for a fetch trace.

    ``image`` overrides the program's stored words (same layout); use
    it for the power-encoded memory image.
    """
    words = np.asarray(image if image is not None else program.words, dtype=np.uint32)
    index = (np.asarray(addresses, dtype=np.int64) - program.text_base) >> 2
    if index.size and (index.min() < 0 or index.max() >= words.size):
        raise ValueError("trace contains addresses outside the text image")
    return words[index]


def count_trace_transitions(
    program: Program,
    addresses: Sequence[int],
    image: Sequence[int] | None = None,
) -> int:
    """Total bit transitions on the instruction bus over a trace."""
    fetched = _trace_words(program, addresses, image)
    if fetched.size < 2:
        total = 0
    else:
        toggles = np.bitwise_xor(fetched[1:], fetched[:-1])
        total = int(np.bitwise_count(toggles).sum())
    from repro.obs import OBS

    if OBS.enabled:
        which = "baseline" if image is None else "patched"
        OBS.registry.counter(
            "bus.measurements", "transition-count evaluations", image=which
        ).inc()
        OBS.registry.counter(
            "bus.transitions_measured",
            "bit transitions counted across all measurements",
            image=which,
        ).inc(total)
    return total


def per_line_trace_transitions(
    program: Program,
    addresses: Sequence[int],
    image: Sequence[int] | None = None,
    width: int = 32,
) -> list[int]:
    """Per-bus-line transition counts over a trace."""
    fetched = _trace_words(program, addresses, image)
    if fetched.size < 2:
        return [0] * width
    toggles = np.bitwise_xor(fetched[1:], fetched[:-1])
    return [
        int(((toggles >> np.uint32(bit)) & np.uint32(1)).sum())
        for bit in range(width)
    ]


@dataclass(frozen=True)
class BusModel:
    """A simple energy model: ``E = C_line * V^2 * toggles`` per line.

    Defaults model an on-chip bus; pass a larger ``line_capacitance``
    (tens of pF) for the off-chip / external-flash case the paper
    highlights as even more transition-sensitive.
    """

    line_capacitance: float = 0.5e-12  # farads, per line
    supply_voltage: float = 1.8  # volts
    width: int = 32

    def energy_joules(self, transitions: int) -> float:
        """Dynamic energy for a transition count (0.5 C V^2 per toggle)."""
        return 0.5 * self.line_capacitance * self.supply_voltage**2 * transitions

    def trace_energy(
        self,
        program: Program,
        addresses: Sequence[int],
        image: Sequence[int] | None = None,
    ) -> float:
        return self.energy_joules(
            count_trace_transitions(program, addresses, image)
        )

    def savings_percent(
        self, baseline_transitions: int, encoded_transitions: int
    ) -> float:
        if baseline_transitions == 0:
            return 0.0
        return (
            100.0
            * (baseline_transitions - encoded_transitions)
            / baseline_transitions
        )


def image_with_patches(
    program: Program, patches: Mapping[int, int]
) -> list[int]:
    """The program's word image with ``{address: word}`` overrides —
    how the encoded program memory is materialised."""
    image = list(program.words)
    base = program.text_base
    for address, word in patches.items():
        offset = address - base
        if offset < 0 or offset % 4 or offset // 4 >= len(image):
            raise ValueError(f"patch address {address:#010x} not in text")
        image[offset // 4] = word & 0xFFFFFFFF
    return image
