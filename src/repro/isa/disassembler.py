"""Disassembler: 32-bit words back to assembly text.

Primarily a debugging and testing aid; the test suite round-trips
``assemble -> encode -> disassemble -> assemble`` to pin the encoding.
"""

from __future__ import annotations

from typing import Sequence

from repro.isa.instruction import Instruction, decode_word
from repro.isa.registers import freg_name, reg_name


def _format_operand(role: str, inst: Instruction, address: int | None) -> str:
    if role in ("rd", "rs", "rt"):
        return reg_name(inst.get(role))
    if role in ("fd", "fs", "ft"):
        return freg_name(inst.get(role))
    if role == "shamt":
        return str(inst.get("shamt"))
    if role == "imm":
        return str(inst.simm)
    if role == "mem":
        return f"{inst.simm}({reg_name(inst.get('rs'))})"
    if role == "branch":
        if address is None:
            return f".{4 * inst.simm + 4:+d}"
        return f"{address + 4 + 4 * inst.simm:#010x}"
    if role == "target":
        return f"{inst.get('target') << 2:#010x}"
    raise AssertionError(f"unknown syntax role {role}")


def format_instruction(inst: Instruction, address: int | None = None) -> str:
    """Render a decoded instruction as assembly text."""
    operands = ", ".join(
        _format_operand(role, inst, address) for role in inst.spec.syntax
    )
    return f"{inst.name} {operands}".strip()


def disassemble_word(word: int, address: int | None = None) -> str:
    """Disassemble a single 32-bit word."""
    return format_instruction(decode_word(word), address)


def disassemble(
    words: Sequence[int], base_address: int = 0, with_addresses: bool = True
) -> str:
    """Disassemble a sequence of words into a listing."""
    lines = []
    for i, word in enumerate(words):
        address = base_address + 4 * i
        text = disassemble_word(word, address)
        if with_addresses:
            lines.append(f"{address:#010x}:  {word:08x}  {text}")
        else:
            lines.append(text)
    return "\n".join(lines)
