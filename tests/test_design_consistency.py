"""Documentation consistency guards.

DESIGN.md promises an experiment index and a module map; these tests
keep the promises true as the repository evolves.
"""

import pathlib
import re

ROOT = pathlib.Path(__file__).parent.parent


class TestExperimentIndex:
    def test_every_indexed_bench_exists(self):
        design = (ROOT / "DESIGN.md").read_text()
        targets = re.findall(r"`(benchmarks/test_[a-z0-9_]+\.py)`", design)
        assert targets, "DESIGN.md must index bench targets"
        for target in targets:
            assert (ROOT / target).is_file(), f"{target} missing"

    def test_every_bench_is_indexed_or_perf(self):
        design = (ROOT / "DESIGN.md").read_text()
        for path in sorted((ROOT / "benchmarks").glob("test_*.py")):
            name = f"benchmarks/{path.name}"
            if "perf" in path.name:
                continue  # component throughput benches live outside the index
            assert name in design, f"{name} not in DESIGN.md's index"

    def test_collect_report_covers_all_artefacts(self):
        import examples.collect_report as collector

        indexed = {stem for stem, _ in collector.SECTIONS}
        results_dir = ROOT / "benchmarks" / "results"
        if not results_dir.is_dir():
            return
        on_disk = {p.stem for p in results_dir.glob("*.txt")}
        assert on_disk <= indexed | {"ext_compiled_codegen"} | indexed, (
            on_disk - indexed
        )


class TestModuleMap:
    def test_every_mapped_module_exists(self):
        design = (ROOT / "DESIGN.md").read_text()
        block = design.split("## 3. System inventory", 1)[1].split("```")[1]
        for line in block.splitlines():
            match = re.match(r"\s+([a-z_]+\.py)\s", line)
            if not match:
                continue
            name = match.group(1)
            hits = list((ROOT / "src" / "repro").rglob(name))
            assert hits, f"DESIGN.md maps {name} but no such module exists"

    def test_every_subpackage_is_mapped(self):
        design = (ROOT / "DESIGN.md").read_text()
        for package in (ROOT / "src" / "repro").iterdir():
            if not package.is_dir() or package.name.startswith("__"):
                continue
            assert (
                f"{package.name}/" in design
            ), f"subpackage {package.name} missing from DESIGN.md"


class TestPaperMapping:
    def test_mapped_code_references_resolve(self):
        text = (ROOT / "docs" / "paper_mapping.md").read_text()
        # Spot-check module-path references of the form `x.y.z`.
        for ref in re.findall(r"`((?:core|isa|sim|cfg|hw|baselines|workloads|minicc|pipeline)\.[a-z_0-9]+)", text):
            package, module = ref.split(".", 1)
            module = module.split(".")[0]
            path = ROOT / "src" / "repro" / package / f"{module}.py"
            assert path.is_file(), f"paper_mapping references missing {ref}"
