"""Firmware bundles: the deployable artefact of the flow.

The paper's deployment story (Section 7.1): the *encoded* program
image goes to the instruction memory, and the transformation
information goes to the processor "either when loading the program or
by software prior to entering the application hot spot".  A
:class:`EncodingBundle` captures exactly that shippable pair —
encoded words plus TT/BBIT programming — as JSON, with integrity
checksums, so a build machine can encode once and a loader (or the
generated software-reload prologue) can apply it later.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Sequence

from repro.hw.bbit import BasicBlockIdentificationTable, BBITEntry
from repro.hw.tt import TransformationTable, TTEntry

FORMAT_VERSION = 1


def _digest(words: Sequence[int]) -> str:
    payload = b"".join(w.to_bytes(4, "little") for w in words)
    return hashlib.sha256(payload).hexdigest()


@dataclass
class EncodingBundle:
    """Everything a loader needs to deploy one encoded program."""

    name: str
    block_size: int
    text_base: int
    encoded_words: list[int]
    original_digest: str  # sha256 of the pre-encoding image
    tt_entries: list[dict] = field(default_factory=list)
    bbit_entries: list[dict] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_flow_result(cls, program, result) -> "EncodingBundle":
        """Build a bundle from a :class:`~repro.pipeline.flow.FlowResult`.

        Re-derives the table programming from the result's selected
        blocks (the flow's own TT/BBIT are transient).
        """
        from repro.cfg.graph import ControlFlowGraph
        from repro.core.program_codec import encode_basic_block

        cfg = ControlFlowGraph.build(program)
        bundle = cls(
            name=result.name,
            block_size=result.block_size,
            text_base=program.text_base,
            encoded_words=list(result.encoded_image),
            original_digest=_digest(program.words),
        )
        tt_index = 0
        for start in result.selected_blocks:
            block = cfg.blocks[start]
            length = (
                result.plan.encoded_length(start, len(block))
                if result.plan is not None
                else len(block)
            )
            encoding = encode_basic_block(
                block.words[:length], result.block_size
            )
            bounds = encoding.bounds
            base_index = tt_index
            for row, (seg_start, seg_len) in zip(encoding.selectors(), bounds):
                is_tail = seg_start + seg_len >= length
                bundle.tt_entries.append(
                    {
                        "selectors": list(row),
                        "end": is_tail,
                        "count": (
                            (seg_len if seg_start == 0 else seg_len - 1)
                            if is_tail
                            else 0
                        ),
                    }
                )
                tt_index += 1
            bundle.bbit_entries.append(
                {
                    "pc": start,
                    "tt_index": base_index,
                    "num_instructions": length,
                }
            )
        return bundle

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "format_version": FORMAT_VERSION,
                "name": self.name,
                "block_size": self.block_size,
                "text_base": self.text_base,
                "original_digest": self.original_digest,
                "encoded_digest": _digest(self.encoded_words),
                "encoded_words": [f"{w:08x}" for w in self.encoded_words],
                "tt": self.tt_entries,
                "bbit": self.bbit_entries,
            },
            indent=1,
        )

    @classmethod
    def from_json(cls, text: str) -> "EncodingBundle":
        data = json.loads(text)
        if data.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported bundle format {data.get('format_version')!r}"
            )
        words = [int(w, 16) for w in data["encoded_words"]]
        if _digest(words) != data["encoded_digest"]:
            raise ValueError("bundle corrupt: encoded image digest mismatch")
        return cls(
            name=data["name"],
            block_size=data["block_size"],
            text_base=data["text_base"],
            encoded_words=words,
            original_digest=data["original_digest"],
            tt_entries=data["tt"],
            bbit_entries=data["bbit"],
        )

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def build_tables(
        self, tt_capacity: int = 16, bbit_capacity: int = 16
    ) -> tuple[TransformationTable, BasicBlockIdentificationTable]:
        """Materialise hardware tables from the bundle (the "load with
        the program" alternative of Section 7.1)."""
        tt = TransformationTable(max(tt_capacity, len(self.tt_entries)))
        for entry in self.tt_entries:
            tt.entries.append(
                TTEntry(
                    selectors=tuple(entry["selectors"]),
                    end=bool(entry["end"]),
                    count=int(entry["count"]),
                )
            )
        bbit = BasicBlockIdentificationTable(
            max(bbit_capacity, len(self.bbit_entries) or 1)
        )
        for entry in self.bbit_entries:
            bbit.install(
                BBITEntry(
                    pc=int(entry["pc"]),
                    tt_index=int(entry["tt_index"]),
                    num_instructions=int(entry["num_instructions"]),
                )
            )
        return tt, bbit

    def verify_against(self, program) -> bool:
        """Check this bundle belongs to ``program`` (pre-encoding
        image digest match)."""
        return _digest(program.words) == self.original_digest

    def deploy_and_check(self, program, trace: Sequence[int]) -> bool:
        """Full loader path: rebuild tables, decode the trace through
        the hardware model, compare with the original program."""
        from repro.hw.fetch_decoder import FetchDecoder

        if not self.verify_against(program):
            raise ValueError(
                f"bundle {self.name!r} does not match this program image"
            )
        tt, bbit = self.build_tables()
        decoder = FetchDecoder(tt, bbit, self.block_size)
        base = self.text_base
        decoded = decoder.decode_trace(
            list(trace), lambda pc: self.encoded_words[(pc - base) >> 2]
        )
        original = [program.words[(pc - base) >> 2] for pc in trace]
        return decoded == original
