"""Tests for register naming."""

import pytest

from repro.isa.registers import (
    NUM_FREGS,
    NUM_REGS,
    REG_NAMES,
    freg_name,
    freg_num,
    is_freg,
    reg_name,
    reg_num,
)


class TestIntegerRegisters:
    def test_thirty_two_names(self):
        assert len(REG_NAMES) == NUM_REGS == 32

    def test_abi_names(self):
        assert reg_num("$zero") == 0
        assert reg_num("$at") == 1
        assert reg_num("$v0") == 2
        assert reg_num("$a0") == 4
        assert reg_num("$t0") == 8
        assert reg_num("$s0") == 16
        assert reg_num("$sp") == 29
        assert reg_num("$ra") == 31

    def test_numeric_names(self):
        for i in range(32):
            assert reg_num(f"${i}") == i

    def test_roundtrip(self):
        for i in range(32):
            assert reg_num(reg_name(i)) == i

    def test_case_insensitive(self):
        assert reg_num("$T0") == 8

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            reg_num("$t99")
        with pytest.raises(ValueError):
            reg_name(32)


class TestFpRegisters:
    def test_parse(self):
        assert freg_num("$f0") == 0
        assert freg_num("$f31") == 31

    def test_roundtrip(self):
        for i in range(NUM_FREGS):
            assert freg_num(freg_name(i)) == i

    def test_is_freg(self):
        assert is_freg("$f4")
        assert not is_freg("$t4")
        assert not is_freg("$f32")
        assert not is_freg("$f")

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            freg_num("$f32")
        with pytest.raises(ValueError):
            freg_name(-1)
