"""Retry with deterministic backoff, and a pool circuit breaker.

Campaign results must be reproducible byte-for-byte, so the jitter
that decorrelates retry storms cannot come from ``random`` global
state or the clock: :class:`BackoffPolicy` derives it from a caller
seed, making every delay schedule a pure function of
``(seed, attempt)``.

:class:`CircuitBreaker` is the pool-health half: each worker failure
feeds :meth:`CircuitBreaker.record_failure`, each success resets the
streak, and once ``threshold`` *consecutive* failures accumulate the
breaker trips — the campaign runner reacts by downgrading from the
process pool to deadline-guarded serial execution.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

from repro.obs import OBS


def _unit_interval(seed: str, attempt: int) -> float:
    """Deterministic stand-in for ``random.random()``: a uniform
    [0, 1) value derived from the seed and the attempt number."""
    digest = hashlib.sha256(f"{seed}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with seeded full jitter.

    Delay for attempt ``n`` (0-based) is uniform in
    ``[0, min(cap, base * factor**n))`` — AWS-style "full jitter",
    with the uniform draw seeded so reruns reproduce it exactly.
    """

    base: float = 0.05
    factor: float = 2.0
    cap: float = 2.0
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.base < 0 or self.factor < 1.0 or self.cap < 0:
            raise ValueError("backoff parameters out of range")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def delay(self, attempt: int, seed: str = "") -> float:
        """Jittered sleep before retry ``attempt`` (0-based)."""
        ceiling = min(self.cap, self.base * self.factor**attempt)
        return ceiling * _unit_interval(seed, attempt)


def retry_call(
    fn,
    *,
    policy: BackoffPolicy | None = None,
    seed: str = "",
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    sleep=time.sleep,
    on_retry=None,
):
    """Call ``fn()`` up to ``policy.max_attempts`` times.

    Exceptions matching ``retry_on`` trigger a jittered backoff sleep
    and another attempt; anything else (and the final failure)
    propagates.  ``on_retry(attempt, delay, error)`` is invoked before
    each sleep — campaign code uses it to log and count retries.
    """
    policy = policy or BackoffPolicy()
    last: BaseException | None = None
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except retry_on as err:  # noqa: PERF203 - retry loop by design
            last = err
            if attempt == policy.max_attempts - 1:
                raise
            pause = policy.delay(attempt, seed)
            if on_retry is not None:
                on_retry(attempt, pause, err)
            if OBS.enabled:
                OBS.registry.counter(
                    "runtime.retries",
                    "retried calls after a transient failure",
                    error=type(err).__name__,
                ).inc()
            if pause > 0:
                sleep(pause)
    raise last  # pragma: no cover - unreachable (loop raises first)


@dataclass
class CircuitBreaker:
    """Trip after ``threshold`` *consecutive* failures.

    The campaign runner polls :attr:`tripped` after each completed
    case; once open, the pool is torn down and the remaining cases run
    serially (each still under its own deadline).  The breaker stays
    open — a downgrade is one-way within a run.
    """

    threshold: int = 3
    consecutive_failures: int = field(default=0, init=False)
    failures_total: int = field(default=0, init=False)
    tripped: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("breaker threshold must be >= 1")

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def record_failure(self) -> bool:
        """Count one failure; returns True if this one tripped the
        breaker."""
        self.failures_total += 1
        self.consecutive_failures += 1
        if not self.tripped and self.consecutive_failures >= self.threshold:
            self.tripped = True
            if OBS.enabled:
                OBS.registry.counter(
                    "runtime.breaker_trips",
                    "circuit-breaker trips (pool downgraded to serial)",
                ).inc()
            return True
        return False
