"""Compiled (minicc) versions of the paper's six benchmarks.

`compiled_workload(name)` returns a ready-to-run
:class:`~repro.minicc.compiler.CompiledKernel` for each Figure-6
benchmark, with the same algorithms and verification references as
the hand-written `repro.workloads` — so the full evaluation can be
regenerated on compiled code (`benchmarks/test_ext_compiled_fig6.py`).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.minicc.compiler import CompiledKernel, compile_kernel
from repro.workloads.common import pseudo_values


def _check(measured, expected, tolerance=1e-9, what="result"):
    for i, (m, e) in enumerate(zip(measured, expected)):
        if abs(m - e) > tolerance * max(1.0, abs(e)):
            raise AssertionError(f"{what}[{i}]: {m!r} != {e!r}")


# ---------------------------------------------------------------------------
# mmul
# ---------------------------------------------------------------------------


def mmul(n: int = 12, opt_level: int = 0) -> tuple[CompiledKernel, Callable]:
    from repro.workloads.mmul import _reference

    a = pseudo_values(n * n, seed=1)
    b = pseudo_values(n * n, seed=2)
    expected = _reference(a, b, n)
    source = f"""
double A[{n}][{n}]; double B[{n}][{n}]; double C[{n}][{n}];
int i; int j; int k; double s;
for (i = 0; i < {n}; i = i + 1)
    for (j = 0; j < {n}; j = j + 1) {{
        s = 0.0;
        for (k = 0; k < {n}; k = k + 1)
            s = s + A[i][k] * B[k][j];
        C[i][j] = s;
    }}
"""
    kernel = compile_kernel(source, data={"A": a, "B": b}, name="mmul-cc", opt_level=opt_level)

    def verify(cpu):
        _check(kernel.read(cpu, "C"), expected, what="mmul-cc C")

    return kernel, verify


# ---------------------------------------------------------------------------
# sor
# ---------------------------------------------------------------------------


def sor(n: int = 16, sweeps: int = 4, opt_level: int = 0) -> tuple[CompiledKernel, Callable]:
    from repro.workloads.sor import OMEGA, _reference

    u0 = pseudo_values(n * n, seed=3)
    expected = _reference(u0, n, sweeps, OMEGA)
    source = f"""
double U[{n}][{n}];
int i; int j; int sweep;
for (sweep = 0; sweep < {sweeps}; sweep = sweep + 1)
    for (i = 1; i < {n - 1}; i = i + 1)
        for (j = 1; j < {n - 1}; j = j + 1)
            U[i][j] = U[i][j] + {OMEGA / 4.0!r} *
                (U[i-1][j] + U[i+1][j] + U[i][j-1] + U[i][j+1]
                 - 4.0 * U[i][j]);
"""
    kernel = compile_kernel(source, data={"U": u0}, name="sor-cc", opt_level=opt_level)

    def verify(cpu):
        _check(kernel.read(cpu, "U"), expected, 1e-12, what="sor-cc U")

    return kernel, verify


# ---------------------------------------------------------------------------
# ej
# ---------------------------------------------------------------------------


def ej(n: int = 16, sweeps: int = 4, opt_level: int = 0) -> tuple[CompiledKernel, Callable]:
    from repro.workloads.ej import W, _reference

    u0 = pseudo_values(n * n, seed=4)
    expected = _reference(u0, n, sweeps, W)
    # No pointers in minicc: copy V back into U after each sweep (a
    # C programmer without pointer swaps would do the same).
    source = f"""
double U[{n}][{n}]; double V[{n}][{n}];
int i; int j; int sweep;
for (sweep = 0; sweep < {sweeps}; sweep = sweep + 1) {{
    for (i = 1; i < {n - 1}; i = i + 1)
        for (j = 1; j < {n - 1}; j = j + 1)
            V[i][j] = {1.0 - W!r} * U[i][j] + {W / 4.0!r} *
                (U[i-1][j] + U[i+1][j] + U[i][j-1] + U[i][j+1]);
    for (i = 1; i < {n - 1}; i = i + 1)
        for (j = 1; j < {n - 1}; j = j + 1)
            U[i][j] = V[i][j];
}}
"""
    kernel = compile_kernel(source, data={"U": u0, "V": u0}, name="ej-cc", opt_level=opt_level)

    def verify(cpu):
        _check(kernel.read(cpu, "U"), expected, 1e-12, what="ej-cc U")

    return kernel, verify


# ---------------------------------------------------------------------------
# fft
# ---------------------------------------------------------------------------


def fft(n: int = 64, opt_level: int = 0) -> tuple[CompiledKernel, Callable]:
    from repro.workloads.fft import _reference

    if n < 4 or n & (n - 1):
        raise ValueError("fft size must be a power of two >= 4")
    log2n = n.bit_length() - 1
    re0 = pseudo_values(n, seed=5)
    im0 = pseudo_values(n, seed=6)
    twiddle_re = [math.cos(-2.0 * math.pi * t / n) for t in range(n // 2)]
    twiddle_im = [math.sin(-2.0 * math.pi * t / n) for t in range(n // 2)]
    expected_re, expected_im = _reference(re0, im0)
    source = f"""
double RE[{n}]; double IM[{n}]; double WR[{n // 2}]; double WI[{n // 2}];
int i; int j; int k; int m; int half; int step; int p; int q; int bits; int tw;
double tr; double ti; double ur; double ui; double tmp;

for (i = 0; i < {n}; i = i + 1) {{
    bits = i;
    j = 0;
    for (k = 0; k < {log2n}; k = k + 1) {{
        j = j * 2 + bits % 2;
        bits = bits / 2;
    }}
    if (i < j) {{
        tmp = RE[i]; RE[i] = RE[j]; RE[j] = tmp;
        tmp = IM[i]; IM[i] = IM[j]; IM[j] = tmp;
    }}
}}
m = 2;
while (m <= {n}) {{
    half = m / 2;
    step = {n} / m;
    k = 0;
    while (k < {n}) {{
        for (j = 0; j < half; j = j + 1) {{
            tw = j * step;
            p = k + j;
            q = p + half;
            tr = WR[tw] * RE[q] - WI[tw] * IM[q];
            ti = WR[tw] * IM[q] + WI[tw] * RE[q];
            ur = RE[p];
            ui = IM[p];
            RE[q] = ur - tr;
            IM[q] = ui - ti;
            RE[p] = ur + tr;
            IM[p] = ui + ti;
        }}
        k = k + m;
    }}
    m = m * 2;
}}
"""
    kernel = compile_kernel(
        source,
        data={"RE": re0, "IM": im0, "WR": twiddle_re, "WI": twiddle_im},
        name="fft-cc",
        opt_level=opt_level,
    )

    def verify(cpu):
        _check(kernel.read(cpu, "RE"), expected_re, 1e-6, what="fft-cc RE")
        _check(kernel.read(cpu, "IM"), expected_im, 1e-6, what="fft-cc IM")

    return kernel, verify


# ---------------------------------------------------------------------------
# tri
# ---------------------------------------------------------------------------


def tri(n: int = 64, sweeps: int = 8, opt_level: int = 0) -> tuple[CompiledKernel, Callable]:
    from repro.workloads.tri import _reference

    sub = [0.0] + [1.0 + v * 0.1 for v in pseudo_values(n - 1, seed=7)]
    main_diag = [4.0 + v * 0.2 for v in pseudo_values(n, seed=8)]
    sup = [1.0 + v * 0.1 for v in pseudo_values(n - 1, seed=9)] + [0.0]
    rhs = pseudo_values(n, seed=10)
    expected = _reference(sub, main_diag, sup, rhs)
    source = f"""
double A[{n}]; double B[{n}]; double C[{n}]; double D[{n}];
double CP[{n}]; double DP[{n}]; double X[{n}];
int i; int sweep; double m;
for (sweep = 0; sweep < {sweeps}; sweep = sweep + 1) {{
    CP[0] = C[0] / B[0];
    DP[0] = D[0] / B[0];
    for (i = 1; i < {n}; i = i + 1) {{
        m = B[i] - A[i] * CP[i-1];
        CP[i] = C[i] / m;
        DP[i] = (D[i] - A[i] * DP[i-1]) / m;
    }}
    X[{n - 1}] = DP[{n - 1}];
    i = {n - 2};
    while (i >= 0) {{
        X[i] = DP[i] - CP[i] * X[i+1];
        i = i - 1;
    }}
}}
"""
    kernel = compile_kernel(
        source,
        data={"A": sub, "B": main_diag, "C": sup, "D": rhs},
        name="tri-cc",
        opt_level=opt_level,
    )

    def verify(cpu):
        _check(kernel.read(cpu, "X"), expected, what="tri-cc X")

    return kernel, verify


# ---------------------------------------------------------------------------
# lu
# ---------------------------------------------------------------------------


def lu(n: int = 16, opt_level: int = 0) -> tuple[CompiledKernel, Callable]:
    from repro.workloads.lu import _reference

    a = pseudo_values(n * n, seed=11)
    for i in range(n):
        a[i * n + i] = 20.0 + i * 0.5
    expected = _reference(a, n)
    source = f"""
double A[{n}][{n}];
int i; int j; int k; double factor;
for (k = 0; k < {n}; k = k + 1)
    for (i = k + 1; i < {n}; i = i + 1) {{
        A[i][k] = A[i][k] / A[k][k];
        factor = A[i][k];
        for (j = k + 1; j < {n}; j = j + 1)
            A[i][j] = A[i][j] - factor * A[k][j];
    }}
"""
    kernel = compile_kernel(source, data={"A": a}, name="lu-cc", opt_level=opt_level)

    def verify(cpu):
        _check(kernel.read(cpu, "A"), expected, what="lu-cc A")

    return kernel, verify


COMPILED_BUILDERS: dict[str, Callable[..., tuple[CompiledKernel, Callable]]] = {
    "mmul": mmul,
    "sor": sor,
    "ej": ej,
    "fft": fft,
    "tri": tri,
    "lu": lu,
}


def compiled_workload(
    name: str, opt_level: int = 0, **params
) -> tuple[CompiledKernel, Callable]:
    """Compiled counterpart of a Figure-6 benchmark.

    Returns ``(kernel, verify)`` where ``verify(cpu)`` checks the
    simulated result against the same references the hand-written
    workloads use.  ``opt_level`` is forwarded to the compiler.
    """
    try:
        builder = COMPILED_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"no compiled kernel {name!r}; available: "
            f"{sorted(COMPILED_BUILDERS)}"
        ) from None
    return builder(opt_level=opt_level, **params)
