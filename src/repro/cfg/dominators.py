"""Dominator computation (Cooper-Harvey-Kennedy iterative algorithm).

Implemented from scratch (the loop detector depends on it); the test
suite cross-checks against networkx's ``immediate_dominators``.
"""

from __future__ import annotations

import networkx as nx


def immediate_dominators(graph: nx.DiGraph, entry) -> dict:
    """Immediate dominator of every node reachable from ``entry``.

    The entry maps to itself.  Unreachable nodes are absent.
    """
    if entry not in graph:
        raise KeyError(f"entry {entry!r} not in graph")

    order = list(nx.dfs_postorder_nodes(graph, entry))
    index = {node: i for i, node in enumerate(order)}
    reverse_postorder = list(reversed(order))

    idom: dict = {entry: entry}

    def intersect(a, b):
        while a != b:
            while index[a] < index[b]:
                a = idom[a]
            while index[b] < index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in reverse_postorder:
            if node == entry:
                continue
            candidates = [
                p for p in graph.predecessors(node) if p in idom
            ]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def dominates(idom: dict, a, b) -> bool:
    """True if ``a`` dominates ``b`` under the given idom tree."""
    node = b
    while True:
        if node == a:
            return True
        parent = idom.get(node)
        if parent is None or parent == node:
            return node == a
        node = parent


def dominator_tree(idom: dict) -> nx.DiGraph:
    """The dominator tree as a digraph (edges idom -> node)."""
    tree = nx.DiGraph()
    for node, parent in idom.items():
        tree.add_node(node)
        if node != parent:
            tree.add_edge(parent, node)
    return tree
