"""Common protocol for bus-encoding backends (the "encoder zoo").

Every competing scheme — the four classic baselines, the two
related-work encoders, and (via an adapter in the pipeline selector)
the paper's own TT/BBIT transformation — implements one interface so
the per-region selector, the verify campaign, and the fault campaign
can treat them uniformly:

* ``fit(words)``       — profile-driven backends learn their tables
* ``encode(words)``    — produce an :class:`EncodedStream` of driven
                         bus values (data lines plus any extra
                         signalling lines, packed into one int per
                         transfer)
* ``decode(stream)``   — recover the original words exactly
* ``transitions(words)`` — measured toggle cost of driving the stream
* ``budget()``         — :class:`HardwareBudget` the scheme requires
* ``config_digest()``  — deterministic sha256 over scheme + config so
                         bundles and reports can pin exact tables

Two families exist and the distinction matters for deployment:

* **deployable** (stateless word recoders: gray, memoryless codebook,
  full-dictionary frequency): each stored word is rewritten in the
  image and decoded independently at fetch time via ``decode_word``.
* **bus codecs** (stateful: bus-invert, T0, low-weight transition
  signalling): the image stays raw; the codec lives on the bus drivers
  and its correctness is checked by trace-order roundtrips.

The first transfer of any stream is free (no previous bus state),
matching :mod:`repro.core.transitions` and the trace counters.
"""

from __future__ import annotations

import abc
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Dict, Sequence

from repro.core.transitions import word_transitions
from repro.errors import EncodingError


@dataclass(frozen=True)
class HardwareBudget:
    """Hardware the decoder side must provision for a scheme.

    ``table_bits`` counts mapping/codebook storage (encode and decode
    sides), ``extra_lines`` counts bus lines beyond the 32 data lines,
    and ``stateful`` marks bus codecs whose decoder needs the previous
    transfer (so the scheme cannot be burned into the stored image).
    """

    table_bits: int = 0
    extra_lines: int = 0
    stateful: bool = False

    def fits(self, max_table_bits: int, max_extra_lines: int) -> bool:
        return self.table_bits <= max_table_bits and self.extra_lines <= max_extra_lines


@dataclass
class EncodedStream:
    """Driven bus values for one transfer sequence.

    ``width`` is the total number of driven lines (data + extra); each
    entry of ``driven`` packs all lines of one transfer into an int.
    """

    scheme: str
    width: int
    driven: list[int] = field(default_factory=list)

    def transitions(self) -> int:
        return word_transitions(self.driven)


class Encoder(abc.ABC):
    """Base class for every bus-encoding backend."""

    scheme: ClassVar[str] = ""
    #: stateless word recoders can patch the stored image and decode
    #: each fetched word independently via :meth:`decode_word`.
    deployable: ClassVar[bool] = False

    width: int = 32

    def fit(self, words: Sequence[int]) -> "Encoder":
        """Learn profile-driven tables from ``words``; returns self."""
        return self

    @abc.abstractmethod
    def encode(self, words: Sequence[int]) -> EncodedStream:
        """Encode a word sequence into driven bus values."""

    @abc.abstractmethod
    def decode(self, stream: EncodedStream) -> list[int]:
        """Recover the original words from a driven stream."""

    @abc.abstractmethod
    def budget(self) -> HardwareBudget:
        """Hardware cost metadata for the selector's budget check."""

    def transitions(self, words: Sequence[int]) -> int:
        """Measured toggle cost of driving ``words`` through this scheme."""
        return self.encode(words).transitions()

    # -- deployable (stateless) interface ------------------------------
    def encode_word(self, word: int) -> int:
        raise EncodingError(f"scheme {self.scheme!r} is not a stateless word recoder")

    def decode_word(self, word: int) -> int:
        raise EncodingError(f"scheme {self.scheme!r} is not a stateless word recoder")

    # -- configuration / identity --------------------------------------
    def to_config(self) -> Dict[str, Any]:
        """JSON-serialisable configuration (tables, widths, mappings)."""
        return {"width": self.width}

    @classmethod
    def from_config(cls, config: Dict[str, Any]) -> "Encoder":
        """Rebuild an encoder from :meth:`to_config` output."""
        return cls(width=int(config.get("width", 32)))  # type: ignore[call-arg]

    def config_digest(self) -> str:
        payload = json.dumps(
            {"scheme": self.scheme, "config": self.to_config()},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} scheme={self.scheme!r} width={self.width}>"


#: scheme name -> Encoder subclass, populated by :func:`register_encoder`.
ENCODER_REGISTRY: Dict[str, type] = {}


def register_encoder(cls: type) -> type:
    """Class decorator adding an Encoder subclass to the registry."""
    if not cls.scheme:
        raise ValueError(f"{cls.__name__} must set a non-empty scheme name")
    ENCODER_REGISTRY[cls.scheme] = cls
    return cls


def registered_schemes() -> tuple[str, ...]:
    return tuple(sorted(ENCODER_REGISTRY))


def make_encoder(scheme: str, **kwargs: Any) -> Encoder:
    try:
        cls = ENCODER_REGISTRY[scheme]
    except KeyError:
        raise EncodingError(f"unknown encoder scheme {scheme!r}") from None
    return cls(**kwargs)


def encoder_from_config(scheme: str, config: Dict[str, Any]) -> Encoder:
    """Rebuild a fitted encoder from a bundle's region config payload."""
    try:
        cls = ENCODER_REGISTRY[scheme]
    except KeyError:
        raise EncodingError(f"unknown encoder scheme {scheme!r}") from None
    return cls.from_config(config)


_REFERENCE_COUNTERS: Dict[str, Callable[[Encoder, Sequence[int]], int]] = {}


def register_reference_counter(
    scheme: str,
) -> Callable[[Callable[[Encoder, Sequence[int]], int]], Callable[[Encoder, Sequence[int]], int]]:
    """Register an independent transition counter for differential checks.

    The verify campaign compares ``encoder.transitions(words)`` (the
    fast path: encode then count packed toggles) against this slower
    reference implementation; any disagreement is a reported mismatch.
    """

    def deco(fn: Callable[[Encoder, Sequence[int]], int]) -> Callable[[Encoder, Sequence[int]], int]:
        _REFERENCE_COUNTERS[scheme] = fn
        return fn

    return deco


def reference_transitions(encoder: Encoder, words: Sequence[int]) -> int:
    """Independent transition count for ``encoder`` on ``words``.

    Falls back to decode-then-recount when no scheme-specific reference
    is registered: re-encode a roundtripped copy and count with the
    shared helper.
    """
    fn = _REFERENCE_COUNTERS.get(encoder.scheme)
    if fn is not None:
        return fn(encoder, words)
    return word_transitions(encoder.encode(list(words)).driven)
