"""Instruction-mix and trace statistics.

Supports the analysis side of the reproduction: what the fetch traffic
is made of, how deeply the hot loops dominate, and per-format word
entropy — useful context when comparing encoded-transition numbers
across benchmarks.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.isa.assembler import Program
from repro.isa.opcodes import CONDITIONAL_BRANCHES, CONTROL_TRANSFER


@dataclass(frozen=True)
class InstructionMix:
    """Dynamic instruction-category counts for a fetch trace."""

    total: int
    by_mnemonic: dict[str, int]
    by_category: dict[str, int]

    def fraction(self, category: str) -> float:
        if self.total == 0:
            return 0.0
        return self.by_category.get(category, 0) / self.total


_CATEGORIES = {
    "load": {"lw", "lb", "lbu", "lh", "lhu", "lwc1", "ldc1"},
    "store": {"sw", "sb", "sh", "swc1", "sdc1"},
    "fp": {
        "add.d",
        "sub.d",
        "mul.d",
        "div.d",
        "sqrt.d",
        "abs.d",
        "mov.d",
        "neg.d",
        "cvt.w.d",
        "cvt.d.w",
        "c.eq.d",
        "c.lt.d",
        "c.le.d",
    },
}


def _category(name: str) -> str:
    for category, names in _CATEGORIES.items():
        if name in names:
            return category
    if name in CONDITIONAL_BRANCHES:
        return "branch"
    if name in CONTROL_TRANSFER:
        return "jump"
    return "alu"


def instruction_mix(program: Program, addresses: Sequence[int]) -> InstructionMix:
    """Categorise every dynamic instruction in a fetch trace."""
    fetch_counts = Counter(addresses)
    by_mnemonic: Counter = Counter()
    by_category: Counter = Counter()
    base = program.text_base
    for address, count in fetch_counts.items():
        name = program.instructions[(address - base) >> 2].name
        by_mnemonic[name] += count
        by_category[_category(name)] += count
    return InstructionMix(
        total=len(addresses),
        by_mnemonic=dict(by_mnemonic),
        by_category=dict(by_category),
    )


def branch_statistics(
    program: Program, addresses: Sequence[int]
) -> dict[str, float]:
    """Dynamic branch counts and taken rate (a fall-through successor
    at address+4 counts as not-taken)."""
    base = program.text_base
    branches = 0
    taken = 0
    for current, nxt in zip(addresses, addresses[1:]):
        name = program.instructions[(current - base) >> 2].name
        if name in CONDITIONAL_BRANCHES:
            branches += 1
            if nxt != current + 4:
                taken += 1
    return {
        "branches": branches,
        "taken": taken,
        "taken_rate": taken / branches if branches else 0.0,
    }


def word_entropy_bits(words: Sequence[int]) -> float:
    """Shannon entropy of the fetched word distribution (bits/word).

    Low entropy is why dictionary methods do well on loops — and what
    the paper's technique does *not* depend on."""
    counts = Counter(words)
    total = len(words)
    if total == 0:
        return 0.0
    return -sum(
        (c / total) * math.log2(c / total) for c in counts.values()
    )


def static_dynamic_ratio(program: Program, addresses: Sequence[int]) -> float:
    """Dynamic fetches per static instruction — loop dominance in one
    number ("a relatively short sequence of instructions is
    repetitively executed", Section 4)."""
    if not program.words:
        return 0.0
    return len(addresses) / len(program.words)
