"""Structured exception hierarchy for the whole reproduction.

Every error the decode/deploy path can raise derives from
:class:`ReproError`, so callers (the flow, the loader, the
fault-injection campaign) can distinguish *detected* faults from
genuine programming bugs with one ``except`` clause.  Each concrete
class additionally subclasses the builtin its call sites historically
raised (``RuntimeError`` / ``ValueError``), so pre-existing handlers
keep working.

The hierarchy:

``ReproError``
    ``DecodeFault``             fetch stream violates the decode protocol
    ``TableIntegrityError``     TT/BBIT read fails a parity or bounds check
    ``BundleFormatError``       firmware bundle fails load-time validation
    ``DecodeVerificationError`` replayed decode did not restore the image
    ``EncodingError``           encoder-internal invariant violated
    ``SchemeTagError``          mixed-scheme region tag unknown/undecodable
    ``CampaignError``           fault-injection campaign misconfigured
    ``TableCapacityError``      table programming exceeds physical entries
    ``VerifyError``             verification campaign misconfigured
    ``StorageError``            a durability syscall failed
        ``StorageWriteError``       write returned EIO / short
        ``StorageSyncError``        fsync or flush failed (ack unsafe)
        ``StorageFullError``        ENOSPC anywhere on the write path
        ``StorageReplaceError``     atomic rename / unlink failed
"""

from __future__ import annotations

import errno as _errno


class ReproError(Exception):
    """Base class for every structured error in :mod:`repro`."""


class DecodeFault(ReproError, RuntimeError):
    """The fetch stream violates the decode protocol, e.g. jumping
    into the middle of an encoded basic block, or a trace ending while
    a block is still being decoded."""


class TableIntegrityError(ReproError, RuntimeError):
    """A TT or BBIT read failed an integrity check: the entry's parity
    word does not match its contents, or an index walked outside the
    table's populated range."""


class BundleFormatError(ReproError, ValueError):
    """A firmware bundle failed load-time validation (bad JSON,
    unsupported version, digest mismatch, dangling BBIT->TT reference,
    out-of-range words, ...)."""


class DecodeVerificationError(ReproError, RuntimeError):
    """The post-encode hardware replay failed to restore the original
    instruction stream bit-exactly."""


class EncodingError(ReproError, RuntimeError):
    """An encoder-internal invariant was violated (e.g. no feasible
    code word although identity is always feasible)."""


class SchemeTagError(ReproError, RuntimeError):
    """A mixed-scheme bundle region carries a scheme tag the fetch
    path cannot honour: the tag names no registered encoder backend
    (corruption, or a bundle built by a newer toolchain).  Strict-mode
    decoders raise this; recover/degraded decoders fall back to the
    golden bundle for the tagged region."""


class CampaignError(ReproError, RuntimeError):
    """The fault-injection campaign was misconfigured or could not
    prepare its deployment target."""


class TableCapacityError(ReproError, ValueError):
    """Raised when a load exceeds the table's physical entry count."""


class VerifyError(ReproError, RuntimeError):
    """The differential verification campaign was misconfigured (an
    unknown mutation, an unreplayable counterexample, ...).  Actual
    divergences are never raised — they are recorded as
    counterexamples and reported."""


class StorageError(ReproError, OSError):
    """A durability syscall (write/flush/fsync/replace/unlink) on one
    of the storage surfaces — the WAL, an atomic report write, the
    bundle disk cache, a flight-record dump — failed.

    Dual-inherits :class:`OSError` so every pre-existing ``except
    OSError`` degradation path (the bundle cache, the flight dump
    guard) keeps working, while new callers can route on the typed
    subclass (``repro serve`` degrades on :class:`StorageFullError`
    and nothing else).  ``errno`` is preserved from the underlying
    failure when there is one."""

    def __init__(self, message: str, errno: int | None = None):
        super().__init__(message)
        if errno is not None:
            self.errno = errno


class StorageWriteError(StorageError):
    """A data write failed (EIO, short write, torn append)."""


class StorageSyncError(StorageError):
    """``fsync``/``flush`` failed.  Per POSIX the page-cache state is
    now *unknowable* — a caller must treat any data written since the
    last successful sync as lost, never retry the sync and call the
    data durable."""


class StorageFullError(StorageError):
    """The device is out of space (ENOSPC/EDQUOT).  The one storage
    failure that is expected to *clear on its own*, so callers may
    degrade and re-arm instead of dying."""


class StorageReplaceError(StorageError):
    """``os.replace``/``os.unlink`` on a durability surface failed;
    the destination still holds its complete previous content."""


def storage_error_for(err: OSError, op: str, path: object) -> StorageError:
    """Map a raw :class:`OSError` from a durability syscall to the
    matching typed :class:`StorageError` (cause preserved by the
    caller's ``raise ... from err``)."""
    code = err.errno
    message = f"storage {op} failed for {path}: {err}"
    if code in (_errno.ENOSPC, _errno.EDQUOT):
        return StorageFullError(message, errno=code)
    if op in ("fsync", "flush"):
        return StorageSyncError(message, errno=code)
    if op in ("replace", "unlink"):
        return StorageReplaceError(message, errno=code)
    return StorageWriteError(message, errno=code)
