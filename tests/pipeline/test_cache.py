"""BundleCache: LRU bounds, disk warm-start, graceful disk failure."""

import json

import pytest

from repro.pipeline.cache import BundleCache, cache_key, workload_fingerprint


class TestKeys:
    def test_fingerprint_is_stable_and_content_sensitive(self):
        words = [0x12345678, 0x9ABCDEF0]
        assert workload_fingerprint(words) == workload_fingerprint(list(words))
        assert workload_fingerprint(words) != workload_fingerprint(words[::-1])
        assert len(workload_fingerprint(words)) == 16

    def test_cache_key_carries_every_artefact_parameter(self):
        key = cache_key("abcd", 5, 16, "greedy")
        assert key == "abcd-k5-tt16-greedy"
        assert cache_key("abcd", 4, 16, "greedy") != key
        assert cache_key("abcd", 5, 8, "greedy") != key
        assert cache_key("abcd", 5, 16, "optimal") != key


class TestLru:
    def test_capacity_bounds_and_evicts_oldest(self):
        cache = BundleCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.put("c", {"v": 3})
        assert len(cache) == 2
        assert cache.get("a") is None
        assert cache.get("c") == {"v": 3}
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = BundleCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.get("a")  # 'b' is now the eviction candidate
        cache.put("c", {"v": 3})
        assert cache.get("a") == {"v": 1}
        assert cache.get("b") is None

    def test_hit_miss_accounting(self):
        cache = BundleCache(capacity=4)
        cache.put("a", {"v": 1})
        cache.get("a")
        cache.get("nope")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BundleCache(capacity=0)


class TestDiskMirror:
    def test_fresh_cache_warm_starts_from_disk(self, tmp_path):
        first = BundleCache(capacity=4, cache_dir=tmp_path)
        first.put("k", {"bundle_digest": "abc"})
        # A rebuilt pool's worker starts with an empty memory LRU but
        # the same cache_dir.
        second = BundleCache(capacity=4, cache_dir=tmp_path)
        assert second.get("k") == {"bundle_digest": "abc"}
        assert second.disk_loads == 1
        assert second.hits == 0  # disk load, not a memory hit
        assert second.get("k") == {"bundle_digest": "abc"}
        assert second.hits == 1  # now resident

    def test_memory_only_cache_touches_no_disk(self, tmp_path):
        cache = BundleCache(capacity=4, cache_dir=None)
        cache.put("k", {"v": 1})
        assert list(tmp_path.iterdir()) == []

    def test_corrupt_disk_entry_degrades_to_a_miss(self, tmp_path):
        (tmp_path / "k.json").write_text("{torn")
        cache = BundleCache(capacity=4, cache_dir=tmp_path)
        assert cache.get("k") is None
        assert cache.misses == 1

    def test_disk_write_failure_never_raises(self, tmp_path):
        cache = BundleCache(capacity=4, cache_dir=tmp_path)
        # Replace the directory with a file: every write now fails.
        for child in tmp_path.iterdir():
            child.unlink()
        tmp_path.rmdir()
        tmp_path.write_text("not a directory")
        cache.put("k", {"v": 1})  # must not raise
        assert cache.get("k") == {"v": 1}  # memory layer still serves

    def test_disk_entry_is_deterministic_json(self, tmp_path):
        cache = BundleCache(capacity=4, cache_dir=tmp_path)
        entry = {"b": 2, "a": 1}
        cache.put("k", entry)
        on_disk = (tmp_path / "k.json").read_text()
        assert json.loads(on_disk) == entry
        # Concurrent writers of the same key must race benignly:
        # identical input, identical bytes.
        cache.put("k", {"b": 2, "a": 1})
        assert (tmp_path / "k.json").read_text() == on_disk
