"""Machine-readable run reports: ``RUN_report.json``.

A run report is one self-describing snapshot of a process's
observability state — the metric registry, the span tree, and enough
provenance (git SHA, platform, Python version, seed, command) to
compare the same command across machines and PRs.  ``repro encode
--metrics`` writes one; ``repro metrics`` / ``repro trace`` read them
back; CI uploads them as artifacts so the perf trajectory has a
durable, diffable record.

The schema is deliberately flat and versioned
(:data:`REPORT_SCHEMA_VERSION`); :func:`validate_run_report` performs
the structural check both the tests and the ``repro metrics --check``
gate rely on, without any external JSON-schema dependency.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "EXPECTED_ENCODE_FAMILIES",
    "EXPECTED_SERVE_FAMILIES",
    "EXPECTED_STORAGE_FAMILIES",
    "RunReport",
    "git_revision",
    "load_run_report",
    "validate_run_report",
]

REPORT_SCHEMA_VERSION = 1

#: Metric families a ``repro encode --metrics`` run is expected to
#: populate, layer by layer.  ``repro metrics --check`` (and the CI
#: observability smoke job) fails when any of these is absent — the
#: canary for silently dropped instrumentation.
EXPECTED_ENCODE_FAMILIES = (
    "sim.instructions",
    "sim.fetches",
    "flow.runs",
    "flow.baseline_transitions",
    "flow.encoded_transitions",
    "flow.hot_coverage",
    "codec.blocks_encoded",
    "codec.words_encoded",
    "decoder.decoded_instructions",
    "decoder.tt_reads",
    "decoder.bbit_lookups",
    "codec.bitplane_words_decoded",
    "bus.transitions_measured",
)

#: Metric families a ``repro serve --metrics`` run must populate —
#: the server pre-registers every one at startup, so even a run with
#: zero sheds / retries / timeouts exposes the family (a zero is an
#: answer; an absent family is dropped instrumentation).
EXPECTED_SERVE_FAMILIES = (
    "serve.jobs_accepted",
    "serve.jobs_completed",
    "serve.jobs_shed",
    "serve.jobs_retried",
    "serve.jobs_deadline_exceeded",
    "serve.queue_depth",
    "serve.job_seconds",
    # PR 8 telemetry plane: cross-process delta merge + SLO layer.
    "serve.telemetry_deltas_merged",
    "serve.worker_spans_adopted",
    "serve.pool_rebuilds",
    "slo.jobs_observed",
    "slo.bad_jobs",
    "slo.burn_rate",
    # PR 9 storage hardening: the ENOSPC degradation path.
    "serve.storage_degraded",
)

#: Metric families a ``repro faults --storage --metrics`` run must
#: populate — the storage campaign pre-registers every one, so even a
#: sweep whose cache/flight legs found nothing exposes the family (the
#: canary for a silently skipped leg).
EXPECTED_STORAGE_FAMILIES = (
    "storage.injected_faults",
    "cache.corrupt_entries",
    "flight.dump_errors",
)


@lru_cache(maxsize=1)
def git_revision() -> str:
    """The repository HEAD SHA, or ``"unknown"`` outside a checkout.

    ``REPRO_GIT_SHA`` overrides (for containers that ship the source
    without its ``.git``).
    """
    override = os.environ.get("REPRO_GIT_SHA")
    if override:
        return override
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def run_metadata(command: str | None = None, seed: int | None = None) -> dict:
    """The provenance block every report and benchmark file carries."""
    return {
        "git_sha": git_revision(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "timestamp_unix": time.time(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "command": command,
        "seed": seed,
    }


@dataclass
class RunReport:
    """One observability snapshot, ready to serialise."""

    meta: dict
    metrics: dict
    trace: dict
    schema_version: int = REPORT_SCHEMA_VERSION
    extra: dict = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        registry: MetricsRegistry,
        tracer: Tracer,
        command: str | None = None,
        seed: int | None = None,
        extra: dict | None = None,
    ) -> "RunReport":
        meta = run_metadata(command=command, seed=seed)
        meta["run_id"] = tracer.run_id
        return cls(
            meta=meta,
            metrics=registry.snapshot(),
            trace=tracer.snapshot(),
            extra=dict(extra or {}),
        )

    def to_dict(self) -> dict:
        data = {
            "generated_by": "repro.obs.report",
            "schema_version": self.schema_version,
            "meta": self.meta,
            "metrics": self.metrics,
            "trace": self.trace,
        }
        if self.extra:
            data["extra"] = self.extra
        return data

    def write(self, path: str | Path = "RUN_report.json", vfs=None) -> Path:
        from repro.runtime import atomic_write_text

        path = Path(path)
        # Atomic: a crash mid-write never leaves a truncated report —
        # readers see the complete old report or the complete new one.
        atomic_write_text(
            path, json.dumps(self.to_dict(), indent=1) + "\n", vfs=vfs
        )
        return path


def load_run_report(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


def validate_run_report(data: dict) -> list[str]:
    """Structural schema check; returns problems (empty == valid)."""
    problems: list[str] = []

    def need(container: dict, key: str, where: str, types) -> object:
        if key not in container:
            problems.append(f"{where}: missing key {key!r}")
            return None
        value = container[key]
        if not isinstance(value, types):
            problems.append(
                f"{where}.{key}: expected {types}, got {type(value).__name__}"
            )
            return None
        return value

    if not isinstance(data, dict):
        return ["report must be a JSON object"]
    version = need(data, "schema_version", "report", int)
    if version is not None and version > REPORT_SCHEMA_VERSION:
        problems.append(
            f"report: schema_version {version} is newer than the "
            f"supported {REPORT_SCHEMA_VERSION}"
        )
    meta = need(data, "meta", "report", dict)
    if meta is not None:
        for key in ("run_id", "git_sha", "platform", "python", "timestamp_unix"):
            need(meta, key, "meta", (str, int, float))
    metrics = need(data, "metrics", "report", dict)
    if metrics is not None:
        for name, family in metrics.items():
            if not isinstance(family, dict):
                problems.append(f"metrics.{name}: family must be an object")
                continue
            type_ = need(family, "type", f"metrics.{name}", str)
            if type_ is not None and type_ not in (
                "counter",
                "gauge",
                "histogram",
            ):
                problems.append(f"metrics.{name}: unknown type {type_!r}")
            series = need(family, "series", f"metrics.{name}", list)
            if series is not None:
                for i, entry in enumerate(series):
                    if not isinstance(entry, dict) or "labels" not in entry:
                        problems.append(
                            f"metrics.{name}.series[{i}]: must be an object "
                            "with labels"
                        )
    trace = need(data, "trace", "report", dict)
    if trace is not None:
        need(trace, "run_id", "trace", str)
        need(trace, "by_name", "trace", dict)
        spans = need(trace, "spans", "trace", list)
        if spans is not None:
            for i, span in enumerate(spans):
                if not isinstance(span, dict):
                    problems.append(f"trace.spans[{i}]: must be an object")
                    continue
                for key in ("name", "duration_s", "depth"):
                    need(span, key, f"trace.spans[{i}]", (str, int, float))
    return problems


def missing_families(data: dict, expected=EXPECTED_ENCODE_FAMILIES) -> list[str]:
    """Expected metric families absent from a report's snapshot."""
    metrics = data.get("metrics", {})
    return [name for name in expected if name not in metrics]
