"""Shrinking and replay of recorded counterexamples."""

import pytest

from tests.strategies import seeded_stream

from repro.errors import VerifyError
from repro.verify.counterexample import (
    RECORD_VERSION,
    make_record,
    replay_counterexample,
    shrink_stream,
    shrink_words,
)


class TestShrinkStream:
    def test_minimises_to_the_failure_kernel(self):
        # "Fails" iff the stream holds at least four 1-bits: the
        # locally minimal failing input is exactly [1, 1, 1, 1].
        stream = seeded_stream(("shrink", 1), 30, bias=0.4)
        assert sum(stream) >= 4
        shrunk = shrink_stream(
            stream, lambda bits: sum(bits) >= 4, budget=5000
        )
        assert shrunk == [1, 1, 1, 1]

    def test_respects_the_budget(self):
        calls = []

        def fails(bits):
            calls.append(1)
            return sum(bits) >= 4

        shrink_stream([1] * 50, fails, budget=10)
        assert len(calls) <= 10

    def test_never_returns_a_passing_input(self):
        stream = [0, 1] * 30
        fails = lambda bits: bits.count(1) >= 3
        assert fails(shrink_stream(stream, fails))


class TestShrinkWords:
    def test_drops_words_and_clears_bits(self):
        # "Fails" iff any word has bit 5 set: minimal form is [32].
        words = [0xFFFF_FFFF, 0x20, 0x1F, 0x7000_0021]
        fails = lambda ws: any(w & 0x20 for w in ws)
        assert shrink_words(words, fails) == [0x20]

    def test_never_returns_a_passing_input(self):
        words = [0xABCDEF01, 0x12345678]
        fails = lambda ws: any(w % 2 for w in ws)
        assert fails(shrink_words(words, fails))


class TestRecords:
    def test_make_record_is_self_contained(self):
        record = make_record(
            "stream",
            "7:stream:3",
            {"k": 4, "strategy": "greedy"},
            [1, 0, 1],
            {"kind": "table_decode_wrong"},
            ("suffix-table",),
        )
        assert record["version"] == RECORD_VERSION
        assert record["mutations"] == ["suffix-table"]
        assert record["input"] == [1, 0, 1]

    def test_replay_of_a_healthy_input_returns_none(self):
        record = make_record(
            "stream",
            "7:stream:0",
            {"k": 4, "strategy": "greedy"},
            seeded_stream(("replay", 1), 40),
            {"kind": "stale"},
            (),
        )
        assert replay_counterexample(record) is None

    def test_replay_reproduces_a_genuine_divergence(self):
        # An unknown fault name makes check_tables fail without any
        # process mutation — a divergence replay can actually observe.
        record = make_record(
            "tables",
            "7:tables:3",
            {"k": 4, "fault": "gamma_ray", "flip_seed": "s"},
            [[1, 2, 3]],
            {"kind": "unknown_table_fault"},
            (),
        )
        observed = replay_counterexample(record)
        assert observed is not None
        assert observed["kind"] == "unknown_table_fault"

    def test_replay_sweeps_need_only_params(self):
        for kind in ("sweep_codebook", "sweep_tau", "sweep_boundary"):
            record = make_record(kind, "s", {"k": 3}, None, {"kind": "x"}, ())
            assert replay_counterexample(record) is None

    def test_unknown_kind_raises(self):
        record = make_record("tarot", "s", {}, None, {"kind": "x"}, ())
        with pytest.raises(VerifyError):
            replay_counterexample(record)

    def test_malformed_record_raises_verify_error(self):
        # Missing the "k" parameter: KeyError surfaces as VerifyError.
        record = make_record(
            "stream", "s", {"strategy": "greedy"}, [1, 0], {"kind": "x"}, ()
        )
        with pytest.raises(VerifyError):
            replay_counterexample(record)
