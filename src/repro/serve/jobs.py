"""Job model for the encoding service: requests, results, identities.

Everything here is deliberately *pure data*: a job's final result is
a function of its request and nothing else (not the queue position,
not which worker ran it, not how many times it was retried).  That is
the property the whole resume story hangs on — a WAL replay can only
be byte-identical if the bytes never depended on timing in the first
place.

Validation happens *before admission*: a malformed request is
rejected with a :class:`JobValidationError` naming the field, burns
no queue slot and no worker time, and still produces a journaled
``malformed`` result (a rejection is an answer, not an accident).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.workloads.registry import BENCHMARK_ORDER, EXTENDED_WORKLOADS

#: What a job asks the service to do with its (workload, k, TT,
#: strategy) point: produce the bundle, materialise hardware tables
#: from it, or run the full loader path and replay-verify the decode.
JOB_KINDS = ("encode", "deploy", "decode_verify")

#: The complete, closed outcome taxonomy.  ``shed`` is a *response*,
#: never a final result — a shed job was refused admission and the
#: client retries it; it does not enter the WAL.
OUTCOMES = ("ok", "malformed", "deadline_exceeded", "error", "shed")

_KNOWN_WORKLOADS = BENCHMARK_ORDER + EXTENDED_WORKLOADS

#: Block-selection strategies deployable through the TT/BBIT flow.
#: (``disjoint`` exists in the stream codec but has no table-backed
#: decode, so the service refuses it at admission.)
SERVE_STRATEGIES = ("greedy", "optimal")

#: Upper bound on ``workload_params`` values, so a hostile request
#: cannot ask one worker to simulate a week of trace.
_MAX_PARAM = 4096


class JobValidationError(ReproError):
    """A job request failed admission-time validation."""


@dataclass(frozen=True)
class JobRequest:
    """One validated unit of service work."""

    tenant: str
    job_id: str
    kind: str
    workload: str
    block_size: int = 5
    tt_capacity: int = 16
    strategy: str = "greedy"
    workload_params: dict = field(default_factory=dict)
    deadline_s: float | None = None
    #: Chaos annotation stamped by the selftest harness (``kill`` /
    #: ``slow``); production requests leave it empty.
    chaos: str = ""

    @property
    def key(self) -> str:
        """Canonical WAL/journal key: tenant, id, and a digest of the
        *semantic* request fields, so a resumed run refuses to replay
        a result for a job whose parameters changed."""
        semantic = json.dumps(
            {
                "kind": self.kind,
                "workload": self.workload,
                "block_size": self.block_size,
                "tt_capacity": self.tt_capacity,
                "strategy": self.strategy,
                "workload_params": dict(sorted(self.workload_params.items())),
                "deadline_s": self.deadline_s,
                "chaos": self.chaos,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        digest = hashlib.sha256(semantic.encode()).hexdigest()[:16]
        return f"{self.tenant}|{self.job_id}|{digest}"

    @property
    def config_key(self) -> str:
        """The compute identity (what the bundle cache is keyed by,
        modulo the workload hash resolved in the worker)."""
        params = ",".join(
            f"{k}={v}" for k, v in sorted(self.workload_params.items())
        )
        return (
            f"{self.workload}({params})-k{self.block_size}"
            f"-tt{self.tt_capacity}-{self.strategy}"
        )

    def wire(self) -> dict:
        """The request as a transport/WAL-safe dict (fixed key order)."""
        return {
            "tenant": self.tenant,
            "job_id": self.job_id,
            "kind": self.kind,
            "workload": self.workload,
            "block_size": self.block_size,
            "tt_capacity": self.tt_capacity,
            "strategy": self.strategy,
            "workload_params": dict(sorted(self.workload_params.items())),
            "deadline_s": self.deadline_s,
            "chaos": self.chaos,
        }


def _reject(message: str) -> None:
    raise JobValidationError(f"malformed job request: {message}")


def _require_str(raw: dict, name: str, default: str | None = None) -> str:
    value = raw.get(name, default)
    if not isinstance(value, str) or not value:
        _reject(f"field {name!r} must be a non-empty string, got {value!r}")
    return value


def _require_int(raw: dict, name: str, default: int, lo: int, hi: int) -> int:
    value = raw.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        _reject(f"field {name!r} must be an integer, got {value!r}")
    if not lo <= value <= hi:
        _reject(f"field {name!r} out of range [{lo}, {hi}]: {value}")
    return value


def parse_request(raw: object) -> JobRequest:
    """Validate an untrusted request dict into a :class:`JobRequest`.

    Raises :class:`JobValidationError` naming the offending field.
    Unknown keys are rejected too — a typoed parameter silently
    ignored is a result the client did not ask for.
    """
    if not isinstance(raw, dict):
        _reject(f"request must be a JSON object, got {type(raw).__name__}")
    known = {
        "tenant",
        "job_id",
        "kind",
        "workload",
        "block_size",
        "tt_capacity",
        "strategy",
        "workload_params",
        "deadline_s",
        "chaos",
    }
    # Underscore-prefixed keys are transport/harness annotations
    # (client sequence numbers, chaos mutation tags) — tolerated.
    unknown = [
        k for k in raw if k not in known and not str(k).startswith("_")
    ]
    if unknown:
        _reject(f"unknown field(s): {', '.join(sorted(map(str, unknown)))}")

    tenant = _require_str(raw, "tenant")
    job_id = _require_str(raw, "job_id")
    kind = _require_str(raw, "kind")
    if kind not in JOB_KINDS:
        _reject(f"unknown kind {kind!r}; expected one of {JOB_KINDS}")
    workload = _require_str(raw, "workload")
    if workload not in _KNOWN_WORKLOADS:
        _reject(
            f"unknown workload {workload!r}; "
            f"available: {', '.join(_KNOWN_WORKLOADS)}"
        )
    strategy = _require_str(raw, "strategy", default="greedy")
    if strategy not in SERVE_STRATEGIES:
        _reject(
            f"unknown strategy {strategy!r}; expected one of "
            f"{SERVE_STRATEGIES}"
        )
    block_size = _require_int(raw, "block_size", default=5, lo=2, hi=16)
    tt_capacity = _require_int(raw, "tt_capacity", default=16, lo=1, hi=1024)

    params = raw.get("workload_params", {})
    if not isinstance(params, dict):
        _reject(f"field 'workload_params' must be an object, got {params!r}")
    clean_params: dict = {}
    for name, value in params.items():
        if not isinstance(name, str):
            _reject(f"workload_params key {name!r} must be a string")
        if isinstance(value, bool) or not isinstance(value, int):
            _reject(
                f"workload_params[{name!r}] must be an integer, got {value!r}"
            )
        if not 1 <= value <= _MAX_PARAM:
            _reject(
                f"workload_params[{name!r}] out of range [1, {_MAX_PARAM}]: "
                f"{value}"
            )
        clean_params[name] = value

    deadline = raw.get("deadline_s")
    if deadline is not None:
        if isinstance(deadline, bool) or not isinstance(
            deadline, (int, float)
        ):
            _reject(f"field 'deadline_s' must be a number, got {deadline!r}")
        if not 0 < float(deadline) <= 3600:
            _reject(f"field 'deadline_s' out of range (0, 3600]: {deadline}")
        deadline = float(deadline)

    chaos = raw.get("chaos", "")
    if not isinstance(chaos, str) or chaos not in ("", "kill", "slow"):
        _reject(f"field 'chaos' must be '', 'kill' or 'slow', got {chaos!r}")

    return JobRequest(
        tenant=tenant,
        job_id=job_id,
        kind=kind,
        workload=workload,
        block_size=block_size,
        tt_capacity=tt_capacity,
        strategy=strategy,
        workload_params=clean_params,
        deadline_s=deadline,
        chaos=chaos,
    )


def fallback_identity(raw: object) -> tuple[str, str, str]:
    """Best-effort (tenant, job_id, key) for a request that failed
    validation, so its rejection can still be journaled and routed
    back to the right client."""
    tenant, job_id = "?", "?"
    if isinstance(raw, dict):
        if isinstance(raw.get("tenant"), str) and raw["tenant"]:
            tenant = raw["tenant"]
        if isinstance(raw.get("job_id"), str) and raw["job_id"]:
            job_id = raw["job_id"]
        # Transport annotations (client sequence numbers) must not
        # perturb the identity, or a resumed run would miss the WAL.
        raw = {k: v for k, v in raw.items() if not str(k).startswith("_")}
    try:
        canonical = json.dumps(raw, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        canonical = repr(raw)
    digest = hashlib.sha256(canonical.encode()).hexdigest()[:16]
    return tenant, job_id, f"{tenant}|{job_id}|malformed-{digest}"


def make_result(
    *,
    tenant: str,
    job_id: str,
    kind: str,
    outcome: str,
    payload: dict | None = None,
    error: str = "",
    attempts: int = 1,
    duration_s: float = 0.0,
) -> dict:
    """Build a result wire dict with a fixed key order.

    The key order matters: results are journaled with
    ``json.dumps(..., sort_keys=False)`` and the resume gate compares
    reports byte-for-byte.
    """
    if outcome not in OUTCOMES:
        raise ValueError(f"unknown outcome {outcome!r}")
    return {
        "tenant": tenant,
        "job_id": job_id,
        "kind": kind,
        "outcome": outcome,
        "payload": payload if payload is not None else {},
        "error": error,
        "attempts": attempts,
        "duration_s": duration_s,
    }


def deterministic_result(result: dict) -> dict:
    """The WAL/report form of a result: every timing- or path-
    dependent field zeroed, semantic fields untouched.

    ``attempts`` and ``duration_s`` depend on which chaos the job met
    *on this particular run* (a resumed run never re-meets it), so
    they cannot appear in anything gated byte-identical.
    """
    clean = dict(result)
    clean["attempts"] = 0
    clean["duration_s"] = 0.0
    return clean
