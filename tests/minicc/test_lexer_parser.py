"""Tests for the minicc lexer and parser."""

import pytest

from repro.minicc.ast_nodes import (
    Assign,
    Binary,
    Block,
    FloatLit,
    For,
    If,
    IntLit,
    Unary,
    VarRef,
    While,
)
from repro.minicc.lexer import LexError, Token, tokenize
from repro.minicc.parser import ParseError, parse


class TestLexer:
    def test_keywords_vs_names(self):
        tokens = tokenize("int foo")
        assert tokens[0] == Token("kw", "int", 1)
        assert tokens[1] == Token("name", "foo", 1)
        assert tokens[2].kind == "eof"

    def test_numbers(self):
        tokens = tokenize("42 3.5 .25 1e3 2.5e-2")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == ["int", "float", "float", "float", "float"]

    def test_two_char_operators(self):
        tokens = tokenize("<= >= == != && ||")
        texts = [t.text for t in tokens[:-1]]
        assert texts == ["<=", ">=", "==", "!=", "&&", "||"]

    def test_comments_skipped(self):
        tokens = tokenize("x // comment\ny")
        assert [t.text for t in tokens[:-1]] == ["x", "y"]
        assert tokens[1].line == 2

    def test_line_tracking(self):
        tokens = tokenize("a\n\nb")
        assert tokens[0].line == 1
        assert tokens[1].line == 3

    def test_bad_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a @ b")


class TestParserDeclarations:
    def test_scalars(self):
        kernel = parse("int a; double b; a = 1;")
        assert kernel.decl_by_name["a"].base_type == "int"
        assert kernel.decl_by_name["b"].base_type == "double"
        assert kernel.decl_by_name["a"].dims == ()

    def test_arrays(self):
        kernel = parse("double A[8]; int M[3][4]; A[0] = 1.0;")
        assert kernel.decl_by_name["A"].dims == (8,)
        assert kernel.decl_by_name["M"].dims == (3, 4)
        assert kernel.decl_by_name["M"].byte_size == 48

    def test_comma_declarations(self):
        kernel = parse("int i, j, k; i = 0;")
        assert set(kernel.decl_by_name) == {"i", "j", "k"}

    def test_duplicate_rejected(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse("int a; double a; a = 1;")

    def test_three_dims_rejected(self):
        with pytest.raises(ParseError, match="two dimensions"):
            parse("int A[2][2][2]; A[0][0][0] = 1;")

    def test_zero_dim_rejected(self):
        with pytest.raises(ParseError, match="positive"):
            parse("int A[0]; A[0] = 1;")


class TestParserStatements:
    def test_assignment(self):
        kernel = parse("int x; x = 1 + 2;")
        (stmt,) = kernel.body
        assert isinstance(stmt, Assign)
        assert isinstance(stmt.value, Binary)

    def test_for_loop(self):
        kernel = parse("int i; int s; for (i = 0; i < 10; i = i + 1) s = s + i;")
        (loop,) = kernel.body
        assert isinstance(loop, For)
        assert isinstance(loop.body, Assign)

    def test_while_and_block(self):
        kernel = parse("int x; while (x < 5) { x = x + 1; }")
        (loop,) = kernel.body
        assert isinstance(loop, While)
        assert isinstance(loop.body, Block)

    def test_if_else(self):
        kernel = parse("int x; if (x == 0) x = 1; else x = 2;")
        (branch,) = kernel.body
        assert isinstance(branch, If)
        assert branch.else_body is not None

    def test_missing_semicolon(self):
        with pytest.raises(ParseError, match="expected"):
            parse("int x; x = 1")


class TestParserExpressions:
    def _expr(self, text):
        kernel = parse(f"int x; double d; int v[4]; x = {text};")
        return kernel.body[0].value

    def test_precedence_mul_over_add(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses(self):
        expr = self._expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_comparison_precedence(self):
        expr = self._expr("1 + 2 < 3 * 4")
        assert expr.op == "<"

    def test_logical_precedence(self):
        expr = self._expr("1 < 2 && 3 < 4 || 0")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_unary(self):
        expr = self._expr("-x + !x")
        assert isinstance(expr.left, Unary)
        assert isinstance(expr.right, Unary)

    def test_indexing(self):
        expr = self._expr("v[x + 1]")
        assert isinstance(expr, VarRef)
        assert expr.indices[0].op == "+"

    def test_literals(self):
        assert isinstance(self._expr("7"), IntLit)
        assert isinstance(self._expr("7.5"), FloatLit)

    def test_junk_in_expression(self):
        with pytest.raises(ParseError, match="unexpected"):
            parse("int x; x = ;")
