"""ALICE-style crash-consistency checking of every durability surface.

The storage-fault shim (:mod:`repro.runtime.storage_faults`) makes
the durability syscalls injectable; this module uses that seam to
*prove* the crash-consistency contracts instead of assuming them:

1. run a durability workload (WAL appends, an atomic report write, a
   cache put, a flight dump) against :class:`MemoryVFS`, which
   executes it on an in-memory filesystem **and records the syscall
   trace**;
2. simulate a crash after *every* syscall prefix.  The simulator
   models page-cache semantics: bytes written but not fsynced may
   survive as **any prefix** (torn at every byte boundary), a file
   created but never fsynced may be absent entirely, and the most
   recent un-fsynced rename/unlink may or may not have reached the
   journal (both branches are enumerated);
3. replay *recovery* — the real reader code, pointed at the simulated
   post-crash state — and assert the surface's invariant:

   * **WAL**: no fsync-acknowledged record is ever lost, replay never
     raises, and a post-recovery append still works;
   * **atomic writes** (reports, cache entries): the file is a
     complete old version or a complete new version, never torn;
   * **cache**: a reader serves the exact entry or a quarantined
     miss, never a mutated one;
   * **flight record**: every complete JSONL line parses (only the
     unterminated tail may be torn).

A second sweep drives the *non-crash* fault models — EIO on
write/fsync, ENOSPC mid-write, torn appends — at every injectable
syscall index and asserts the hardening contract: a typed
:class:`~repro.errors.StorageError` (never a bare ``OSError``)
reaches the caller, the surface's invariant still holds, and a retry
after the fault clears succeeds.

``repro faults --storage`` runs the whole matrix and emits it as the
crash-consistency report (default ``FAULTS_report.json``); the
``storage-faults`` CI job gates on zero violations.

Model assumptions (documented, deliberately ext4-ordered-shaped):
``fsync`` of a file persists its data *and* its directory entry; at
most the most recent rename/unlink with no later fsync may be
un-persisted; earlier metadata ops have committed.  These are the
same assumptions the atomic-write pattern itself relies on.
"""

from __future__ import annotations

import errno
import json
import random
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import StorageError
from repro.obs import OBS
from repro.runtime.checkpoint import CheckpointLog, atomic_write_text
from repro.runtime.storage_faults import (
    FaultPlan,
    FaultSpec,
    FaultyVFS,
    SimulatedCrash,
    StorageVFS,
)

__all__ = [
    "MemoryVFS",
    "StorageCampaignReport",
    "possible_contents",
    "run_storage_campaign",
    "storage_report_problems",
]

#: A possible post-crash state meaning "the file does not exist".
ABSENT = None

#: Fault kinds the non-crash syscall sweep drives (plus the crash
#: sweep itself, reported as ``crash-every-prefix``).
SYSCALL_MODELS = ("eio", "enospc", "torn")

CRASH_MODEL = "crash-every-prefix"


# ----------------------------------------------------------------------
# In-memory VFS with syscall-trace recording
# ----------------------------------------------------------------------


class _MemHandle:
    """An opaque append handle onto a :class:`MemoryVFS` path."""

    __slots__ = ("vfs", "path", "closed")

    def __init__(self, vfs: "MemoryVFS", path: str):
        self.vfs = vfs
        self.path = path
        self.closed = False

    def close(self) -> None:  # fork-scrub compatibility
        if not self.closed:
            self.vfs.close(self)


class MemoryVFS(StorageVFS):
    """A :class:`StorageVFS` over an in-memory filesystem.

    Executes the live (page-cache view) semantics the code under test
    observes, and records every durability syscall as an op tuple so
    the crash simulator can re-derive all possible durable states.
    All writes are appends — exactly the access pattern of every
    durability surface in the system (fresh temp files and WAL/flight
    appends)."""

    name = "memory"

    def __init__(self, initial_files: dict[str, bytes] | None = None):
        self.files: dict[str, bytearray] = {
            self._key(path): bytearray(data)
            for path, data in (initial_files or {}).items()
        }
        #: Paths that existed before the trace (their dentries are
        #: durable from the start).
        self.initial: dict[str, bytes] = {
            self._key(path): bytes(data)
            for path, data in (initial_files or {}).items()
        }
        self.ops: list[tuple] = []
        self.locked: set[str] = set()
        self._dirs: set[str] = set()
        self._tmp_counter = 0

    @staticmethod
    def _key(path) -> str:
        return str(path)

    def release_locks(self) -> None:
        """What process death does to advisory locks."""
        self.locked.clear()

    # -- handle-producing ----------------------------------------------

    def mkstemp(self, dir, prefix: str, suffix: str):
        self._tmp_counter += 1
        name = str(Path(dir) / f"{prefix}{self._tmp_counter:08d}{suffix}")
        self.files[name] = bytearray()
        self.ops.append(("create", name))
        return _MemHandle(self, name), name

    def open_append(self, path):
        key = self._key(path)
        if key not in self.files:
            self.files[key] = bytearray()
            self.ops.append(("create", key))
        return _MemHandle(self, key)

    # -- handle ops ----------------------------------------------------

    def write(self, handle: _MemHandle, data: bytes) -> None:
        if handle.closed:
            raise OSError(errno.EBADF, "write to closed handle", handle.path)
        self.files[handle.path].extend(data)
        self.ops.append(("write", handle.path, bytes(data)))

    def flush(self, handle: _MemHandle) -> None:
        self.ops.append(("flush", handle.path))

    def fsync(self, handle: _MemHandle) -> None:
        if handle.closed:
            raise OSError(errno.EBADF, "fsync of closed handle", handle.path)
        self.ops.append(("fsync", handle.path))

    def close(self, handle: _MemHandle) -> None:
        handle.closed = True
        self.locked.discard(handle.path)

    def lock_exclusive(self, handle: _MemHandle) -> bool:
        if handle.path in self.locked:
            raise OSError(
                errno.EAGAIN, "resource temporarily unavailable", handle.path
            )
        self.locked.add(handle.path)
        return True

    # -- namespace ops -------------------------------------------------

    def replace(self, src, dst) -> None:
        src_key, dst_key = self._key(src), self._key(dst)
        if src_key not in self.files:
            raise FileNotFoundError(errno.ENOENT, "no such file", src_key)
        self.files[dst_key] = self.files.pop(src_key)
        self.ops.append(("replace", src_key, dst_key))

    def unlink(self, path) -> None:
        key = self._key(path)
        if key not in self.files:
            raise FileNotFoundError(errno.ENOENT, "no such file", key)
        del self.files[key]
        self.ops.append(("unlink", key))

    def mkdirs(self, path) -> None:
        self._dirs.add(self._key(path))

    # -- read / metadata side ------------------------------------------

    def exists(self, path) -> bool:
        key = self._key(path)
        return key in self.files or key in self._dirs

    def size(self, path) -> int:
        return len(self._file(path))

    def tail_byte(self, path) -> bytes:
        data = self._file(path)
        return bytes(data[-1:])

    def read_bytes(self, path) -> bytes:
        return bytes(self._file(path))

    def _file(self, path) -> bytearray:
        key = self._key(path)
        if key not in self.files:
            raise FileNotFoundError(errno.ENOENT, "no such file", key)
        return self.files[key]


# ----------------------------------------------------------------------
# Crash-state simulation
# ----------------------------------------------------------------------


@dataclass
class _SimFile:
    content: bytes = b""
    synced: int = 0
    dentry_durable: bool = False


def _replay(
    initial: dict[str, bytes], ops: list[tuple], skip_op: int | None = None
) -> dict[str, _SimFile]:
    """Durability-model replay of an op prefix (optionally pretending
    one namespace op never committed)."""
    files = {
        path: _SimFile(content=data, synced=len(data), dentry_durable=True)
        for path, data in initial.items()
    }
    for index, op in enumerate(ops):
        if index == skip_op:
            continue
        kind = op[0]
        if kind == "create":
            files.setdefault(op[1], _SimFile())
        elif kind == "write":
            entry = files.setdefault(op[1], _SimFile())
            entry.content += op[2]
        elif kind == "fsync":
            entry = files.get(op[1])
            if entry is not None:
                entry.synced = len(entry.content)
                entry.dentry_durable = True
        elif kind == "replace":
            moved = files.pop(op[1], _SimFile())
            files[op[2]] = moved
        elif kind == "unlink":
            files.pop(op[1], None)
        # flush has no durability effect (libc buffer -> page cache;
        # writes here already model page-cache content).
    return files


def _file_possibilities(entry: _SimFile | None) -> list[bytes | None]:
    if entry is None:
        return [ABSENT]
    states: list[bytes | None] = [
        entry.content[:cut]
        for cut in range(entry.synced, len(entry.content) + 1)
    ]
    if not entry.dentry_durable:
        # Creation itself may not have survived.
        states.append(ABSENT)
    return states


def possible_contents(
    initial: dict[str, bytes],
    ops: list[tuple],
    path: str,
    seed: int = 0,
    max_states: int = 96,
) -> tuple[list[bytes | None], int]:
    """Every durable content ``path`` may hold after a crash that
    follows the last op of ``ops``; returns ``(states, sampled_out)``.

    When torn-prefix enumeration exceeds ``max_states`` the boundary
    set is down-sampled deterministically (the fully-durable and
    fully-written endpoints are always kept) and the count of dropped
    states is reported — never silently."""
    branches = [_replay(initial, ops)]
    last_ns = None
    for index, op in enumerate(ops):
        if op[0] in ("replace", "unlink"):
            last_ns = index
        elif op[0] == "fsync" and last_ns is not None:
            # A later journal commit persisted the metadata op too.
            last_ns = None
    if last_ns is not None:
        branches.append(_replay(initial, ops, skip_op=last_ns))

    states: list[bytes | None] = []
    seen: set = set()
    for branch in branches:
        for state in _file_possibilities(branch.get(path)):
            marker = b"\x00ABSENT" if state is None else b"S" + state
            if marker not in seen:
                seen.add(marker)
                states.append(state)
    sampled_out = 0
    if len(states) > max_states:
        keep = {0, len(states) - 1}
        rng = random.Random(f"{seed}:{len(ops)}:{path}")
        keep.update(rng.sample(range(len(states)), max_states - len(keep)))
        sampled_out = len(states) - len(keep)
        states = [state for i, state in enumerate(states) if i in keep]
    return states, sampled_out


# ----------------------------------------------------------------------
# Surfaces: workload + invariant
# ----------------------------------------------------------------------


@dataclass
class _Surface:
    """One durability surface: how to run it, and what must hold."""

    name: str
    #: Files existing (durably) before the workload runs.
    initial: dict[str, bytes]
    #: run(vfs, ctx) executes the whole workload through ``vfs``.
    run: object
    #: The path whose post-crash states are audited.
    audited: str
    #: check(content, ops_executed, ctx) -> problem string | None.
    check: object
    #: Whether the non-crash syscall sweep applies (workload restarts
    #: cleanly after a fault).
    syscall_sweep: bool = True
    #: check_live(vfs, ctx) -> problem | None, run after a *failed*
    #: (non-crash) workload: the invariant on the live filesystem.
    check_live: object = None
    #: Expected behaviour of non-crash faults: "raise" (a typed
    #: StorageError must surface) or "degrade" (the call must swallow
    #: the fault and keep working).
    on_fault: str = "raise"


def _wal_surface(seed: int) -> _Surface:
    wal_path = "state/run.wal"
    run_key = f"storage-check:{seed}"
    records = [
        (f"case-{i}", {"outcome": "detected", "n": i, "z": "zz"})
        for i in range(4)
    ]

    def run(vfs: StorageVFS, ctx: dict) -> None:
        acks = ctx.setdefault("acks", [])
        mem = vfs.inner if isinstance(vfs, FaultyVFS) else vfs
        log = CheckpointLog(wal_path, run_key=run_key, vfs=vfs)
        attempted = ctx.setdefault("attempted", [])
        for key, result in records:
            attempted.append(key)
            log.record(key, result)
            if isinstance(mem, MemoryVFS):
                acks.append((key, len(mem.ops)))
        log.close()

    def check(content: bytes | None, ops_executed: int, ctx: dict):
        snapshot = MemoryVFS(
            initial_files={} if content is ABSENT else {wal_path: content}
        )
        log = CheckpointLog(wal_path, run_key=run_key, vfs=snapshot)
        try:
            completed = log.load()
        except Exception as err:  # noqa: BLE001 - any escape is a violation
            return f"replay raised {type(err).__name__}: {err}"
        expected = dict(records)
        acked = [key for key, at in ctx.get("acks", ()) if at <= ops_executed]
        for key in acked:
            if key not in completed:
                return f"fsync-acknowledged record {key!r} lost"
            if completed[key] != expected[key]:
                return f"record {key!r} replayed corrupted: {completed[key]}"
        for key, value in completed.items():
            if key not in expected or value != expected[key]:
                return f"phantom record {key!r} in replay: {value}"
        # Recovery must also be able to continue the run: append one
        # more record on the crashed image and replay the union.
        post = CheckpointLog(wal_path, run_key=run_key, vfs=snapshot)
        post.load()
        try:
            post.record("post-crash", {"outcome": "resumed"})
        except Exception as err:  # noqa: BLE001
            return f"post-recovery append raised {type(err).__name__}: {err}"
        finally:
            post.close()
        try:
            reloaded = CheckpointLog(
                wal_path, run_key=run_key, vfs=snapshot
            ).load()
        except Exception as err:  # noqa: BLE001
            return f"post-recovery replay raised {type(err).__name__}: {err}"
        if "post-crash" not in reloaded:
            return "post-recovery append did not survive its own replay"
        for key in acked:
            if key not in reloaded:
                return f"record {key!r} lost by the post-recovery append"
        return None

    def check_live(vfs: StorageVFS, ctx: dict):
        # After a *failed* (non-crash) syscall the log object is still
        # alive; the on-disk state must stay replayable and no
        # acknowledged record may have vanished.
        return check(
            vfs.read_bytes(wal_path) if vfs.exists(wal_path) else ABSENT,
            len(vfs.ops) if isinstance(vfs, MemoryVFS) else 10**9,
            ctx,
        )

    return _Surface(
        name="wal_append",
        initial={},
        run=run,
        audited=wal_path,
        check=check,
        check_live=check_live,
    )


def _atomic_surface() -> _Surface:
    target = "out/report.json"
    old = json.dumps({"version": 1, "payload": "x" * 40}) + "\n"
    new = json.dumps({"version": 2, "payload": "y" * 48}) + "\n"
    versions = {old.encode(), new.encode()}

    def run(vfs: StorageVFS, ctx: dict) -> None:
        atomic_write_text(target, new, vfs=vfs)

    def check(content: bytes | None, ops_executed: int, ctx: dict):
        if content is ABSENT:
            return "target vanished (neither old nor new version)"
        if content not in versions:
            return (
                f"torn target: {len(content)} bytes matching neither "
                "complete version"
            )
        return None

    def check_live(vfs: StorageVFS, ctx: dict):
        return check(
            vfs.read_bytes(target) if vfs.exists(target) else ABSENT, 0, ctx
        )

    return _Surface(
        name="atomic_write",
        initial={target: old.encode()},
        run=run,
        audited=target,
        check=check,
        check_live=check_live,
    )


def _repeated_atomic_surface() -> _Surface:
    target = "out/rolling.json"
    versions = [
        (json.dumps({"gen": gen, "data": "p" * (20 + gen)}) + "\n").encode()
        for gen in range(3)
    ]
    allowed = set(versions)

    def run(vfs: StorageVFS, ctx: dict) -> None:
        for version in versions[1:]:
            atomic_write_text(target, version.decode(), vfs=vfs)

    def check(content: bytes | None, ops_executed: int, ctx: dict):
        if content is ABSENT:
            return "target vanished between rewrites"
        if content not in allowed:
            return f"torn target after rewrite sweep ({len(content)} bytes)"
        return None

    def check_live(vfs: StorageVFS, ctx: dict):
        return check(
            vfs.read_bytes(target) if vfs.exists(target) else ABSENT, 0, ctx
        )

    return _Surface(
        name="atomic_write_repeated",
        initial={target: versions[0]},
        run=run,
        audited=target,
        check=check,
        check_live=check_live,
    )


def _cache_surface() -> _Surface:
    from repro.pipeline.cache import BundleCache, entry_digest  # noqa: F401

    cache_dir = "cachedir"
    key = "deadbeef-k5-tt16-greedy"
    entry = {"bundle_digest": "abc123", "payload": {"words": 17, "n": 4}}
    audited = str(Path(cache_dir) / f"{key}.json")

    def run(vfs: StorageVFS, ctx: dict) -> None:
        from repro.pipeline.cache import BundleCache

        cache = BundleCache(capacity=4, cache_dir=cache_dir, vfs=vfs)
        cache.put(key, entry)
        ctx["writer_stats"] = cache.stats()

    def check(content: bytes | None, ops_executed: int, ctx: dict):
        from repro.pipeline.cache import BundleCache

        snapshot = MemoryVFS(
            initial_files={} if content is ABSENT else {audited: content}
        )
        reader = BundleCache(capacity=4, cache_dir=cache_dir, vfs=snapshot)
        try:
            got = reader.get(key)
        except Exception as err:  # noqa: BLE001
            return f"cache read raised {type(err).__name__}: {err}"
        if got is not None and got != entry:
            return f"cache served a mutated entry: {got}"
        return None

    def check_live(vfs: StorageVFS, ctx: dict):
        return check(
            vfs.read_bytes(audited) if vfs.exists(audited) else ABSENT, 0, ctx
        )

    return _Surface(
        name="cache_put",
        initial={},
        run=run,
        audited=audited,
        check=check,
        check_live=check_live,
        on_fault="degrade",
    )


def _faults_report_surface() -> _Surface:
    from repro.faults.report import CaseResult, FaultCampaignReport

    target = "out/FAULTS_report.json"

    def build(tag: str) -> FaultCampaignReport:
        return FaultCampaignReport(
            config={"campaign": "storage-selfcheck", "tag": tag},
            cases=[
                CaseResult(
                    workload="fir",
                    model="tt_bitflip",
                    seed=f"{tag}:0",
                    mode="strict",
                    outcome="detected",
                )
            ],
        )

    old = build("old").to_json(deterministic=True).encode()
    new_report = build("new")
    new = new_report.to_json(deterministic=True).encode()
    versions = {old, new}

    def run(vfs: StorageVFS, ctx: dict) -> None:
        new_report.write(target, deterministic=True, vfs=vfs)

    def check(content: bytes | None, ops_executed: int, ctx: dict):
        if content is ABSENT:
            return "report vanished"
        if content not in versions:
            return f"torn FAULTS report ({len(content)} bytes)"
        try:
            json.loads(content.decode("utf-8"))
        except ValueError as err:
            return f"report unparseable: {err}"
        return None

    def check_live(vfs: StorageVFS, ctx: dict):
        return check(
            vfs.read_bytes(target) if vfs.exists(target) else ABSENT, 0, ctx
        )

    return _Surface(
        name="faults_report",
        initial={target: old},
        run=run,
        audited=target,
        check=check,
        check_live=check_live,
    )


def _flight_surface() -> _Surface:
    from repro.obs.flight import FlightRecorder

    target = "out/flight.jsonl"

    def run(vfs: StorageVFS, ctx: dict) -> None:
        clock_box = {"t": 0.0}

        def clock() -> float:
            clock_box["t"] += 10.0
            return clock_box["t"]

        recorder = FlightRecorder(capacity=16, clock=clock, vfs=vfs)
        ctx["recorder"] = recorder
        for i in range(5):
            recorder.record("tick", n=i)
        recorder.dump(target, reason="breaker_open")
        recorder.record("tick", n=5)
        recorder.dump(target, reason="sigterm")

    def check(content: bytes | None, ops_executed: int, ctx: dict):
        if content is ABSENT or content == b"":
            return None  # nothing dumped yet — nothing to tear
        lines = content.split(b"\n")
        complete, tail = lines[:-1], lines[-1]
        for index, line in enumerate(complete):
            if not line:
                continue
            try:
                json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as err:
                return f"complete flight line {index} unparseable: {err}"
        return None

    def check_live(vfs: StorageVFS, ctx: dict):
        # The live-file invariant after *fault* runs is looser than
        # the post-crash one: a failed dump legitimately leaves one
        # torn (but newline-terminated) fragment that JSONL readers
        # skip.  What must hold: every dump the recorder counted as
        # written has an intact, parseable header in the file (no
        # glued-onto-torn-bytes corruption), and the in-memory ring
        # survived the failure.
        recorder = ctx.get("recorder")
        content = vfs.read_bytes(target) if vfs.exists(target) else ABSENT
        if content not in (ABSENT, b"") and recorder is not None:
            headers = 0
            for line in content.split(b"\n")[:-1]:
                if not line:
                    continue
                try:
                    obj = json.loads(line.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    continue  # a torn fragment; readers skip it
                if isinstance(obj, dict) and obj.get("event") == "flight_dump":
                    headers += 1
            if headers < recorder.dumps_written:
                return (
                    f"{recorder.dumps_written} dumps acked but only "
                    f"{headers} intact headers in the record"
                )
        if recorder is not None and len(recorder.tail(100)) == 0:
            return "flight ring emptied by a failed dump"
        return None

    return _Surface(
        name="flight_dump",
        initial={},
        run=run,
        audited=target,
        check=check,
        check_live=check_live,
        on_fault="degrade",
    )


def _surfaces(seed: int) -> list[_Surface]:
    return [
        _wal_surface(seed),
        _atomic_surface(),
        _repeated_atomic_surface(),
        _cache_surface(),
        _faults_report_surface(),
        _flight_surface(),
    ]


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------


def _sweep_crash_prefixes(
    surface: _Surface, seed: int, max_states: int
) -> dict:
    """Crash after every syscall prefix; audit every reachable durable
    state of the surface's file."""
    mem = MemoryVFS(initial_files=surface.initial)
    ctx: dict = {}
    surface.run(mem, ctx)
    ops = mem.ops
    violations: list[dict] = []
    states_checked = 0
    sampled_out = 0
    for prefix in range(len(ops) + 1):
        states, dropped = possible_contents(
            surface.initial,
            ops[:prefix],
            surface.audited,
            seed=seed,
            max_states=max_states,
        )
        sampled_out += dropped
        for content in states:
            states_checked += 1
            problem = surface.check(content, prefix, ctx)
            if problem and len(violations) < 20:
                violations.append(
                    {
                        "crash_after_op": prefix,
                        "op": list(ops[prefix - 1][:2]) if prefix else None,
                        "state_bytes": (
                            None if content is ABSENT else len(content)
                        ),
                        "problem": problem,
                    }
                )
    return {
        "surface": surface.name,
        "model": CRASH_MODEL,
        "syscalls": len(ops),
        "crash_points": len(ops) + 1,
        "states_checked": states_checked,
        "states_sampled_out": sampled_out,
        "violations": violations,
    }


def _sweep_syscall_faults(
    surface: _Surface, model: str, seed: int
) -> dict:
    """Inject ``model`` at every injectable syscall index; assert the
    typed-error + invariant + retry contract."""
    # First, a clean run to count injectable syscalls.
    probe_plan = FaultPlan(specs=[], seed=seed)
    probe_mem = MemoryVFS(initial_files=surface.initial)
    probe = FaultyVFS(probe_plan, inner=probe_mem)
    surface.run(probe, {})
    injectable = sum(
        1
        for op in probe_mem.ops
        if op[0] in ("create", "write", "flush", "fsync", "replace", "unlink")
    )

    violations: list[dict] = []
    cases = 0
    for index in range(injectable + 4):  # +4 probes past the end: no-fire
        cases += 1
        mem = MemoryVFS(initial_files=surface.initial)
        plan = FaultPlan(
            specs=[FaultSpec(op="any", kind=model, at=index)], seed=seed
        )
        vfs = FaultyVFS(plan, inner=mem)
        ctx: dict = {}
        outcome = "clean"
        error: BaseException | None = None
        try:
            surface.run(vfs, ctx)
        except SimulatedCrash:
            outcome = "crashed"
            mem.release_locks()  # process death drops advisory locks
        except StorageError as err:
            outcome = "storage-error"
            error = err
        except OSError as err:
            outcome = "bare-oserror"
            error = err
        except Exception as err:  # noqa: BLE001
            outcome = "unexpected"
            error = err

        fired = bool(plan.fired)
        problem = None
        if outcome == "bare-oserror":
            problem = (
                f"bare OSError escaped at syscall {index}: "
                f"{type(error).__name__}: {error}"
            )
        elif outcome == "unexpected":
            problem = (
                f"unstructured {type(error).__name__} escaped at syscall "
                f"{index}: {error}"
            )
        elif not fired and outcome != "clean":
            problem = f"no fault fired yet the run failed: {outcome}"
        elif fired and surface.on_fault == "degrade" and outcome not in (
            "clean",
            "crashed",
        ):
            problem = (
                f"a degrading surface surfaced {outcome} at syscall {index}"
            )
        if problem is None and surface.check_live is not None:
            problem = surface.check_live(mem, ctx)
        if problem is None and fired and outcome != "crashed":
            # The environment heals; the workload must succeed now and
            # leave the surface in its final (new-complete) state.
            plan.disarm()
            mem.release_locks()
            retry_ctx: dict = {}
            try:
                surface.run(vfs, retry_ctx)
            except Exception as err:  # noqa: BLE001
                problem = (
                    f"retry after cleared fault failed: "
                    f"{type(err).__name__}: {err}"
                )
            if problem is None and surface.check_live is not None:
                problem = surface.check_live(mem, retry_ctx)
        if problem and len(violations) < 20:
            violations.append({"syscall": index, "problem": problem})
    return {
        "surface": surface.name,
        "model": model,
        "syscalls": injectable,
        "crash_points": 0,
        "states_checked": cases,
        "states_sampled_out": 0,
        "violations": violations,
    }


# ----------------------------------------------------------------------
# Campaign + report
# ----------------------------------------------------------------------


@dataclass
class StorageCampaignReport:
    """The crash-consistency matrix: fault models x durability
    surfaces x the invariant verdict."""

    config: dict
    matrix: list[dict] = field(default_factory=list)

    def total_violations(self) -> int:
        return sum(len(row["violations"]) for row in self.matrix)

    def storage_ok(self) -> bool:
        """The acceptance gate: zero fsync-acknowledged records lost,
        zero torn reports, zero bare OSErrors — anywhere."""
        return self.total_violations() == 0

    def format_table(self) -> str:
        header = (
            f"{'surface':<22s} {'model':<20s} {'syscalls':>8s} "
            f"{'states':>7s} {'sampled-out':>11s} {'violations':>10s}"
        )
        lines = [header, "-" * len(header)]
        for row in self.matrix:
            lines.append(
                f"{row['surface']:<22s} {row['model']:<20s} "
                f"{row['syscalls']:>8d} {row['states_checked']:>7d} "
                f"{row['states_sampled_out']:>11d} "
                f"{len(row['violations']):>10d}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "campaign": "storage",
            "matrix": self.matrix,
            "total_violations": self.total_violations(),
            "storage_ok": self.storage_ok(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)

    def write(self, path: str = "FAULTS_report.json") -> Path:
        target = Path(path)
        atomic_write_text(target, self.to_json())
        return target


def run_storage_campaign(
    seed: int = 0, max_states: int = 96
) -> StorageCampaignReport:
    """The full matrix: every durability surface under the crash-at-
    every-syscall-prefix sweep plus each non-crash fault model."""
    if OBS.enabled:
        # Pre-register the storage families so even a clean sweep
        # exposes them (an absent family reads as a skipped leg).
        OBS.registry.counter(
            "storage.injected_faults",
            "storage-fault syscall injections fired",
        )
        OBS.registry.counter(
            "cache.corrupt_entries",
            "disk-cache entries that failed validation and were "
            "quarantined",
        )
        OBS.registry.counter(
            "flight.dump_errors",
            "flight-record dumps that failed to reach disk",
        )
    report = StorageCampaignReport(
        config={
            "campaign": "storage",
            "seed": seed,
            "max_states": max_states,
            "surfaces": [surface.name for surface in _surfaces(seed)],
            "models": [CRASH_MODEL, *SYSCALL_MODELS],
        }
    )
    for surface in _surfaces(seed):
        report.matrix.append(
            _sweep_crash_prefixes(surface, seed=seed, max_states=max_states)
        )
        if not surface.syscall_sweep:
            continue
        for model in SYSCALL_MODELS:
            report.matrix.append(
                _sweep_syscall_faults(surface, model, seed=seed)
            )
    return report


def storage_report_problems(data: dict) -> list[str]:
    """CI-gate parser for a written storage report: structural checks
    plus the zero-violation guarantee (a vacuous or truncated report
    also fails)."""
    problems: list[str] = []
    if not isinstance(data, dict) or data.get("campaign") != "storage":
        return ["not a storage campaign report"]
    matrix = data.get("matrix")
    if not isinstance(matrix, list) or not matrix:
        return ["storage report has an empty matrix"]
    surfaces = {row.get("surface") for row in matrix}
    for required in ("wal_append", "atomic_write", "cache_put"):
        if required not in surfaces:
            problems.append(f"surface {required!r} missing from the matrix")
    crash_rows = [row for row in matrix if row.get("model") == CRASH_MODEL]
    if not crash_rows:
        problems.append("no crash-every-prefix rows in the matrix")
    for row in matrix:
        if row.get("model") == CRASH_MODEL and row.get("states_checked", 0) == 0:
            problems.append(
                f"{row.get('surface')}: crash sweep checked zero states"
            )
        for violation in row.get("violations", []):
            problems.append(
                f"{row.get('surface')}/{row.get('model')}: "
                f"{violation.get('problem')}"
            )
    if not data.get("storage_ok") and not problems:
        problems.append("storage_ok is false but no violations listed")
    return problems
