"""Always-on flight recorder: a bounded ring of recent events.

The chaos selftest taught PR 7's serve path to survive crashes; this
module makes those crashes *diagnosable*.  A :class:`FlightRecorder`
is cheap enough to run unconditionally (one deque append per event,
no formatting until a dump), holds the last ``capacity`` events, and
writes them out as a JSONL *flight record* when something goes wrong —
the server triggers dumps on breaker-open, pool-rebuild storms, and
SIGTERM.

Each event carries a monotonic timestamp and a sequence number; the
dump header records the trigger reason and how much of history the
ring still held, so a reader knows whether the record is complete.
Dumps are rate-limited per reason (a breaker flapping open every
cooldown must not rewrite the record in a loop and bury the first,
most interesting, occurrence).

A dump happens precisely when something is already wrong, which is
exactly when the disk is *most* likely to be wrong too (ENOSPC during
an incident is a classic).  :meth:`FlightRecorder.dump` therefore
never lets a failed write mask the original trigger: the ``OSError``
is swallowed, counted (``dump_errors`` + the ``flight.dump_errors``
metric), the per-reason rate-limit stamp is rolled back so the next
trigger retries immediately, and the in-memory ring is left intact
for that next attempt.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Callable

__all__ = ["FlightRecorder"]

DEFAULT_CAPACITY = 4096

#: Minimum spacing between two dumps for the *same* reason.
DEFAULT_MIN_DUMP_INTERVAL_S = 5.0


class FlightRecorder:
    """Bounded in-memory event ring with JSONL dump-on-trigger."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        clock: Callable[[], float] = time.monotonic,
        min_dump_interval_s: float = DEFAULT_MIN_DUMP_INTERVAL_S,
        vfs=None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._clock = clock
        self.min_dump_interval_s = min_dump_interval_s
        self._vfs = vfs
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._seq = 0
        self._last_dump: dict[str, float] = {}
        self.events_recorded = 0
        self.dumps_written = 0
        self.dumps_suppressed = 0
        self.dump_errors = 0

    def record(self, kind: str, **fields) -> None:
        """Append one event; O(1), never raises on weird field values
        (serialisation is deferred — and fenced — until dump time)."""
        self._seq += 1
        self.events_recorded += 1
        self._ring.append(
            {"seq": self._seq, "t_mono": self._clock(), "kind": kind, **fields}
        )

    def dump(
        self,
        path: str | Path,
        reason: str,
        extra: dict | None = None,
    ) -> bool:
        """Write the ring to ``path`` as JSONL; returns True if written.

        Rate-limited per ``reason``; appends, so successive distinct
        triggers accumulate in one record file in order.  A failed
        write (ENOSPC/EIO) is swallowed and counted — it must never
        escalate the incident that triggered the dump — and the ring
        plus the rate-limit stamp are left so the *next* trigger
        retries with full history.
        """
        # Imported lazily: repro.obs initialises before repro.runtime.
        from repro.runtime.storage_faults import get_vfs

        now = self._clock()
        last = self._last_dump.get(reason)
        if last is not None and now - last < self.min_dump_interval_s:
            self.dumps_suppressed += 1
            return False
        self._last_dump[reason] = now
        header = {
            "event": "flight_dump",
            "reason": reason,
            "t_mono": now,
            "t_unix": time.time(),
            "events_retained": len(self._ring),
            "events_recorded": self.events_recorded,
            "seq_first": self._ring[0]["seq"] if self._ring else None,
            "seq_last": self._ring[-1]["seq"] if self._ring else None,
        }
        if extra:
            header["extra"] = extra
        lines = [json.dumps(header, default=repr)]
        lines.extend(json.dumps(event, default=repr) for event in self._ring)
        path = Path(path)
        vfs = self._vfs or get_vfs()
        try:
            if path.parent and not vfs.exists(path.parent):
                vfs.mkdirs(path.parent)
            payload = ("\n".join(lines) + "\n").encode("utf-8")
            # A previous dump that died mid-write (ENOSPC, crash)
            # leaves a torn final line with no newline; appending
            # straight after it would glue this dump's header onto the
            # torn bytes and corrupt *both*.  Terminate the boundary
            # first, folded into the same write.
            if (
                vfs.exists(path)
                and vfs.size(path) > 0
                and vfs.tail_byte(path) != b"\n"
            ):
                payload = b"\n" + payload
            # Append (not atomic-replace): a record that already holds
            # the breaker-open dump must keep it when the SIGTERM dump
            # lands.
            handle = vfs.open_append(path)
            try:
                vfs.write(handle, payload)
                vfs.flush(handle)
            finally:
                try:
                    vfs.close(handle)
                except OSError:
                    pass
        except OSError:
            # The ring is untouched and the stamp rolled back: the
            # next trigger for this reason retries immediately instead
            # of waiting out the rate limit on a dump that never
            # happened.
            self.dump_errors += 1
            self._last_dump.pop(reason, None)
            self._count_dump_error()
            return False
        self.dumps_written += 1
        return True

    def _count_dump_error(self) -> None:
        from repro.obs import OBS

        if OBS.enabled:
            OBS.registry.counter(
                "flight.dump_errors",
                "flight-record dumps that failed to reach disk",
            ).inc()

    def snapshot(self) -> dict:
        """JSON-ready health block for ``status()`` views."""
        return {
            "capacity": self.capacity,
            "events_recorded": self.events_recorded,
            "events_retained": len(self._ring),
            "dumps_written": self.dumps_written,
            "dumps_suppressed": self.dumps_suppressed,
            "dump_errors": self.dump_errors,
        }

    def tail(self, n: int = 32) -> list[dict]:
        """The most recent ``n`` events (for `repro top` style views)."""
        if n <= 0:
            return []
        return list(self._ring)[-n:]
