"""Shared helpers for the benchmark workloads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.isa.assembler import Program, assemble
from repro.sim.cpu import Cpu


@dataclass(frozen=True)
class Workload:
    """A runnable benchmark: source, metadata and a result checker."""

    name: str
    description: str
    source: str
    params: dict = field(default_factory=dict)
    verify: Callable[[Cpu], None] | None = None

    def assemble(self) -> Program:
        return assemble(self.source)

    def run(self, max_steps: int = 200_000_000, with_trace: bool = True):
        """Assemble, execute, verify; returns (cpu, trace)."""
        from repro.sim.cpu import run_program

        program = self.assemble()
        cpu, trace = run_program(program, max_steps, with_trace)
        if self.verify is not None:
            self.verify(cpu)
        return cpu, trace


def format_doubles(values: Sequence[float], per_line: int = 8) -> str:
    """Render a ``.double`` initialiser block."""
    lines = []
    for i in range(0, len(values), per_line):
        chunk = ", ".join(repr(v) for v in values[i : i + per_line])
        lines.append(f"        .double {chunk}")
    return "\n".join(lines)


def read_doubles(cpu: Cpu, label: str, count: int) -> list[float]:
    """Read ``count`` doubles starting at a data label."""
    base = cpu.program.address_of(label)
    return [cpu.memory.read_f64(base + 8 * i) for i in range(count)]


def read_words(cpu: Cpu, label: str, count: int) -> list[int]:
    """Read ``count`` 32-bit words starting at a data label."""
    base = cpu.program.address_of(label)
    return [cpu.memory.read_u32(base + 4 * i) for i in range(count)]


def pseudo_values(count: int, seed: int = 0, scale: float = 3.0) -> list[float]:
    """Deterministic, compiler-independent test values in [-3, 3]."""
    return [
        (((i * 31 + seed * 17 + 7) % 19) - 9) / scale for i in range(count)
    ]


def assert_close(
    measured: Sequence[float],
    expected: Sequence[float],
    tolerance: float = 1e-9,
    what: str = "result",
) -> None:
    """Element-wise comparison with a helpful failure message."""
    if len(measured) != len(expected):
        raise AssertionError(
            f"{what}: length mismatch {len(measured)} != {len(expected)}"
        )
    for i, (m, e) in enumerate(zip(measured, expected)):
        if abs(m - e) > tolerance * max(1.0, abs(e)):
            raise AssertionError(
                f"{what}[{i}]: measured {m!r}, expected {e!r}"
            )
