"""Instruction-cache model.

Section 8: instructions are fetched "from an instruction storage,
possibly an instruction cache or memory; the type of storage bears no
impact on the bit transition reductions we attain."  This model lets
us *check* that claim instead of assuming it, and additionally study
the cache-refill bus (cache -> memory side), where the encoded image
also travels when the program memory holds encoded words.

A set-associative, true-LRU cache over the text image.  Feeding it a
fetch trace yields:

* the CPU-side word sequence — identical to the raw trace order, so
  CPU-side transitions are storage-independent (the paper's claim);
* the memory-side refill word sequence (line fills, in address order),
  whose transitions depend on the image (baseline vs encoded) and on
  the cache geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.bitstream import total_word_transitions


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0
    refills: int = 0  # lines fetched from memory

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return 1.0 - self.misses / self.accesses


@dataclass
class InstructionCache:
    """Set-associative I-cache with true-LRU replacement.

    ``line_bytes`` must be a power of two and a multiple of 4.
    """

    size_bytes: int = 1024
    line_bytes: int = 16
    associativity: int = 2
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.line_bytes < 4 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a power of two >= 4")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError(
                "cache size must be a multiple of line size * associativity"
            )
        self.num_sets = self.size_bytes // (
            self.line_bytes * self.associativity
        )
        if self.num_sets == 0:
            raise ValueError("cache too small for this geometry")
        # sets[i] is an LRU-ordered list of line tags (most recent last).
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Fetch one instruction; returns True on hit."""
        line = address // self.line_bytes
        index = line % self.num_sets
        ways = self._sets[index]
        self.stats.accesses += 1
        if line in ways:
            ways.remove(line)
            ways.append(line)
            return True
        self.stats.misses += 1
        self.stats.refills += 1
        ways.append(line)
        if len(ways) > self.associativity:
            ways.pop(0)
        return False

    def refill_addresses(self, address: int) -> list[int]:
        """Word addresses transferred on the refill bus for a miss at
        ``address`` (the whole line, in address order)."""
        start = (address // self.line_bytes) * self.line_bytes
        return list(range(start, start + self.line_bytes, 4))


@dataclass(frozen=True)
class CacheBusReport:
    """Transition accounting for a trace run through an I-cache."""

    cpu_side_transitions: int
    refill_transitions: int
    stats: CacheStats


def simulate_cache_buses(
    cache: InstructionCache,
    trace: Sequence[int],
    image: Sequence[int],
    text_base: int,
) -> CacheBusReport:
    """Run a fetch trace through ``cache`` over a given memory image.

    The CPU-side bus carries one word per fetch in trace order (hit or
    miss — the word reaches the core either way).  The refill bus
    carries full lines on misses.
    """
    cache.reset()
    refill_words: list[int] = []
    cpu_words: list[int] = []
    limit = len(image)
    for address in trace:
        index = (address - text_base) >> 2
        if index < 0 or index >= limit:
            raise ValueError(f"trace address {address:#x} outside image")
        cpu_words.append(image[index])
        if not cache.access(address):
            for word_address in cache.refill_addresses(address):
                word_index = (word_address - text_base) >> 2
                if 0 <= word_index < limit:
                    refill_words.append(image[word_index])
    return CacheBusReport(
        cpu_side_transitions=total_word_transitions(cpu_words),
        refill_transitions=total_word_transitions(refill_words),
        stats=cache.stats,
    )
