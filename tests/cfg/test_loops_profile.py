"""Tests for loop detection, profiling and hot-spot selection."""

import pytest

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.hotspot import select_hot_blocks
from repro.cfg.loops import (
    blocks_in_any_loop,
    find_back_edges,
    find_natural_loops,
    innermost_loops,
    loop_forest,
    loop_nesting_depths,
)
from repro.cfg.profile import profile_trace
from repro.core.program_codec import tt_entries_required
from repro.isa.assembler import assemble
from repro.sim.cpu import run_program

NESTED_LOOPS = """
        .text
main:   li $s0, 4
outer:  li $s1, 8
inner:  addiu $s1, $s1, -1
        addu  $t0, $t0, $s1
        bnez $s1, inner
        addiu $s0, $s0, -1
        bnez $s0, outer
        li $v0, 10
        syscall
"""


@pytest.fixture(scope="module")
def setup():
    program = assemble(NESTED_LOOPS)
    cfg = ControlFlowGraph.build(program)
    cpu, trace = run_program(program)
    profile = profile_trace(cfg, trace)
    loops = find_natural_loops(cfg)
    return program, cfg, trace, profile, loops


class TestLoopDetection:
    def test_two_loops_found(self, setup):
        program, cfg, trace, profile, loops = setup
        assert len(loops) == 2
        headers = {loop.header for loop in loops}
        assert headers == {
            program.address_of("outer"),
            program.address_of("inner"),
        }

    def test_nesting(self, setup):
        program, cfg, trace, profile, loops = setup
        inner = next(
            l for l in loops if l.header == program.address_of("inner")
        )
        outer = next(
            l for l in loops if l.header == program.address_of("outer")
        )
        assert inner.is_nested_in(outer)
        assert not outer.is_nested_in(inner)
        depths = loop_nesting_depths(loops)
        assert depths[inner.header] == 2
        assert depths[outer.header] == 1

    def test_innermost(self, setup):
        program, cfg, trace, profile, loops = setup
        (innermost,) = innermost_loops(loops)
        assert innermost.header == program.address_of("inner")

    def test_back_edges(self, setup):
        program, cfg, trace, profile, loops = setup
        back = find_back_edges(cfg)
        targets = {v for _, v in back}
        assert targets == {
            program.address_of("outer"),
            program.address_of("inner"),
        }

    def test_loop_forest(self, setup):
        program, cfg, trace, profile, loops = setup
        forest = loop_forest(loops)
        assert (
            program.address_of("outer"),
            program.address_of("inner"),
        ) in forest.edges

    def test_straight_line_has_no_loops(self):
        program = assemble(".text\nmain: nop\nli $v0, 10\nsyscall\n")
        cfg = ControlFlowGraph.build(program)
        assert find_natural_loops(cfg) == []


class TestProfile:
    def test_entry_counts(self, setup):
        program, cfg, trace, profile, loops = setup
        inner = program.address_of("inner")
        assert profile.entry_counts[inner] == 4 * 8

    def test_fetch_counts(self, setup):
        program, cfg, trace, profile, loops = setup
        inner = program.address_of("inner")
        block = cfg.blocks[inner]
        assert profile.fetch_counts[inner] == 4 * 8 * len(block)

    def test_total(self, setup):
        program, cfg, trace, profile, loops = setup
        assert profile.total_fetches == len(trace)
        assert sum(profile.fetch_counts.values()) == len(trace)

    def test_hottest_is_inner_loop(self, setup):
        program, cfg, trace, profile, loops = setup
        assert profile.hottest(1) == [program.address_of("inner")]

    def test_coverage(self, setup):
        program, cfg, trace, profile, loops = setup
        all_blocks = list(cfg.blocks)
        assert profile.coverage_of(all_blocks) == pytest.approx(1.0)
        assert profile.coverage_of([]) == 0.0

    def test_loop_weight_dominated_by_inner(self, setup):
        program, cfg, trace, profile, loops = setup
        inner = next(
            l for l in loops if l.header == program.address_of("inner")
        )
        assert profile.loop_weight(inner) / profile.total_fetches > 0.5


class TestHotSpotSelection:
    def test_selects_loop_blocks_first(self, setup):
        program, cfg, trace, profile, loops = setup
        plan = select_hot_blocks(profile, block_size=5)
        assert program.address_of("inner") in plan.selected

    def test_respects_tt_capacity(self, setup):
        program, cfg, trace, profile, loops = setup
        plan = select_hot_blocks(profile, block_size=5, tt_capacity=1)
        assert plan.tt_entries_used <= 1
        used = sum(
            tt_entries_required(len(cfg.blocks[b]), 5) for b in plan.selected
        )
        assert used == plan.tt_entries_used

    def test_respects_bbit_capacity(self, setup):
        program, cfg, trace, profile, loops = setup
        plan = select_hot_blocks(
            profile, block_size=5, bbit_capacity=1, tt_capacity=100
        )
        assert len(plan.selected) <= 1

    def test_loops_only_flag(self, setup):
        program, cfg, trace, profile, loops = setup
        loose = select_hot_blocks(profile, block_size=5, loops_only=False)
        strict = select_hot_blocks(profile, block_size=5, loops_only=True)
        loop_blocks = blocks_in_any_loop(loops)
        assert all(b in loop_blocks for b in strict.selected)
        assert set(strict.selected) <= set(loose.selected)

    def test_small_blocks_skipped(self, setup):
        program, cfg, trace, profile, loops = setup
        plan = select_hot_blocks(
            profile, block_size=5, min_block_instructions=100
        )
        assert plan.selected == []
        assert plan.skipped_small

    def test_capacity_overflow_recorded(self, setup):
        program, cfg, trace, profile, loops = setup
        plan = select_hot_blocks(profile, block_size=5, tt_capacity=1)
        assert plan.skipped_capacity or len(plan.selected) >= 1
