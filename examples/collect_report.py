"""Collect every reproduced table into one REPORT.md.

Run the benchmark harness first (it writes artefacts under
``benchmarks/results/``), then this script to assemble them, in the
paper's order, into a single reviewable report:

    pytest benchmarks/ --benchmark-only
    python examples/collect_report.py [output.md]
"""

import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent.parent / "benchmarks" / "results"

#: (artefact stem, section heading) in the paper's order.
SECTIONS = [
    ("fig2_codebook_k3", "Figure 2 — optimal codebook, block size 3"),
    ("fig3_theory_table", "Figure 3 — TTN/RTN/improvement, sizes 2..7"),
    ("fig4_codebook_k5", "Figure 4 — optimal codebook, block size 5 (8-function set)"),
    ("sec52_restricted_set", "Section 5.2 — restricted transformation sets"),
    ("sec6_random_streams", "Section 6 — random-stream experiment"),
    ("fig6_benchmarks", "Figure 6 — benchmark transition reductions"),
    ("fig7_reduction_chart", "Figure 7 — percentage-reduction chart"),
    ("baseline_comparison", "Related-work baselines on identical traces"),
    ("hw_cost_model", "Hardware cost model (Section 7.2)"),
    ("ablation_tau_sets", "Ablation A — transformation-set size"),
    ("ablation_overlap", "Ablation B — block overlap"),
    ("ablation_tt_capacity", "Ablation C — TT capacity"),
    ("ablation_strategy", "Ablation D — encoding strategy on real traces"),
    ("ext_history2", "Extension — two-bit history"),
    ("ext_bias_robustness", "Extension — input-distribution robustness"),
    ("ext_storage_independence", "Extension — storage independence"),
    ("ext_workload_suite", "Extension — DSP kernels beyond Figure 6"),
    ("ext_compiled_codegen", "Extension — compiled vs hand-written code"),
    ("ext_compiled_fig6", "Extension — Figure 6 on compiled code"),
    ("ext_regional_reprogramming", "Extension — regional reprogramming"),
    ("serve_latency", "Engineering — encoding service under chaos load"),
]


def main() -> int:
    output = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "REPORT.md")
    if not RESULTS_DIR.is_dir():
        print(
            "no benchmarks/results/ directory — run "
            "`pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 1
    parts = [
        "# Reproduction report",
        "",
        "Generated from `benchmarks/results/*.txt` (each file is the",
        "artefact of one benchmark in `benchmarks/`).  Paper-vs-measured",
        "commentary lives in EXPERIMENTS.md.",
        "",
    ]
    missing = []
    for stem, heading in SECTIONS:
        path = RESULTS_DIR / f"{stem}.txt"
        if not path.is_file():
            missing.append(stem)
            continue
        parts += [f"## {heading}", "", "```", path.read_text().rstrip(), "```", ""]
    output.write_text("\n".join(parts))
    print(f"wrote {output} ({len(SECTIONS) - len(missing)} sections)")
    if missing:
        print(f"missing artefacts (bench not run yet?): {', '.join(missing)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
