"""Tests for the Section 7.1 table-programming peripheral."""

import random

import pytest

from repro.core.program_codec import encode_basic_block
from repro.hw.fetch_decoder import FetchDecoder
from repro.hw.peripheral import (
    DEFAULT_BASE,
    REG_BBIT_COMMIT,
    REG_BBIT_META,
    REG_BBIT_PC,
    REG_CONTROL,
    REG_TT_COMMIT,
    REG_TT_FLAGS,
    REG_TT_INDEX,
    REG_TT_SEL0,
    WINDOW_SIZE,
    EncodingLoaderPeripheral,
    _pack_selectors,
    _unpack_selectors,
    programming_words,
)
from repro.sim.memory import Memory, MmioRegion


class TestSelectorPacking:
    def test_roundtrip_random(self):
        rng = random.Random(7)
        for _ in range(200):
            selectors = [rng.randrange(8) for _ in range(32)]
            packed = _pack_selectors(selectors)
            assert _unpack_selectors(*packed) == selectors

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            _pack_selectors([0] * 16)


class TestPeripheralRegisters:
    def test_direct_register_writes_program_tt(self):
        peripheral = EncodingLoaderPeripheral()
        write = peripheral._write
        write(REG_TT_INDEX, 0)
        write(REG_TT_SEL0, 0o1111111111)  # ten ~x selectors... octal!
        write(REG_TT_FLAGS, 1 | (5 << 8))
        write(REG_TT_COMMIT, 1)
        assert len(peripheral.tt) == 1
        entry = peripheral.tt.entry(0)
        assert entry.end and entry.count == 5
        assert entry.selectors[:10] == (1,) * 10
        assert entry.selectors[10:] == (0,) * 22

    def test_bbit_staging(self):
        peripheral = EncodingLoaderPeripheral()
        peripheral._write(REG_BBIT_PC, 0x400100)
        peripheral._write(REG_BBIT_META, 3 | (12 << 8))
        peripheral._write(REG_BBIT_COMMIT, 1)
        entry = peripheral.bbit.peek(0x400100)
        assert entry is not None
        assert entry.tt_index == 3 and entry.num_instructions == 12

    def test_control_clear(self):
        peripheral = EncodingLoaderPeripheral()
        peripheral._write(REG_TT_COMMIT, 1)
        peripheral._write(REG_BBIT_PC, 4)
        peripheral._write(REG_BBIT_META, 1 << 8)
        peripheral._write(REG_BBIT_COMMIT, 1)
        peripheral._write(REG_CONTROL, 1)
        assert len(peripheral.tt) == 0
        assert len(peripheral.bbit) == 0

    def test_status_readback(self):
        peripheral = EncodingLoaderPeripheral()
        peripheral._write(REG_TT_COMMIT, 1)
        assert peripheral._read(REG_CONTROL) == 1

    def test_tt_capacity_enforced(self):
        peripheral = EncodingLoaderPeripheral()
        peripheral._write(REG_TT_INDEX, 99)
        with pytest.raises(ValueError, match="capacity"):
            peripheral._write(REG_TT_COMMIT, 1)


class TestProgrammingSequence:
    def _block(self, count=12, seed=5):
        rng = random.Random(seed)
        return [rng.getrandbits(32) for _ in range(count)]

    def test_sequence_reproduces_direct_allocation(self):
        words = self._block()
        encoding = encode_basic_block(words, 5)
        # Reference: direct allocation.
        from repro.hw.tt import TransformationTable

        reference = TransformationTable(16)
        reference.allocate(encoding)

        # Via the programming sequence.
        peripheral = EncodingLoaderPeripheral()
        for offset, value in programming_words([(0x400000, encoding)]):
            peripheral._write(offset, value)
        assert len(peripheral.tt) == len(reference)
        for mine, ref in zip(peripheral.tt.entries, reference.entries):
            assert mine.selectors == ref.selectors
            assert mine.end == ref.end
            assert mine.count == ref.count
        entry = peripheral.bbit.peek(0x400000)
        assert entry.tt_index == 0
        assert entry.num_instructions == len(words)

    def test_software_loaded_tables_decode(self):
        words = self._block(count=17, seed=8)
        encoding = encode_basic_block(words, 5)
        peripheral = EncodingLoaderPeripheral()
        for offset, value in programming_words([(0x400000, encoding)]):
            peripheral._write(offset, value)
        decoder = FetchDecoder(peripheral.tt, peripheral.bbit, 5)
        decoded = [
            decoder.fetch(0x400000 + 4 * i, encoding.encoded_words[i])
            for i in range(len(words))
        ]
        assert decoded == words

    def test_multiple_blocks(self):
        enc_a = encode_basic_block(self._block(6, 1), 5)
        enc_b = encode_basic_block(self._block(9, 2), 5)
        stores = programming_words([(0x100, enc_a), (0x200, enc_b)])
        peripheral = EncodingLoaderPeripheral()
        for offset, value in stores:
            peripheral._write(offset, value)
        assert peripheral.bbit.peek(0x100).tt_index == 0
        assert peripheral.bbit.peek(0x200).tt_index == enc_a.num_segments


class TestMmioIntegration:
    def test_stores_through_memory_reach_peripheral(self):
        peripheral = EncodingLoaderPeripheral()
        memory = Memory()
        memory.add_mmio(peripheral.region())
        memory.write_u32(DEFAULT_BASE + REG_TT_COMMIT, 1)
        assert len(peripheral.tt) == 1

    def test_reads_through_memory(self):
        peripheral = EncodingLoaderPeripheral()
        memory = Memory()
        memory.add_mmio(peripheral.region())
        memory.write_u32(DEFAULT_BASE + REG_TT_COMMIT, 1)
        assert memory.read_u32(DEFAULT_BASE + REG_CONTROL) == 1

    def test_ram_unaffected_outside_window(self):
        peripheral = EncodingLoaderPeripheral()
        memory = Memory()
        memory.add_mmio(peripheral.region())
        memory.write_u32(DEFAULT_BASE + WINDOW_SIZE, 0x1234)
        assert memory.read_u32(DEFAULT_BASE + WINDOW_SIZE) == 0x1234
        assert len(peripheral.tt) == 0

    def test_overlapping_regions_rejected(self):
        memory = Memory()
        memory.add_mmio(MmioRegion(0x1000, 0x100))
        with pytest.raises(ValueError, match="overlaps"):
            memory.add_mmio(MmioRegion(0x10F0, 0x100))
