"""Unified observability: metrics, tracing spans, and run reports.

The paper's argument is quantitative (per-line transitions, table hit
behaviour, hot-loop coverage), so every layer of this repo is
instrumented against one shared substrate:

:mod:`repro.obs.metrics`
    A :class:`MetricsRegistry` of labelled counter / gauge / histogram
    families — cheap enough to stay warm, aggregated in bulk on the
    genuinely hot loops.
:mod:`repro.obs.tracing`
    A :class:`Tracer` of nested wall-clock spans with JSONL emission
    and a no-op mode whose cost is a single attribute check.
:mod:`repro.obs.report`
    The ``RUN_report.json`` writer: registry + spans + provenance
    (git SHA, platform, seed), schema-validated.

Instrumented call sites share one process-wide state object::

    from repro.obs import OBS

    with OBS.tracer.span("encode.block_solve", line=7):
        ...
    if OBS.enabled:
        OBS.registry.counter("codec.blocks_encoded").inc()

``OBS.enabled`` starts ``False`` (set ``REPRO_OBS=1`` to flip the
default); ``repro <cmd> --metrics`` calls :func:`enable` before the
run and snapshots a report after it.  When disabled, span creation
returns a shared no-op object and counter updates are skipped, so the
codec fast path keeps its PR 1 throughput (guarded by the benchmark
acceptance in ``tests/obs/``).
"""

from __future__ import annotations

import os

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.report import (
    EXPECTED_ENCODE_FAMILIES,
    EXPECTED_SERVE_FAMILIES,
    RunReport,
    git_revision,
    load_run_report,
    missing_families,
    validate_run_report,
)
from repro.obs.export import render_openmetrics, synthetic_gauge_family
from repro.obs.flight import FlightRecorder
from repro.obs.slo import SLOPolicy, SLOTracker
from repro.obs.tracing import NOOP_SPAN, Span, TraceContext, Tracer, new_run_id
from repro.obs.window import (
    WINDOW_SPECS,
    RollingCounter,
    RollingHistogram,
    TelemetryWindows,
)

__all__ = [
    "OBS",
    "enable",
    "disable",
    "reset",
    "collect_report",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Span",
    "TraceContext",
    "Tracer",
    "NOOP_SPAN",
    "new_run_id",
    "RunReport",
    "EXPECTED_ENCODE_FAMILIES",
    "EXPECTED_SERVE_FAMILIES",
    "git_revision",
    "load_run_report",
    "missing_families",
    "validate_run_report",
    "WINDOW_SPECS",
    "RollingCounter",
    "RollingHistogram",
    "TelemetryWindows",
    "SLOPolicy",
    "SLOTracker",
    "FlightRecorder",
    "render_openmetrics",
    "synthetic_gauge_family",
]


class _ObsState:
    """The process-wide observability switchboard.

    Hot paths read :attr:`enabled` (one attribute check) before doing
    any metric work; ``tracer.span`` performs the same check itself so
    ``with OBS.tracer.span(...)`` needs no guard.
    """

    __slots__ = ("enabled", "registry", "tracer")

    def __init__(self) -> None:
        self.enabled = bool(os.environ.get("REPRO_OBS"))
        self.registry = MetricsRegistry()
        self.tracer = Tracer(enabled=self.enabled)


OBS = _ObsState()


def enable(jsonl_path: str | None = None) -> _ObsState:
    """Switch metrics + tracing on (optionally streaming span JSONL)."""
    OBS.enabled = True
    OBS.tracer.enabled = True
    if jsonl_path is not None:
        OBS.tracer.open_jsonl(jsonl_path)
    return OBS


def disable() -> _ObsState:
    """Switch observability off (the no-op fast path)."""
    OBS.enabled = False
    OBS.tracer.enabled = False
    OBS.tracer.close_jsonl()
    return OBS


def reset() -> _ObsState:
    """Fresh registry and tracer (new run id); keeps the enabled flag.

    Test isolation hook — also what a long-lived server would call
    between requests batches to start a new accounting window.
    """
    OBS.registry.reset()
    OBS.tracer.close_jsonl()
    OBS.tracer = Tracer(enabled=OBS.enabled)
    return OBS


def collect_report(
    command: str | None = None,
    seed: int | None = None,
    extra: dict | None = None,
) -> RunReport:
    """Snapshot the process-wide state into a :class:`RunReport`."""
    return RunReport.collect(
        OBS.registry, OBS.tracer, command=command, seed=seed, extra=extra
    )
