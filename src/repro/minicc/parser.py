"""Recursive-descent parser for minicc."""

from __future__ import annotations

from repro.minicc.ast_nodes import (
    DOUBLE,
    INT,
    Assign,
    Binary,
    Block,
    Expr,
    FloatLit,
    For,
    If,
    IntLit,
    Kernel,
    Stmt,
    Unary,
    VarDecl,
    VarRef,
    While,
)
from repro.minicc.lexer import Token, tokenize


class ParseError(ValueError):
    """Raised on malformed minicc source."""


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def check(self, kind: str, text: str | None = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        if not self.check(kind, text):
            want = text if text is not None else kind
            raise ParseError(
                f"line {self.current.line}: expected {want!r}, "
                f"got {self.current.text!r}"
            )
        return self.advance()

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------

    def parse_kernel(self) -> Kernel:
        decls: list[VarDecl] = []
        while self.check("kw", "int") or self.check("kw", "double"):
            decls.extend(self.parse_decl())
        body: list[Stmt] = []
        while not self.check("eof"):
            body.append(self.parse_stmt())
        names = [d.name for d in decls]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ParseError(f"duplicate declarations: {sorted(duplicates)}")
        return Kernel(decls=tuple(decls), body=tuple(body))

    def parse_decl(self) -> list[VarDecl]:
        base_type = INT if self.expect("kw").text == "int" else DOUBLE
        decls = []
        while True:
            name = self.expect("name").text
            dims: list[int] = []
            while self.accept("op", "["):
                size_token = self.expect("int")
                size = int(size_token.text)
                if size <= 0:
                    raise ParseError(
                        f"line {size_token.line}: array dimension must be "
                        f"positive, got {size}"
                    )
                dims.append(size)
                self.expect("op", "]")
            if len(dims) > 2:
                raise ParseError(
                    f"{name}: arrays are limited to two dimensions"
                )
            decls.append(VarDecl(name, base_type, tuple(dims)))
            if not self.accept("op", ","):
                break
        self.expect("op", ";")
        return decls

    def parse_stmt(self) -> Stmt:
        if self.accept("op", "{"):
            statements = []
            while not self.accept("op", "}"):
                statements.append(self.parse_stmt())
            return Block(tuple(statements))
        if self.accept("kw", "if"):
            self.expect("op", "(")
            condition = self.parse_expr()
            self.expect("op", ")")
            then_body = self.parse_stmt()
            else_body = self.parse_stmt() if self.accept("kw", "else") else None
            return If(condition, then_body, else_body)
        if self.accept("kw", "while"):
            self.expect("op", "(")
            condition = self.parse_expr()
            self.expect("op", ")")
            return While(condition, self.parse_stmt())
        if self.accept("kw", "for"):
            self.expect("op", "(")
            init = self.parse_assign()
            self.expect("op", ";")
            condition = self.parse_expr()
            self.expect("op", ";")
            step = self.parse_assign()
            self.expect("op", ")")
            return For(init, condition, step, self.parse_stmt())
        assign = self.parse_assign()
        self.expect("op", ";")
        return assign

    def parse_assign(self) -> Assign:
        target = self.parse_var_ref()
        self.expect("op", "=")
        return Assign(target, self.parse_expr())

    def parse_var_ref(self) -> VarRef:
        name = self.expect("name").text
        indices: list[Expr] = []
        while self.accept("op", "["):
            indices.append(self.parse_expr())
            self.expect("op", "]")
        if len(indices) > 2:
            raise ParseError(f"{name}: too many indices")
        return VarRef(name, tuple(indices))

    # Expression precedence climbing -----------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.accept("op", "||"):
            left = Binary("||", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_equality()
        while self.accept("op", "&&"):
            left = Binary("&&", left, self.parse_equality())
        return left

    def parse_equality(self) -> Expr:
        left = self.parse_relational()
        while True:
            if self.accept("op", "=="):
                left = Binary("==", left, self.parse_relational())
            elif self.accept("op", "!="):
                left = Binary("!=", left, self.parse_relational())
            else:
                return left

    def parse_relational(self) -> Expr:
        left = self.parse_additive()
        while True:
            for op in ("<=", ">=", "<", ">"):
                if self.accept("op", op):
                    left = Binary(op, left, self.parse_additive())
                    break
            else:
                return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while True:
            if self.accept("op", "+"):
                left = Binary("+", left, self.parse_multiplicative())
            elif self.accept("op", "-"):
                left = Binary("-", left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while True:
            for op in ("*", "/", "%"):
                if self.accept("op", op):
                    left = Binary(op, left, self.parse_unary())
                    break
            else:
                return left

    def parse_unary(self) -> Expr:
        if self.accept("op", "-"):
            return Unary("-", self.parse_unary())
        if self.accept("op", "!"):
            return Unary("!", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        if self.accept("op", "("):
            inner = self.parse_expr()
            self.expect("op", ")")
            return inner
        if self.check("int"):
            return IntLit(int(self.advance().text))
        if self.check("float"):
            return FloatLit(float(self.advance().text))
        if self.check("name"):
            return self.parse_var_ref()
        raise ParseError(
            f"line {self.current.line}: unexpected token "
            f"{self.current.text!r} in expression"
        )


def parse(source: str) -> Kernel:
    """Parse minicc source into a :class:`Kernel`."""
    return _Parser(tokenize(source)).parse_kernel()
