"""Bus-invert coding (Stan & Burleson, IEEE TVLSI 1995) — reference [5].

Before driving a new word onto the bus, compare its Hamming distance
from the current bus state with ``width / 2``; if larger, drive the
complemented word and assert an extra *invert* line.  Worst-case
transitions per transfer drop to ``width / 2`` (+1 for the invert
line itself, which we count, as the original paper does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass
class BusInvertCoder:
    """Stateful bus-invert encoder for a ``width``-bit bus."""

    width: int = 32

    def __post_init__(self) -> None:
        self._mask = (1 << self.width) - 1
        self.reset()

    def reset(self, initial_word: int = 0) -> None:
        self._bus = initial_word & self._mask
        self._invert_line = 0
        self.transitions = 0
        self.transfers = 0

    def send(self, word: int) -> tuple[int, int]:
        """Encode one transfer; returns (driven word, invert bit) and
        accumulates the transition count including the invert line."""
        word &= self._mask
        plain = (word ^ self._bus).bit_count()
        inverted_word = word ^ self._mask
        inverted = (inverted_word ^ self._bus).bit_count()
        if inverted < plain:
            driven, invert = inverted_word, 1
            cost = inverted
        else:
            driven, invert = word, 0
            cost = plain
        cost += invert ^ self._invert_line
        self.transitions += cost
        self.transfers += 1
        self._bus = driven
        self._invert_line = invert
        return driven, invert

    def send_all(self, words: Iterable[int]) -> int:
        """Encode a word sequence; returns total transitions."""
        for word in words:
            self.send(word)
        return self.transitions

    @staticmethod
    def decode(driven: int, invert: int, width: int = 32) -> int:
        """Receiver side: undo the optional inversion."""
        mask = (1 << width) - 1
        return (driven ^ mask) if invert else (driven & mask)


def bus_invert_transitions(words: Sequence[int], width: int = 32) -> int:
    """Transitions (bus lines + invert line) for a fetch word stream.

    The first word is driven from an all-zero bus, mirroring how the
    other counters in this package treat sequence starts; relative
    comparisons are unaffected.
    """
    if not words:
        return 0
    coder = BusInvertCoder(width)
    coder.reset(initial_word=words[0])
    coder.send_all(words[1:])
    return coder.transitions


from repro.baselines.protocol import (  # noqa: E402  (adapter after legacy API)
    EncodedStream,
    Encoder,
    HardwareBudget,
    register_encoder,
    register_reference_counter,
)


@register_encoder
class BusInvertEncoder(Encoder):
    """:class:`BusInvertCoder` behind the common Encoder protocol.

    The invert line is packed into bit ``width`` of each driven value,
    so ``EncodedStream.transitions`` counts data-line and invert-line
    toggles together, exactly as :func:`bus_invert_transitions` does.
    """

    scheme = "bus-invert"
    deployable = False

    def __init__(self, width: int = 32) -> None:
        self.width = width
        self._mask = (1 << width) - 1

    def encode(self, words: Sequence[int]) -> EncodedStream:
        stream = EncodedStream(self.scheme, self.width + 1)
        if not words:
            return stream
        coder = BusInvertCoder(self.width)
        coder.reset(initial_word=words[0])
        stream.driven.append(words[0] & self._mask)
        for word in words[1:]:
            driven, invert = coder.send(word)
            stream.driven.append((invert << self.width) | driven)
        return stream

    def decode(self, stream: EncodedStream) -> list[int]:
        out = []
        for packed in stream.driven:
            invert = (packed >> self.width) & 1
            out.append(BusInvertCoder.decode(packed & self._mask, invert, self.width))
        return out

    def budget(self) -> HardwareBudget:
        return HardwareBudget(table_bits=0, extra_lines=1, stateful=True)


@register_reference_counter("bus-invert")
def _bus_invert_reference(encoder: Encoder, words: Sequence[int]) -> int:
    return bus_invert_transitions(list(words), encoder.width)
