"""Name -> builder registry for the six paper benchmarks."""

from __future__ import annotations

from typing import Callable

from repro.workloads.common import Workload

#: Benchmark order as printed in Figure 6.
BENCHMARK_ORDER = ("mmul", "sor", "ej", "fft", "tri", "lu")

#: Extended workloads beyond the paper's six (same DSP/numerical
#: domain; useful for wider studies and as public-API examples).
EXTENDED_WORKLOADS = ("fir", "iir", "conv2d")


def _builders() -> dict[str, Callable[..., Workload]]:
    from repro.workloads import conv2d, ej, fft, fir, iir, lu, mmul, sor, tri

    return {
        "mmul": mmul.build,
        "sor": sor.build,
        "ej": ej.build,
        "fft": fft.build,
        "tri": tri.build,
        "lu": lu.build,
        "fir": fir.build,
        "iir": iir.build,
        "conv2d": conv2d.build,
    }


class _LazyBuilders(dict):
    """Defer workload imports until first access (keeps `import
    repro.workloads` cheap and avoids import cycles)."""

    def __missing__(self, key):
        self.update(_builders())
        if key not in self:
            raise KeyError(
                f"unknown workload {key!r}; available: "
                f"{BENCHMARK_ORDER + EXTENDED_WORKLOADS}"
            )
        return self[key]

    def keys(self):  # pragma: no cover - convenience
        self.update(_builders())
        return super().keys()


WORKLOAD_BUILDERS: dict[str, Callable[..., Workload]] = _LazyBuilders()


def build_workload(name: str, **params) -> Workload:
    """Build a benchmark by its Figure-6 name."""
    return WORKLOAD_BUILDERS[name](**params)
