"""Tests for fetch-trace persistence."""

import pytest

from repro.sim.cpu import run_program
from repro.sim.trace_io import (
    dump_trace,
    load_trace,
    load_trace_file,
    save_trace_file,
)
from repro.workloads.registry import build_workload


@pytest.fixture(scope="module")
def real_trace():
    workload = build_workload("lu", n=8)
    program = workload.assemble()
    cpu, trace = run_program(program)
    return program, trace


class TestRoundTrip:
    def test_real_trace(self, real_trace):
        program, trace = real_trace
        blob = dump_trace(trace, name="lu", text_base=program.text_base)
        header, loaded = load_trace(blob)
        assert loaded == trace
        assert header.name == "lu"
        assert header.text_base == program.text_base
        assert header.length == len(trace)

    def test_empty_trace(self):
        header, loaded = load_trace(dump_trace([]))
        assert loaded == []
        assert header.length == 0

    def test_compression_is_effective(self, real_trace):
        program, trace = real_trace
        blob = dump_trace(trace)
        # Sequential-heavy delta streams compress far below 4 B/fetch.
        assert len(blob) < len(trace)

    def test_file_roundtrip(self, tmp_path, real_trace):
        program, trace = real_trace
        path = tmp_path / "lu.trace"
        size = save_trace_file(path, trace, name="lu", text_base=program.text_base)
        assert path.stat().st_size == size
        header, loaded = load_trace_file(path)
        assert loaded == trace

    def test_analysis_equivalence(self, real_trace):
        # A reloaded trace drives the flow to identical results.
        from repro.pipeline.flow import EncodingFlow

        program, trace = real_trace
        header, loaded = load_trace(
            dump_trace(trace, text_base=program.text_base)
        )
        a = EncodingFlow(block_size=5).run(program, trace, "orig")
        b = EncodingFlow(block_size=5).run(program, loaded, "reloaded")
        assert a.baseline_transitions == b.baseline_transitions
        assert a.encoded_transitions == b.encoded_transitions


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            load_trace(b"XXXX" + b"\x00" * 16)

    def test_unaligned_address_rejected(self):
        with pytest.raises(ValueError, match="unaligned"):
            dump_trace([0x400001])

    def test_truncated_payload(self, real_trace):
        program, trace = real_trace
        blob = dump_trace(trace[:100])
        import json
        import struct
        import zlib

        # Re-wrap with a lying header length.
        (header_len,) = struct.unpack_from("<I", blob, 4)
        header = json.loads(blob[8 : 8 + header_len].decode())
        header["length"] = 999
        header_bytes = json.dumps(header).encode()
        forged = (
            blob[:4]
            + struct.pack("<I", len(header_bytes))
            + header_bytes
            + blob[8 + header_len :]
        )
        with pytest.raises(ValueError, match="corrupt"):
            load_trace(forged)

    def test_unsupported_version(self):
        import json
        import struct

        header = json.dumps({"version": 99, "name": "x", "text_base": 0, "length": 0}).encode()
        blob = b"RPTR" + struct.pack("<I", len(header)) + header + b""
        with pytest.raises(ValueError, match="version"):
            load_trace(blob)

    def test_negative_deltas_supported(self):
        # Loops jump backwards; deltas must be signed.
        trace = [0x400010, 0x400014, 0x400000, 0x400004]
        header, loaded = load_trace(dump_trace(trace))
        assert loaded == trace
