"""Code generation: minicc AST to repro assembly.

Deliberately naive, like an unoptimising C compiler:

* every variable access goes through memory (``la`` + load/store);
* expressions evaluate on a register stack (``$t0..$t9`` for ints,
  even ``$f2..$f28`` for doubles) with no reuse across statements;
* no strength reduction, no common-subexpression elimination, no
  induction variables — 2-D indexing really multiplies.

The point is methodological (see the package docstring): this code
style is closer to what the paper's SimpleScalar toolchain fetched,
so encoding results on minicc output calibrate the hand-assembly
numbers.

``opt_level=1`` adds one classic optimisation — scalar globals are
promoted to registers for the whole kernel (arrays cannot alias
scalars in this language, so the promotion is always sound) and
written back on exit — giving a third code-style data point between
-O0 and hand-written assembly.
"""

from __future__ import annotations

from repro.minicc.ast_nodes import (
    DOUBLE,
    INT,
    Assign,
    Binary,
    Block,
    Expr,
    FloatLit,
    For,
    If,
    IntLit,
    Kernel,
    Stmt,
    Unary,
    VarRef,
    While,
)

INT_POOL = tuple(f"$t{i}" for i in range(10))
FP_POOL = tuple(f"$f{i}" for i in range(2, 20, 2))

#: Registers used for scalar promotion at opt_level=1.
INT_PROMO = tuple(f"$s{i}" for i in range(8))
FP_PROMO = tuple(f"$f{i}" for i in range(20, 32, 2))

_CMP_INT = {"<", "<=", ">", ">=", "==", "!="}
_ARITH = {"+", "-", "*", "/", "%"}


class CompileError(ValueError):
    """Raised for semantic errors or resource exhaustion."""


class _RegPool:
    def __init__(self, names: tuple[str, ...], what: str):
        self._free = list(reversed(names))
        self._what = what

    def get(self) -> str:
        if not self._free:
            raise CompileError(
                f"expression too deep: out of {self._what} registers"
            )
        return self._free.pop()

    def put(self, name: str) -> None:
        self._free.append(name)


class CodeGenerator:
    """Generates the .text body and the constant pool for one kernel."""

    def __init__(self, kernel: Kernel, opt_level: int = 0):
        if opt_level not in (0, 1):
            raise CompileError(f"unsupported opt_level {opt_level}")
        self.kernel = kernel
        self.opt_level = opt_level
        self.lines: list[str] = []
        self.float_constants: dict[float, str] = {}
        self._label_counter = 0
        self.ints = _RegPool(INT_POOL, "integer")
        self.floats = _RegPool(FP_POOL, "floating-point")
        #: opt_level=1: scalar name -> dedicated register.
        self.promoted: dict[str, str] = {}
        if opt_level >= 1:
            int_regs = list(INT_PROMO)
            fp_regs = list(FP_PROMO)
            for decl in kernel.decls:
                if decl.dims:
                    continue
                pool = int_regs if decl.base_type == INT else fp_regs
                if pool:
                    self.promoted[decl.name] = pool.pop(0)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append(f"        {text}")

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"L{hint}{self._label_counter}"

    def float_const_label(self, value: float) -> str:
        label = self.float_constants.get(value)
        if label is None:
            label = f"FC{len(self.float_constants)}"
            self.float_constants[value] = label
        return label

    def decl_of(self, name: str):
        decl = self.kernel.decl_by_name.get(name)
        if decl is None:
            raise CompileError(f"undeclared variable {name!r}")
        return decl

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------

    def type_of(self, expr: Expr) -> str:
        if isinstance(expr, IntLit):
            return INT
        if isinstance(expr, FloatLit):
            return DOUBLE
        if isinstance(expr, VarRef):
            decl = self.decl_of(expr.name)
            if len(expr.indices) != len(decl.dims):
                raise CompileError(
                    f"{expr.name}: expected {len(decl.dims)} indices, "
                    f"got {len(expr.indices)}"
                )
            return decl.base_type
        if isinstance(expr, Unary):
            if expr.op == "!":
                return INT
            return self.type_of(expr.operand)
        if isinstance(expr, Binary):
            if expr.op in _CMP_INT or expr.op in ("&&", "||"):
                return INT
            left = self.type_of(expr.left)
            right = self.type_of(expr.right)
            if expr.op == "%":
                if left != INT or right != INT:
                    raise CompileError("% requires integer operands")
                return INT
            return DOUBLE if DOUBLE in (left, right) else INT
        raise CompileError(f"cannot type {expr!r}")

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------

    def gen_expr(self, expr: Expr) -> tuple[str, str]:
        """Evaluate; returns (register, type).  Caller frees."""
        if isinstance(expr, IntLit):
            reg = self.ints.get()
            self.emit(f"li {reg}, {expr.value}")
            return reg, INT
        if isinstance(expr, FloatLit):
            freg = self.floats.get()
            addr = self.ints.get()
            self.emit(f"la {addr}, {self.float_const_label(expr.value)}")
            self.emit(f"l.d {freg}, 0({addr})")
            self.ints.put(addr)
            return freg, DOUBLE
        if isinstance(expr, VarRef):
            return self.gen_load(expr)
        if isinstance(expr, Unary):
            return self.gen_unary(expr)
        if isinstance(expr, Binary):
            return self.gen_binary(expr)
        raise CompileError(f"cannot generate {expr!r}")

    def to_double(self, reg: str, type_: str) -> str:
        """Promote an int register to a fresh double register."""
        if type_ == DOUBLE:
            return reg
        freg = self.floats.get()
        self.emit(f"mtc1 {reg}, {freg}")
        self.ints.put(reg)
        return freg

    def gen_address(self, ref: VarRef) -> str:
        """Address of a (possibly indexed) variable in an int reg."""
        decl = self.decl_of(ref.name)
        if len(ref.indices) != len(decl.dims):
            raise CompileError(
                f"{ref.name}: expected {len(decl.dims)} indices, "
                f"got {len(ref.indices)}"
            )
        base = self.ints.get()
        self.emit(f"la {base}, {ref.name}")
        if not ref.indices:
            return base
        index_reg, index_type = self.gen_expr(ref.indices[0])
        if index_type != INT:
            raise CompileError(f"{ref.name}: indices must be integers")
        if len(ref.indices) == 2:
            cols = decl.dims[1]
            col_reg, col_type = self.gen_expr(ref.indices[1])
            if col_type != INT:
                raise CompileError(f"{ref.name}: indices must be integers")
            scale = self.ints.get()
            self.emit(f"li {scale}, {cols}")
            self.emit(f"mul {index_reg}, {index_reg}, {scale}")
            self.emit(f"addu {index_reg}, {index_reg}, {col_reg}")
            self.ints.put(scale)
            self.ints.put(col_reg)
        shift = 2 if decl.element_size == 4 else 3
        self.emit(f"sll {index_reg}, {index_reg}, {shift}")
        self.emit(f"addu {base}, {base}, {index_reg}")
        self.ints.put(index_reg)
        return base

    def gen_load(self, ref: VarRef) -> tuple[str, str]:
        decl = self.decl_of(ref.name)
        home = self.promoted.get(ref.name)
        if home is not None and not ref.indices:
            if decl.base_type == INT:
                reg = self.ints.get()
                self.emit(f"move {reg}, {home}")
                return reg, INT
            freg = self.floats.get()
            self.emit(f"mov.d {freg}, {home}")
            return freg, DOUBLE
        addr = self.gen_address(ref)
        if decl.base_type == INT:
            reg = self.ints.get()
            self.emit(f"lw {reg}, 0({addr})")
            self.ints.put(addr)
            return reg, INT
        freg = self.floats.get()
        self.emit(f"l.d {freg}, 0({addr})")
        self.ints.put(addr)
        return freg, DOUBLE

    def gen_unary(self, expr: Unary) -> tuple[str, str]:
        reg, type_ = self.gen_expr(expr.operand)
        if expr.op == "-":
            if type_ == INT:
                self.emit(f"subu {reg}, $zero, {reg}")
            else:
                self.emit(f"neg.d {reg}, {reg}")
            return reg, type_
        if expr.op == "!":
            if type_ != INT:
                raise CompileError("! requires an integer operand")
            self.emit(f"sltiu {reg}, {reg}, 1")
            return reg, INT
        raise CompileError(f"unknown unary operator {expr.op!r}")

    def gen_binary(self, expr: Binary) -> tuple[str, str]:
        op = expr.op
        if op in ("&&", "||"):
            return self.gen_logical(expr)
        left_type = self.type_of(expr.left)
        right_type = self.type_of(expr.right)
        use_double = DOUBLE in (left_type, right_type)
        if op == "%" and use_double:
            raise CompileError("% requires integer operands")
        left_reg, lt = self.gen_expr(expr.left)
        right_reg, rt = self.gen_expr(expr.right)
        if use_double:
            left_reg = self.to_double(left_reg, lt)
            right_reg = self.to_double(right_reg, rt)
            if op in _ARITH:
                mnemonic = {"+": "add.d", "-": "sub.d", "*": "mul.d", "/": "div.d"}[op]
                self.emit(f"{mnemonic} {left_reg}, {left_reg}, {right_reg}")
                self.floats.put(right_reg)
                return left_reg, DOUBLE
            return self.gen_double_compare(op, left_reg, right_reg)
        # Integer path.
        if op in _ARITH:
            mnemonic = {
                "+": "addu",
                "-": "subu",
                "*": "mul",
                "/": "divq",
                "%": "rem",
            }[op]
            self.emit(f"{mnemonic} {left_reg}, {left_reg}, {right_reg}")
            self.ints.put(right_reg)
            return left_reg, INT
        return self.gen_int_compare(op, left_reg, right_reg)

    def gen_int_compare(self, op: str, a: str, b: str) -> tuple[str, str]:
        if op == "<":
            self.emit(f"slt {a}, {a}, {b}")
        elif op == ">":
            self.emit(f"slt {a}, {b}, {a}")
        elif op == "<=":
            self.emit(f"slt {a}, {b}, {a}")
            self.emit(f"xori {a}, {a}, 1")
        elif op == ">=":
            self.emit(f"slt {a}, {a}, {b}")
            self.emit(f"xori {a}, {a}, 1")
        elif op == "==":
            self.emit(f"xor {a}, {a}, {b}")
            self.emit(f"sltiu {a}, {a}, 1")
        elif op == "!=":
            self.emit(f"xor {a}, {a}, {b}")
            self.emit(f"sltu {a}, $zero, {a}")
        else:
            raise CompileError(f"unknown comparison {op!r}")
        self.ints.put(b)
        return a, INT

    def gen_double_compare(self, op: str, a: str, b: str) -> tuple[str, str]:
        compare, branch_true, swap = {
            "<": ("c.lt.d", "bc1t", False),
            ">": ("c.lt.d", "bc1t", True),
            "<=": ("c.le.d", "bc1t", False),
            ">=": ("c.le.d", "bc1t", True),
            "==": ("c.eq.d", "bc1t", False),
            "!=": ("c.eq.d", "bc1f", False),
        }[op]
        if swap:
            a, b = b, a
        result = self.ints.get()
        label = self.new_label("fcmp")
        self.emit(f"{compare} {a}, {b}")
        self.emit(f"li {result}, 1")
        self.emit(f"{branch_true} {label}")
        self.emit(f"li {result}, 0")
        self.emit_label(label)
        self.floats.put(a)
        self.floats.put(b)
        return result, INT

    def gen_logical(self, expr: Binary) -> tuple[str, str]:
        left_reg, lt = self.gen_expr(expr.left)
        right_reg, rt = self.gen_expr(expr.right)
        if lt != INT or rt != INT:
            raise CompileError(f"{expr.op} requires integer operands")
        # Normalise to 0/1 then combine (no short-circuit; kernel
        # expressions are side-effect free).
        self.emit(f"sltu {left_reg}, $zero, {left_reg}")
        self.emit(f"sltu {right_reg}, $zero, {right_reg}")
        mnemonic = "and" if expr.op == "&&" else "or"
        self.emit(f"{mnemonic} {left_reg}, {left_reg}, {right_reg}")
        self.ints.put(right_reg)
        return left_reg, INT

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def gen_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            self.gen_assign(stmt)
        elif isinstance(stmt, Block):
            for inner in stmt.statements:
                self.gen_stmt(inner)
        elif isinstance(stmt, If):
            self.gen_if(stmt)
        elif isinstance(stmt, While):
            self.gen_while(stmt)
        elif isinstance(stmt, For):
            self.gen_for(stmt)
        else:
            raise CompileError(f"cannot generate statement {stmt!r}")

    def gen_assign(self, stmt: Assign) -> None:
        decl = self.decl_of(stmt.target.name)
        value_reg, value_type = self.gen_expr(stmt.value)
        if decl.base_type == DOUBLE and value_type == INT:
            value_reg = self.to_double(value_reg, INT)
            value_type = DOUBLE
        if decl.base_type == INT and value_type == DOUBLE:
            # Truncating demotion, like a C cast.
            trunc = self.floats.get()
            self.emit(f"cvt.w.d {trunc}, {value_reg}")
            int_reg = self.ints.get()
            self.emit(f"mfc1 {int_reg}, {trunc}")
            self.floats.put(trunc)
            self.floats.put(value_reg)
            value_reg, value_type = int_reg, INT
        home = self.promoted.get(stmt.target.name)
        if home is not None and not stmt.target.indices:
            if value_type == INT:
                self.emit(f"move {home}, {value_reg}")
                self.ints.put(value_reg)
            else:
                self.emit(f"mov.d {home}, {value_reg}")
                self.floats.put(value_reg)
            return
        addr = self.gen_address(stmt.target)
        if value_type == INT:
            self.emit(f"sw {value_reg}, 0({addr})")
            self.ints.put(value_reg)
        else:
            self.emit(f"s.d {value_reg}, 0({addr})")
            self.floats.put(value_reg)
        self.ints.put(addr)

    def _gen_condition_branch(self, condition: Expr, false_label: str) -> None:
        reg, type_ = self.gen_expr(condition)
        if type_ != INT:
            raise CompileError("conditions must be integer-valued")
        self.emit(f"beqz {reg}, {false_label}")
        self.ints.put(reg)

    def gen_if(self, stmt: If) -> None:
        else_label = self.new_label("else")
        end_label = self.new_label("endif")
        self._gen_condition_branch(stmt.condition, else_label)
        self.gen_stmt(stmt.then_body)
        if stmt.else_body is not None:
            self.emit(f"b {end_label}")
            self.emit_label(else_label)
            self.gen_stmt(stmt.else_body)
            self.emit_label(end_label)
        else:
            self.emit_label(else_label)

    def gen_while(self, stmt: While) -> None:
        top = self.new_label("while")
        exit_label = self.new_label("endwhile")
        self.emit_label(top)
        self._gen_condition_branch(stmt.condition, exit_label)
        self.gen_stmt(stmt.body)
        self.emit(f"b {top}")
        self.emit_label(exit_label)

    def gen_for(self, stmt: For) -> None:
        top = self.new_label("for")
        exit_label = self.new_label("endfor")
        self.gen_assign(stmt.init)
        self.emit_label(top)
        self._gen_condition_branch(stmt.condition, exit_label)
        self.gen_stmt(stmt.body)
        self.gen_assign(stmt.step)
        self.emit(f"b {top}")
        self.emit_label(exit_label)

    # ------------------------------------------------------------------

    def generate(self) -> None:
        # opt_level=1 prologue: load promoted scalars into their homes
        # (initial data may be non-zero).
        for name, home in self.promoted.items():
            decl = self.kernel.decl_by_name[name]
            addr = self.ints.get()
            self.emit(f"la {addr}, {name}")
            if decl.base_type == INT:
                self.emit(f"lw {home}, 0({addr})")
            else:
                self.emit(f"l.d {home}, 0({addr})")
            self.ints.put(addr)
        for stmt in self.kernel.body:
            self.gen_stmt(stmt)
        # Epilogue: write promoted scalars back so results are
        # observable in memory.
        for name, home in self.promoted.items():
            decl = self.kernel.decl_by_name[name]
            addr = self.ints.get()
            self.emit(f"la {addr}, {name}")
            if decl.base_type == INT:
                self.emit(f"sw {home}, 0({addr})")
            else:
                self.emit(f"s.d {home}, 0({addr})")
            self.ints.put(addr)
        self.emit("li $v0, 10")
        self.emit("syscall")
