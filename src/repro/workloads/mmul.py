"""Matrix multiplication (``mmul``).

The paper runs 100x100; the default here is 24x24 so the pure-Python
simulator finishes in about a second (the transition percentages
depend on the loop code, not the matrix size — see DESIGN.md).
Double-precision, classic i/j/k triple loop with a k-innermost dot
product, as a compiler would emit for ``C[i][j] += A[i][k]*B[k][j]``.
"""

from __future__ import annotations

from repro.workloads.common import (
    Workload,
    assert_close,
    format_doubles,
    pseudo_values,
    read_doubles,
)

DEFAULT_N = 24


def _reference(a: list[float], b: list[float], n: int) -> list[float]:
    c = [0.0] * (n * n)
    for i in range(n):
        for j in range(n):
            total = 0.0
            for k in range(n):
                total += a[i * n + k] * b[k * n + j]
            c[i * n + j] = total
    return c


def build(n: int = DEFAULT_N) -> Workload:
    """Build the mmul workload for ``n`` x ``n`` matrices."""
    if n < 1:
        raise ValueError(f"matrix size must be positive, got {n}")
    a = pseudo_values(n * n, seed=1)
    b = pseudo_values(n * n, seed=2)
    expected = _reference(a, b, n)

    source = f"""
# mmul: C = A * B, {n}x{n} doubles, i/j/k loops
        .data
A:
{format_doubles(a)}
B:
{format_doubles(b)}
C:
        .space {8 * n * n}
        .text
main:
        li    $s0, {n}          # N
        sll   $s4, $s0, 3       # row stride in bytes (8*N)
        la    $s5, A
        la    $s6, B
        la    $s7, C
        li    $s1, 0            # i
iloop:
        li    $s2, 0            # j
jloop:
        mul   $t5, $s1, $s0     # i*N
        sll   $t5, $t5, 3
        addu  $t3, $s5, $t5     # &A[i][0]
        sll   $t6, $s2, 3
        addu  $t4, $s6, $t6     # &B[0][j]
        mtc1  $zero, $f4        # sum = 0.0
        li    $s3, 0            # k
kloop:
        l.d   $f6, 0($t3)       # A[i][k]
        l.d   $f8, 0($t4)       # B[k][j]
        mul.d $f10, $f6, $f8
        add.d $f4, $f4, $f10
        addiu $t3, $t3, 8
        addu  $t4, $t4, $s4
        addiu $s3, $s3, 1
        bne   $s3, $s0, kloop
        mul   $t5, $s1, $s0     # C[i][j] = sum
        addu  $t5, $t5, $s2
        sll   $t5, $t5, 3
        addu  $t5, $s7, $t5
        s.d   $f4, 0($t5)
        addiu $s2, $s2, 1
        bne   $s2, $s0, jloop
        addiu $s1, $s1, 1
        bne   $s1, $s0, iloop
        li    $v0, 10
        syscall
"""

    def verify(cpu) -> None:
        measured = read_doubles(cpu, "C", n * n)
        assert_close(measured, expected, what="mmul C")

    return Workload(
        name="mmul",
        description=f"matrix multiplication, {n}x{n} doubles (paper: 100x100)",
        source=source,
        params={"n": n},
        verify=verify,
    )
