"""Optimal code-word and transformation search for a single block.

This implements the Section 5.1 construction: given a block word
``X`` (a short bit stream), find a code word ``X~`` with as few
transitions as possible together with a transformation ``tau`` such
that the decoder can restore ``X`` bit-serially via
``x_n = tau(x~_n, x_{n-1})``.

Two problem variants exist:

* **Anchored** (standalone block, the Figure 2/3/4 setting): the first
  stored bit equals the first original bit, ``x~_0 = x_0`` — the
  decoder passes the block's first bit through unchanged.
* **Overlap-constrained** (Section 6): the block's first position is
  the one-bit overlap with the previous block, whose *stored* value was
  already fixed by the previous block's encoding; the anchor equation
  is dropped and the code-word search is restricted to code words whose
  first bit equals that fixed value.  The decoder knows the original
  overlap bit (it decoded it an instant earlier), so the history chain
  is unbroken.

For each candidate transformation the feasible stored bits per
position follow from :meth:`BoolFunc.solve_x`; a tiny dynamic program
then picks free bits to minimise transitions.  The module also carries
:func:`solve_anchored_by_enumeration`, a direct implementation of the
paper's own search order (try code words by increasing transition
count, test mappability) used to cross-validate the DP.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from repro.core.bitstream import count_transitions, validate_bits
from repro.core.transformations import (
    ALL_TRANSFORMATIONS,
    OPTIMAL_SET,
    Transformation,
)
from repro.obs import OBS

_INF = 1 << 30


def infeasible_block_error(word: Sequence[int]) -> RuntimeError:
    """The error raised when no candidate transformation can express a
    block word.  Shared with the compiled fast path so both report
    infeasible words identically."""
    return RuntimeError(
        f"no transformation in the candidate set can express block "
        f"{list(word)} (set too small — include identity and ~x)"
    )


@dataclass(frozen=True)
class BlockSolution:
    """Result of encoding one block word.

    Attributes
    ----------
    word:
        Original bits, time order (``word[0]`` fetched first).
    code:
        Stored bits, time order, same length as ``word``.
    transformation:
        The decode transformation assigned to this block.
    original_transitions:
        Transitions within ``word`` (the paper's ``T_x`` column).
    encoded_transitions:
        Transitions within ``code`` (the paper's ``T_x~`` column).
    """

    word: tuple[int, ...]
    code: tuple[int, ...]
    transformation: Transformation
    original_transitions: int
    encoded_transitions: int

    @property
    def reduction(self) -> int:
        return self.original_transitions - self.encoded_transitions


def _decode_with(
    transformation: Transformation,
    code: Sequence[int],
    first_is_anchor: bool,
    history_before: int | None,
) -> list[int] | None:
    """Decode ``code`` under the solver's protocol; ``None`` if the
    protocol cannot start (no history for a non-anchored block)."""
    decoded: list[int] = []
    if first_is_anchor:
        decoded.append(code[0])
    else:
        if history_before is None:
            return None
        decoded.append(history_before)
    for i in range(1, len(code)):
        decoded.append(transformation(code[i], decoded[i - 1]))
    return decoded


class BlockSolver:
    """Search engine for optimal per-block encodings.

    Parameters
    ----------
    transformations:
        The candidate transformation set.  Defaults to the paper's
        optimal 8-set; pass :data:`ALL_TRANSFORMATIONS` to search the
        full 16-function space (used to verify Section 5.2).
    """

    def __init__(
        self, transformations: Sequence[Transformation] = OPTIMAL_SET
    ) -> None:
        if not transformations:
            raise ValueError("transformation set must not be empty")
        self.transformations = tuple(transformations)

    # ------------------------------------------------------------------
    # Per-transformation feasibility and cost
    # ------------------------------------------------------------------

    def _allowed_bits(
        self,
        word: Sequence[int],
        transformation: Transformation,
        fixed_first: int | None,
    ) -> list[tuple[int, ...]] | None:
        """Feasible stored bits per position, or ``None`` if infeasible.

        ``fixed_first is None`` selects the anchored variant (first
        stored bit forced to ``word[0]``); otherwise the first stored
        bit is forced to ``fixed_first`` and the anchor equation is
        dropped.
        """
        first = word[0] if fixed_first is None else fixed_first
        allowed: list[tuple[int, ...]] = [(first,)]
        for i in range(1, len(word)):
            options = transformation.func.solve_x(word[i], word[i - 1])
            if not options:
                return None
            allowed.append(options)
        return allowed

    @staticmethod
    def _min_transition_fill(
        allowed: list[tuple[int, ...]],
    ) -> tuple[int, list[int]]:
        """Choose one bit per position minimising transitions (DP)."""
        cost = {bit: 0 if bit in allowed[0] else _INF for bit in (0, 1)}
        choice: list[dict[int, int]] = []
        for options in allowed[1:]:
            new_cost = {0: _INF, 1: _INF}
            back: dict[int, int] = {}
            for bit in options:
                best_prev, best = 0, _INF
                for prev in (0, 1):
                    candidate = cost[prev] + (prev != bit)
                    if candidate < best:
                        best, best_prev = candidate, prev
                new_cost[bit] = best
                back[bit] = best_prev
            cost = new_cost
            choice.append(back)
        # Prefer the lower final bit on ties for determinism.
        final_bit = 0 if cost[0] <= cost[1] else 1
        total = cost[final_bit]
        bits = [final_bit]
        for back in reversed(choice):
            bits.append(back[bits[-1]])
        bits.reverse()
        return total, bits

    def best_for_transformation(
        self,
        word: Sequence[int],
        transformation: Transformation,
        fixed_first: int | None = None,
    ) -> tuple[int, list[int]] | None:
        """Minimal encoded transitions and a witnessing code word for
        one transformation, or ``None`` if the block word cannot be
        expressed under it."""
        allowed = self._allowed_bits(word, transformation, fixed_first)
        if allowed is None:
            return None
        return self._min_transition_fill(allowed)

    def best_by_final_bit(
        self,
        word: Sequence[int],
        transformation: Transformation,
        fixed_first: int | None = None,
    ) -> dict[int, tuple[int, tuple[int, ...]]] | None:
        """Like :meth:`best_for_transformation`, but resolved per final
        stored bit: ``{final_bit: (cost, code)}``.

        The chained-stream dynamic program needs this because a block's
        last stored bit is the next block's inherited overlap bit.
        Entries exist only for reachable final bits; ``None`` means the
        transformation cannot express the block word at all.
        """
        allowed = self._allowed_bits(word, transformation, fixed_first)
        if allowed is None:
            return None
        cost = {bit: 0 if bit in allowed[0] else _INF for bit in (0, 1)}
        paths: dict[int, list[int]] = {
            bit: [bit] for bit in (0, 1) if cost[bit] < _INF
        }
        for options in allowed[1:]:
            new_cost = {0: _INF, 1: _INF}
            new_paths: dict[int, list[int]] = {}
            for bit in options:
                best_prev, best = None, _INF
                for prev in (0, 1):
                    if prev not in paths:
                        continue
                    candidate = cost[prev] + (prev != bit)
                    if candidate < best:
                        best, best_prev = candidate, prev
                if best_prev is None:
                    continue
                new_cost[bit] = best
                new_paths[bit] = paths[best_prev] + [bit]
            cost, paths = new_cost, new_paths
        return {
            bit: (cost[bit], tuple(path)) for bit, path in paths.items()
        }

    # ------------------------------------------------------------------
    # Public solve entry points
    # ------------------------------------------------------------------

    def solve_anchored(self, word: Sequence[int]) -> BlockSolution:
        """Optimal encoding of a standalone block (Section 5.1).

        Always succeeds: the identity transformation maps any word to
        itself, so the result is never worse than the original.
        """
        word = validate_bits(word)
        if not word:
            raise ValueError("block word must not be empty")
        return self._solve(word, fixed_first=None)

    def solve_constrained(
        self, word: Sequence[int], fixed_first_code_bit: int
    ) -> BlockSolution:
        """Optimal encoding of an overlapped block (Section 6).

        ``word[0]`` is the original value of the overlap bit (already
        decoded by the previous block); ``fixed_first_code_bit`` is its
        stored value chosen by the previous block.  Always succeeds:
        with the anchor equation dropped, the history transformations
        ``y`` / ``~y`` reproduce ``word[i]`` whenever it is a pure
        function of its predecessor, and in the worst case either
        identity (if the stored and original overlap bits agree) or a
        free-``x`` transformation covers the block.
        """
        word = validate_bits(word)
        if not word:
            raise ValueError("block word must not be empty")
        if fixed_first_code_bit not in (0, 1):
            raise ValueError("fixed_first_code_bit must be 0 or 1")
        solution = self._solve(word, fixed_first=fixed_first_code_bit)
        return solution

    def _solve(self, word: list[int], fixed_first: int | None) -> BlockSolution:
        if OBS.enabled:
            OBS.registry.counter(
                "codec.reference_blocks_solved",
                "block words solved by the reference BlockSolver "
                "(codebook compilation or --reference runs)",
                variant="anchored" if fixed_first is None else "constrained",
            ).inc()
        best: BlockSolution | None = None
        for transformation in self.transformations:
            result = self.best_for_transformation(word, transformation, fixed_first)
            if result is None:
                continue
            transitions, code = result
            if best is None or transitions < best.encoded_transitions:
                best = BlockSolution(
                    word=tuple(word),
                    code=tuple(code),
                    transformation=transformation,
                    original_transitions=count_transitions(word),
                    encoded_transitions=transitions,
                )
        if best is None:
            raise infeasible_block_error(word)
        return best

    def optimal_achievers(self, word: Sequence[int]) -> list[Transformation]:
        """Every transformation attaining the anchored optimum for
        ``word`` (used by the Section 5.2 minimal-set search)."""
        word = validate_bits(word)
        results = {}
        for transformation in self.transformations:
            result = self.best_for_transformation(word, transformation, None)
            if result is not None:
                results[transformation] = result[0]
        optimum = min(results.values())
        return [t for t, cost in results.items() if cost == optimum]

    def verify(self, solution: BlockSolution, fixed_first: bool = False) -> bool:
        """Check that decoding ``solution.code`` restores the word."""
        decoded = _decode_with(
            solution.transformation,
            solution.code,
            first_is_anchor=not fixed_first,
            history_before=solution.word[0] if fixed_first else None,
        )
        return decoded == list(solution.word)


def solve_anchored_by_enumeration(
    word: Sequence[int],
    transformations: Sequence[Transformation] = ALL_TRANSFORMATIONS,
) -> BlockSolution:
    """The paper's own search procedure (Section 5.1): enumerate code
    words in order of increasing transition count; for each, test
    whether some transformation maps it back to ``word``.

    Exponential in the block size — used only to cross-validate
    :class:`BlockSolver` in the test suite.
    """
    word = validate_bits(word)
    size = len(word)
    candidates = sorted(
        itertools.product((0, 1), repeat=size),
        key=lambda code: (count_transitions(code), code),
    )
    for code in candidates:
        if code[0] != word[0]:  # anchor equation x~_0 = x_0
            continue
        for transformation in transformations:
            decoded = _decode_with(transformation, code, True, None)
            if decoded == word:
                return BlockSolution(
                    word=tuple(word),
                    code=code,
                    transformation=transformation,
                    original_transitions=count_transitions(word),
                    encoded_transitions=count_transitions(code),
                )
    raise AssertionError("unreachable: identity always maps a word to itself")
