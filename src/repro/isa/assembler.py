"""Two-pass assembler for the MIPS-like ISA.

Supports the classic directive set (``.text``, ``.data``, ``.word``,
``.half``, ``.byte``, ``.double``, ``.float``, ``.space``, ``.align``,
``.asciiz``, ``.globl``) and the usual pseudo-instructions (``li``,
``la``, ``move``, ``nop``, ``b``, ``beqz``/``bnez``, ``blt``/``bge``/
``bgt``/``ble``, ``mul``/``divq``/``rem``, ``neg``, ``not``, ``l.d``/
``s.d``).  Pseudo-instructions expand during pass 1 (so sizes are
known) and labels resolve during pass 2.

The default memory layout mirrors SPIM/SimpleScalar conventions:
text at ``0x0040_0000``, data at ``0x1000_0000``, stack top just below
``0x8000_0000``.
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass

from repro.isa.instruction import Instruction, encode_fields
from repro.isa.opcodes import SPECS_BY_NAME
from repro.isa.registers import AT, ZERO, freg_num, is_freg, reg_num

TEXT_BASE = 0x00400000
DATA_BASE = 0x10000000
STACK_TOP = 0x7FFFEFFC

_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")


class AssemblerError(ValueError):
    """An assembly-time error, annotated with the source line."""

    def __init__(self, message: str, line_no: int | None = None, line: str = ""):
        location = f" (line {line_no}: {line.strip()!r})" if line_no else ""
        super().__init__(message + location)
        self.line_no = line_no


@dataclass
class Program:
    """An assembled program image."""

    text_base: int
    words: list[int]
    instructions: list[Instruction]
    source_map: list[str]  # one source string per instruction
    labels: dict[str, int]
    data_base: int
    data_image: bytearray
    entry: int

    @property
    def text_end(self) -> int:
        return self.text_base + 4 * len(self.words)

    def address_of(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise KeyError(f"unknown label {label!r}") from None

    def index_of(self, address: int) -> int:
        """Instruction index for a text address."""
        offset = address - self.text_base
        if offset < 0 or offset % 4 or offset // 4 >= len(self.words):
            raise ValueError(f"address {address:#010x} is not in .text")
        return offset // 4

    def word_at(self, address: int) -> int:
        return self.words[self.index_of(address)]

    def instruction_at(self, address: int) -> Instruction:
        return self.instructions[self.index_of(address)]


# ---------------------------------------------------------------------------
# Operand representation after parsing
# ---------------------------------------------------------------------------
# ("reg", n) ("freg", n) ("imm", v) ("label", name)
# ("mem", offset:int|("label",name), base_reg:int)
# ("hi", name|int) ("lo", name|int)


def _parse_number(token: str) -> int | None:
    try:
        return int(token, 0)
    except ValueError:
        return None


def _parse_operand(token: str, line_no: int, line: str):
    token = token.strip()
    if not token:
        raise AssemblerError("empty operand", line_no, line)
    mem = re.match(r"^([^()]*)\(\s*(\$\w+)\s*\)$", token)
    if mem:
        offset_text = mem.group(1).strip() or "0"
        offset = _parse_number(offset_text)
        if offset is None:
            if not _LABEL_RE.match(offset_text):
                raise AssemblerError(
                    f"bad memory offset {offset_text!r}", line_no, line
                )
            offset = ("label", offset_text)
        try:
            base = reg_num(mem.group(2))
        except ValueError as exc:
            raise AssemblerError(str(exc), line_no, line) from None
        return ("mem", offset, base)
    if token.startswith("$"):
        if is_freg(token):
            return ("freg", freg_num(token))
        try:
            return ("reg", reg_num(token))
        except ValueError as exc:
            raise AssemblerError(str(exc), line_no, line) from None
    number = _parse_number(token)
    if number is not None:
        return ("imm", number)
    if _LABEL_RE.match(token):
        return ("label", token)
    raise AssemblerError(f"cannot parse operand {token!r}", line_no, line)


def _want(kind: str, operand, line_no: int, line: str) -> int:
    if operand[0] != kind:
        raise AssemblerError(
            f"expected {kind} operand, got {operand[0]} {operand[1:]!r}",
            line_no,
            line,
        )
    return operand[1]


@dataclass
class _Slot:
    """One real (post-expansion) instruction awaiting label resolution."""

    address: int
    mnemonic: str
    operands: list
    line_no: int
    source: str


def _fits_s16(value: int) -> bool:
    return -0x8000 <= value <= 0x7FFF


def _fits_u16(value: int) -> bool:
    return 0 <= value <= 0xFFFF


class _Assembler:
    def __init__(self, source: str, text_base: int, data_base: int):
        self.source = source
        self.text_base = text_base
        self.data_base = data_base
        self.labels: dict[str, int] = {}
        self.slots: list[_Slot] = []
        self.data = bytearray()
        self.section = "text"
        self.text_pc = text_base
        # Data labels bind to the *next emitted datum* so that a label
        # immediately followed by an aligning directive (.double after
        # .word, say) lands on the aligned address, not the padding.
        self._pending_data_labels: list[str] = []

    # ------------------------------------------------------------------
    # Pass 1: layout, label collection and pseudo expansion
    # ------------------------------------------------------------------

    def pass1(self) -> None:
        for line_no, raw in enumerate(self.source.splitlines(), start=1):
            line = raw.split("#", 1)[0].rstrip()
            if not line.strip():
                continue
            while True:
                match = re.match(r"^\s*([A-Za-z_.$][A-Za-z0-9_.$]*)\s*:\s*(.*)$", line)
                if not match:
                    break
                self._define_label(match.group(1), line_no, raw)
                line = match.group(2)
            statement = line.strip()
            if not statement:
                continue
            if statement.startswith("."):
                self._directive(statement, line_no, raw)
            else:
                self._instruction(statement, line_no, raw)
        self._bind_pending_data_labels()

    def _define_label(self, name: str, line_no: int, line: str) -> None:
        if name in self.labels or name in self._pending_data_labels:
            raise AssemblerError(f"duplicate label {name!r}", line_no, line)
        if self.section == "text":
            self.labels[name] = self.text_pc
        else:
            self._pending_data_labels.append(name)

    def _bind_pending_data_labels(self) -> None:
        address = self.data_base + len(self.data)
        for name in self._pending_data_labels:
            self.labels[name] = address
        self._pending_data_labels.clear()

    def _align_data(self, alignment: int) -> None:
        while len(self.data) % alignment:
            self.data.append(0)

    def _directive(self, statement: str, line_no: int, line: str) -> None:
        parts = statement.split(None, 1)
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if name == ".text":
            self._bind_pending_data_labels()
            self.section = "text"
        elif name == ".data":
            self.section = "data"
        elif name == ".globl":
            pass
        elif name == ".align":
            power = _parse_number(rest.strip())
            if power is None or power < 0 or power > 16:
                raise AssemblerError(".align expects a small power", line_no, line)
            if self.section == "data":
                self._align_data(1 << power)
                self._bind_pending_data_labels()
        elif name == ".space":
            count = _parse_number(rest.strip())
            if count is None or count < 0:
                raise AssemblerError(".space expects a byte count", line_no, line)
            self._require_data(name, line_no, line)
            self._bind_pending_data_labels()
            self.data.extend(b"\x00" * count)
        elif name in (".word", ".half", ".byte"):
            self._require_data(name, line_no, line)
            size = {".word": 4, ".half": 2, ".byte": 1}[name]
            self._align_data(size)
            self._bind_pending_data_labels()
            for token in self._split_items(rest, line_no, line):
                value = _parse_number(token)
                if value is None:
                    raise AssemblerError(
                        f"{name} expects numbers, got {token!r}", line_no, line
                    )
                value &= (1 << (8 * size)) - 1
                self.data.extend(value.to_bytes(size, "little"))
        elif name in (".double", ".float"):
            self._require_data(name, line_no, line)
            size = 8 if name == ".double" else 4
            self._align_data(size)
            self._bind_pending_data_labels()
            for token in self._split_items(rest, line_no, line):
                try:
                    value = float(token)
                except ValueError:
                    raise AssemblerError(
                        f"{name} expects floats, got {token!r}", line_no, line
                    ) from None
                packer = "<d" if size == 8 else "<f"
                self.data.extend(struct.pack(packer, value))
        elif name == ".asciiz":
            self._require_data(name, line_no, line)
            text = rest.strip()
            if len(text) < 2 or text[0] != '"' or text[-1] != '"':
                raise AssemblerError('.asciiz expects a "string"', line_no, line)
            self._bind_pending_data_labels()
            body = text[1:-1].encode().decode("unicode_escape")
            self.data.extend(body.encode("latin-1") + b"\x00")
        else:
            raise AssemblerError(f"unknown directive {name}", line_no, line)

    def _require_data(self, directive: str, line_no: int, line: str) -> None:
        if self.section != "data":
            raise AssemblerError(
                f"{directive} is only valid in .data", line_no, line
            )

    @staticmethod
    def _split_items(rest: str, line_no: int, line: str) -> list[str]:
        items = [t.strip() for t in rest.split(",") if t.strip()]
        if not items:
            raise AssemblerError("directive expects operands", line_no, line)
        return items

    # ------------------------------------------------------------------

    def _instruction(self, statement: str, line_no: int, line: str) -> None:
        parts = statement.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = (
            [
                _parse_operand(t, line_no, line)
                for t in operand_text.split(",")
            ]
            if operand_text.strip()
            else []
        )
        if self.section != "text":
            raise AssemblerError(
                "instructions are only valid in .text", line_no, line
            )
        for expanded_mnemonic, expanded_ops in self._expand(
            mnemonic, operands, line_no, line
        ):
            self.slots.append(
                _Slot(self.text_pc, expanded_mnemonic, expanded_ops, line_no, line.strip())
            )
            self.text_pc += 4

    def _expand(self, mnemonic: str, ops: list, line_no: int, line: str):
        """Expand pseudo-instructions; real instructions pass through."""

        def arity(n: int) -> None:
            if len(ops) != n:
                raise AssemblerError(
                    f"{mnemonic} expects {n} operands, got {len(ops)}",
                    line_no,
                    line,
                )

        if mnemonic == "nop":
            arity(0)
            return [("sll", [("reg", ZERO), ("reg", ZERO), ("imm", 0)])]
        if mnemonic == "move":
            arity(2)
            return [("addu", [ops[0], ops[1], ("reg", ZERO)])]
        if mnemonic == "li":
            arity(2)
            value = _want("imm", ops[1], line_no, line)
            if _fits_s16(value):
                return [("addiu", [ops[0], ("reg", ZERO), ("imm", value)])]
            if _fits_u16(value):
                return [("ori", [ops[0], ("reg", ZERO), ("imm", value)])]
            value &= 0xFFFFFFFF
            return [
                ("lui", [ops[0], ("imm", value >> 16)]),
                ("ori", [ops[0], ops[0], ("imm", value & 0xFFFF)]),
            ]
        if mnemonic == "la":
            arity(2)
            if ops[1][0] == "imm":
                return self._expand("li", ops, line_no, line)
            label = _want("label", ops[1], line_no, line)
            return [
                ("lui", [ops[0], ("hi", label)]),
                ("ori", [ops[0], ops[0], ("lo", label)]),
            ]
        if mnemonic == "b":
            arity(1)
            return [("beq", [("reg", ZERO), ("reg", ZERO), ops[0]])]
        if mnemonic in ("beqz", "bnez"):
            arity(2)
            real = "beq" if mnemonic == "beqz" else "bne"
            return [(real, [ops[0], ("reg", ZERO), ops[1]])]
        if mnemonic in ("blt", "bge", "bgt", "ble"):
            arity(3)
            rs, rt = ops[0], ops[1]
            if mnemonic in ("bgt", "ble"):
                rs, rt = rt, rs
            branch = "bne" if mnemonic in ("blt", "bgt") else "beq"
            return [
                ("slt", [("reg", AT), rs, rt]),
                (branch, [("reg", AT), ("reg", ZERO), ops[2]]),
            ]
        if mnemonic == "mul":
            arity(3)
            return [
                ("mult", [ops[1], ops[2]]),
                ("mflo", [ops[0]]),
            ]
        if mnemonic == "divq":  # 3-operand quotient (avoids clash with div)
            arity(3)
            return [
                ("div", [ops[1], ops[2]]),
                ("mflo", [ops[0]]),
            ]
        if mnemonic == "rem":
            arity(3)
            return [
                ("div", [ops[1], ops[2]]),
                ("mfhi", [ops[0]]),
            ]
        if mnemonic == "neg":
            arity(2)
            return [("subu", [ops[0], ("reg", ZERO), ops[1]])]
        if mnemonic == "not":
            arity(2)
            return [("nor", [ops[0], ops[1], ("reg", ZERO)])]
        if mnemonic == "subi":
            arity(3)
            value = _want("imm", ops[2], line_no, line)
            return [("addiu", [ops[0], ops[1], ("imm", -value)])]
        if mnemonic == "l.d":
            return [("ldc1", ops)]
        if mnemonic == "s.d":
            return [("sdc1", ops)]
        if mnemonic not in SPECS_BY_NAME:
            raise AssemblerError(f"unknown instruction {mnemonic!r}", line_no, line)
        return [(mnemonic, ops)]

    # ------------------------------------------------------------------
    # Pass 2: label resolution and encoding
    # ------------------------------------------------------------------

    def _resolve_value(self, operand, slot: _Slot) -> int:
        kind = operand[0]
        if kind == "imm":
            return operand[1]
        if kind == "label":
            try:
                return self.labels[operand[1]]
            except KeyError:
                raise AssemblerError(
                    f"undefined label {operand[1]!r}", slot.line_no, slot.source
                ) from None
        raise AssemblerError(
            f"expected immediate or label, got {operand!r}",
            slot.line_no,
            slot.source,
        )

    def pass2(self) -> tuple[list[Instruction], list[int], list[str]]:
        instructions: list[Instruction] = []
        words: list[int] = []
        sources: list[str] = []
        for slot in self.slots:
            spec = SPECS_BY_NAME[slot.mnemonic]
            fields: dict[str, int] = {}
            if len(slot.operands) != len(spec.syntax):
                raise AssemblerError(
                    f"{slot.mnemonic} expects {len(spec.syntax)} operands, "
                    f"got {len(slot.operands)}",
                    slot.line_no,
                    slot.source,
                )
            for role, operand in zip(spec.syntax, slot.operands):
                if role in ("rd", "rs", "rt"):
                    fields[role] = _want("reg", operand, slot.line_no, slot.source)
                elif role in ("fd", "fs", "ft"):
                    fields[role] = _want("freg", operand, slot.line_no, slot.source)
                elif role == "shamt":
                    value = _want("imm", operand, slot.line_no, slot.source)
                    if not 0 <= value < 32:
                        raise AssemblerError(
                            f"shift amount {value} out of range",
                            slot.line_no,
                            slot.source,
                        )
                    fields["shamt"] = value
                elif role == "imm":
                    if operand[0] == "hi":
                        value = (self._resolve_hi_lo(operand, slot) >> 16) & 0xFFFF
                    elif operand[0] == "lo":
                        value = self._resolve_hi_lo(operand, slot) & 0xFFFF
                    else:
                        value = self._resolve_value(operand, slot)
                        if not -0x8000 <= value <= 0xFFFF:
                            raise AssemblerError(
                                f"immediate {value} does not fit in 16 bits",
                                slot.line_no,
                                slot.source,
                            )
                    fields["imm"] = value & 0xFFFF
                elif role == "mem":
                    if operand[0] != "mem":
                        raise AssemblerError(
                            f"expected offset(base), got {operand!r}",
                            slot.line_no,
                            slot.source,
                        )
                    offset = operand[1]
                    if isinstance(offset, tuple):
                        offset = self._resolve_value(offset, slot)
                    if not -0x8000 <= offset <= 0x7FFF:
                        raise AssemblerError(
                            f"memory offset {offset} does not fit in 16 bits",
                            slot.line_no,
                            slot.source,
                        )
                    fields["imm"] = offset & 0xFFFF
                    fields["rs"] = operand[2]
                elif role == "branch":
                    target = self._resolve_value(operand, slot)
                    delta = target - (slot.address + 4)
                    if delta % 4:
                        raise AssemblerError(
                            "branch target misaligned", slot.line_no, slot.source
                        )
                    offset = delta >> 2
                    if not -0x8000 <= offset <= 0x7FFF:
                        raise AssemblerError(
                            "branch target out of range", slot.line_no, slot.source
                        )
                    fields["imm"] = offset & 0xFFFF
                elif role == "target":
                    target = self._resolve_value(operand, slot)
                    if target % 4:
                        raise AssemblerError(
                            "jump target misaligned", slot.line_no, slot.source
                        )
                    fields["target"] = (target >> 2) & 0x3FFFFFF
                else:
                    raise AssertionError(f"unknown syntax role {role}")
            instruction = Instruction(spec, fields)
            instructions.append(instruction)
            words.append(encode_fields(spec, fields))
            sources.append(slot.source)
        return instructions, words, sources

    def _resolve_hi_lo(self, operand, slot: _Slot) -> int:
        ref = operand[1]
        if isinstance(ref, int):
            return ref
        try:
            return self.labels[ref]
        except KeyError:
            raise AssemblerError(
                f"undefined label {ref!r}", slot.line_no, slot.source
            ) from None


def assemble(
    source: str,
    text_base: int = TEXT_BASE,
    data_base: int = DATA_BASE,
) -> Program:
    """Assemble source text into a :class:`Program`."""
    worker = _Assembler(source, text_base, data_base)
    worker.pass1()
    instructions, words, sources = worker.pass2()
    entry = worker.labels.get("main", text_base)
    return Program(
        text_base=text_base,
        words=words,
        instructions=instructions,
        source_map=sources,
        labels=dict(worker.labels),
        data_base=data_base,
        data_image=worker.data,
        entry=entry,
    )
