"""JSONL-over-TCP transport: the thinnest wire that can carry a dict.

One request per line, one response per line, correlated by a client
sequence number (``_seq``) the server echoes back — correlation must
survive even a request whose ``job_id`` is the corrupted field.
Responses stream back in *completion* order, not submission order;
the client resolves each to the right waiter by ``_seq``.

The transport adds nothing to the job model: :meth:`ServeClient.submit`
returns exactly the result dict :meth:`EncodingServer.submit` produces
(minus the transport's own ``_seq``), and handles shed responses with
the same wait-and-resubmit backpressure the in-process batch helper
uses.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import ReproError


async def _handle_connection(server, reader, writer) -> None:
    """Per-connection pump: every line becomes a concurrent submit;
    responses are written under a lock as they complete."""
    write_lock = asyncio.Lock()
    inflight: set[asyncio.Task] = set()

    async def answer(seq, raw) -> None:
        result = await server.submit(raw)
        response = dict(result)
        response["_seq"] = seq
        async with write_lock:
            writer.write((json.dumps(response) + "\n").encode())
            await writer.drain()

    async def answer_control(seq, what) -> None:
        """Observability side-channel: answered by the server inline
        (no queue slot, no WAL entry) so a scrape works even when the
        job queue is saturated or the pool is broken."""
        if what == "metrics":
            response = {
                "_seq": seq,
                "control": "metrics",
                "openmetrics": server.openmetrics(),
            }
        elif what == "status":
            response = {
                "_seq": seq,
                "control": "status",
                "status": server.status(),
            }
        else:
            response = {
                "_seq": seq,
                "control": str(what),
                "error": f"unknown control request {what!r}",
            }
        async with write_lock:
            writer.write((json.dumps(response) + "\n").encode())
            await writer.drain()

    async def serve_http_get(line: bytes) -> None:
        """A plain HTTP/1.0 scrape (``curl``, Prometheus) on the same
        port: answer one GET and close the connection."""
        parts = line.decode("latin-1", "replace").split()
        path = parts[1] if len(parts) > 1 else "/"
        if path in ("/metrics", "/metrics/"):
            status_line = "HTTP/1.0 200 OK"
            body = server.openmetrics()
            content_type = (
                "application/openmetrics-text; version=1.0.0; charset=utf-8"
            )
        elif path in ("/status", "/status/"):
            status_line = "HTTP/1.0 200 OK"
            body = json.dumps(server.status(), indent=1) + "\n"
            content_type = "application/json"
        else:
            status_line = "HTTP/1.0 404 Not Found"
            body = "try /metrics or /status\n"
            content_type = "text/plain"
        payload = (
            f"{status_line}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body.encode())}\r\n"
            "Connection: close\r\n"
            "\r\n" + body
        )
        async with write_lock:
            writer.write(payload.encode())
            await writer.drain()

    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            if line.startswith(b"GET "):
                await serve_http_get(line)
                break
            try:
                raw = json.loads(line)
            except json.JSONDecodeError:
                # Not even JSON: let validation produce the malformed
                # result (and keep whatever correlation we can't have).
                raw = {"_undecodable": line.decode("utf-8", "replace")}
            seq = raw.get("_seq") if isinstance(raw, dict) else None
            if isinstance(raw, dict) and "_control" in raw:
                task = asyncio.ensure_future(
                    answer_control(seq, raw.get("_control"))
                )
                inflight.add(task)
                task.add_done_callback(inflight.discard)
                continue
            task = asyncio.ensure_future(answer(seq, raw))
            inflight.add(task)
            task.add_done_callback(inflight.discard)
        if inflight:
            await asyncio.gather(*inflight, return_exceptions=True)
    except asyncio.CancelledError:
        # Event-loop teardown cancelling an idle pump is a normal
        # shutdown, not an error worth a traceback.
        pass
    finally:
        for task in inflight:
            task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def start_tcp_server(
    server, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Expose an :class:`~repro.serve.server.EncodingServer` on TCP.

    ``port=0`` picks a free port; read it back from
    ``tcp.sockets[0].getsockname()[1]``."""

    async def handler(reader, writer):
        await _handle_connection(server, reader, writer)

    return await asyncio.start_server(handler, host=host, port=port)


class ServeClient:
    """One tenant's connection to a serve endpoint."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._seq = 0
        self._pump: asyncio.Task | None = None

    async def connect(self) -> "ServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._pump = asyncio.ensure_future(self._read_loop())
        return self

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = json.loads(line)
                except json.JSONDecodeError:
                    continue
                future = self._pending.pop(response.get("_seq"), None)
                if future is not None and not future.done():
                    response.pop("_seq", None)
                    future.set_result(response)
        finally:
            # Connection gone: fail every waiter instead of hanging.
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ReproError("serve connection closed mid-request")
                    )
            self._pending.clear()

    async def _roundtrip(self, request: dict) -> dict:
        if self._writer is None:
            raise ReproError("client not connected")
        self._seq += 1
        seq = self._seq
        wire = dict(request)
        wire["_seq"] = seq
        future = asyncio.get_running_loop().create_future()
        self._pending[seq] = future
        self._writer.write((json.dumps(wire) + "\n").encode())
        await self._writer.drain()
        return await future

    async def submit(
        self, request: dict, max_shed_retries: int = 200
    ) -> dict:
        """Submit one job; waits out shed responses (bounded) and
        returns the final result dict."""
        response = await self._roundtrip(request)
        for _ in range(max_shed_retries):
            if response.get("outcome") != "shed":
                return response
            await asyncio.sleep(response.get("retry_after_s", 0.05))
            response = await self._roundtrip(request)
        return response

    async def control(self, what: str = "status") -> dict:
        """Fetch a live observability view (``status`` or ``metrics``)
        over the job connection — what `repro top` polls."""
        return await self._roundtrip({"_control": what})

    async def close(self) -> None:
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except asyncio.CancelledError:
                pass
            self._pump = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
