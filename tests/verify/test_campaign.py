"""Campaign scheduling, determinism, and the aggregated report."""

import pytest

from repro.verify.campaign import (
    KIND_PATTERN,
    VerifyConfig,
    case_kind,
    case_seed_key,
    run_case,
    run_verify,
)

#: A small, fast configuration: one gated block size, serial.
SMALL = VerifyConfig(cases=20, seed=11, block_sizes=(4,))


class TestScheduling:
    def test_kind_pattern_mix(self):
        counts = {kind: KIND_PATTERN.count(kind) for kind in set(KIND_PATTERN)}
        assert counts == {
            "stream": 5,
            "program": 3,
            "tables": 2,
            "encoders": 2,
        }

    def test_case_kind_cycles(self):
        pattern_len = len(KIND_PATTERN)
        assert [case_kind(i) for i in range(pattern_len)] == list(KIND_PATTERN)
        assert case_kind(pattern_len) == case_kind(0)

    def test_seed_key_is_replayable_shape(self):
        assert case_seed_key(SMALL, 3) == "11:tables:3"


class TestRunCase:
    @pytest.mark.parametrize("case_id", [0, 1, 3])  # one of each kind
    def test_deterministic_and_self_describing(self, case_id):
        a = run_case(SMALL, case_id)
        b = run_case(SMALL, case_id)
        assert a == b
        assert a["kind"] == case_kind(case_id)
        assert a["seed_key"] == case_seed_key(SMALL, case_id)
        assert a["ok"] is True
        assert a["counterexample"] is None
        assert a["coverage"]  # every case contributes coverage

    def test_different_seed_different_input_same_verdict(self):
        other = VerifyConfig(cases=20, seed=12, block_sizes=(4,))
        a = run_case(SMALL, 0)
        b = run_case(other, 0)
        assert a["seed_key"] != b["seed_key"]
        assert a["ok"] and b["ok"]


class TestRunVerify:
    def test_small_campaign_is_green_and_gated_coverage_complete(self):
        report = run_verify(SMALL)
        assert report.mismatches == []
        assert report.counterexamples == []
        # The sweeps make the k=4 gate deterministically reachable.
        assert report.gate_problems == []
        assert report.check_ok
        assert report.coverage["codebook_entries"]["percent"] == 100.0
        assert report.coverage["tau_selectors"]["percent"] == 100.0

    def test_kind_counts_add_up(self):
        report = run_verify(SMALL)
        random_kinds = {"stream", "program", "tables", "encoders"}
        total_random = sum(
            report.kinds[kind]["run"]
            for kind in random_kinds & set(report.kinds)
        )
        assert total_random == SMALL.cases
        for sweep in ("sweep_codebook", "sweep_tau", "sweep_boundary"):
            assert report.kinds[sweep] == {"run": 1, "failed": 0}
        assert report.kinds["sweep_encoders"] == {"run": 1, "failed": 0}

    def test_no_sweeps_leaves_the_gate_unreachable(self):
        report = run_verify(
            VerifyConfig(cases=10, seed=11, block_sizes=(4,), sweeps=False)
        )
        assert report.mismatches == []
        assert report.gate_problems  # randomised cases alone can't prove it
        assert not report.check_ok

    def test_parallel_run_matches_serial(self):
        serial = run_verify(SMALL)
        parallel = run_verify(
            VerifyConfig(
                cases=20,
                seed=11,
                block_sizes=(4,),
                workers=2,
                chunk_size=5,
            )
        )
        assert parallel.mismatches == serial.mismatches == []
        assert parallel.kinds == serial.kinds
        assert parallel.coverage == serial.coverage
        assert parallel.check_ok
