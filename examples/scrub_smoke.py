"""CI resilience smoke: seeded upsets scrubbed with zero decode errors.

Encodes the fir workload, deploys its bundle to parity-armed tables,
then flips **one seeded-random bit in every TT row** (the soft-error
shower docs/robustness.md designs against).  A single scrubber sweep
must correct every row in place; the fetch decoder then replays the
whole trace and every decoded word must match the original program
bit-for-bit — zero decode errors, zero quarantined rows.

Exit status is the assertion: 0 on success, 1 with a diagnosis on any
miscorrection.  CI runs this before the kill/resume campaign check.

Run:  python examples/scrub_smoke.py [--seed N] [--block-size K]
"""

import argparse
import random
import sys

from repro.hw.fetch_decoder import FetchDecoder
from repro.hw.integrity import tt_row_bits, tt_row_data, tt_row_fields
from repro.hw.scrubber import TableScrubber
from repro.hw.tt import TTEntry
from repro.pipeline.bundle import EncodingBundle
from repro.pipeline.flow import EncodingFlow
from repro.sim.cpu import run_program
from repro.workloads.registry import build_workload


def _flip_one_bit_per_row(tt, rng) -> list[tuple[int, int]]:
    """Flip one random data bit in every stored TT row, bypassing the
    write path so the row's check word goes stale (a soft error)."""
    flips = []
    for index, entry in enumerate(tt.entries):
        width = len(entry.selectors)
        data = tt_row_data(entry.selectors, entry.end, entry.count)
        bit = rng.randrange(tt_row_bits(width))
        selectors, end, count = tt_row_fields(data ^ (1 << bit), width)
        tt.entries[index] = TTEntry(selectors=selectors, end=end, count=count)
        flips.append((index, bit))
    return flips


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--block-size", type=int, default=5)
    parser.add_argument("--workload", default="fir")
    args = parser.parse_args(argv)

    workload = build_workload(args.workload)
    program = workload.assemble()
    cpu, trace = run_program(program)
    if workload.verify is not None:
        workload.verify(cpu)
    result = EncodingFlow(block_size=args.block_size).run(
        program, trace, name=args.workload
    )
    bundle = EncodingBundle.from_flow_result(program, result)
    tt, bbit = bundle.build_tables(parity=True)
    print(
        f"{args.workload}: {len(tt.entries)} TT rows, "
        f"{len(bundle.bbit_entries)} BBIT rows, trace of "
        f"{len(trace)} fetches (seed {args.seed})"
    )

    flips = _flip_one_bit_per_row(tt, random.Random(args.seed))
    scrubber = TableScrubber(tt, bbit, bundle=bundle)
    report = scrubber.sweep()
    print(
        f"scrub: {report.rows_checked} rows checked, "
        f"{report.corrected} corrected, {report.quarantined} quarantined"
    )
    if report.corrected != len(flips):
        print(
            f"FAIL: {len(flips)} bits flipped but only "
            f"{report.corrected} rows corrected",
            file=sys.stderr,
        )
        return 1
    if tt.quarantined or bbit.quarantined:
        print("FAIL: single-bit upsets left quarantined rows", file=sys.stderr)
        return 1

    image = result.encoded_image
    base = program.text_base
    decoder = FetchDecoder(tt, bbit, args.block_size)
    decoded = decoder.decode_trace(
        list(trace), lambda pc: image[(pc - base) >> 2]
    )
    original = [program.words[(pc - base) >> 2] for pc in trace]
    errors = sum(1 for got, want in zip(decoded, original) if got != want)
    if errors:
        print(f"FAIL: {errors} decode errors after scrub", file=sys.stderr)
        return 1
    print(
        f"decode: {len(decoded)} fetches replayed, 0 errors — "
        "every upset corrected transparently"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
