"""Service-level chaos models for the encoding service.

The PR-2 fault models corrupt *deployed state* (tables, images,
fetch streams); these corrupt the *service* around the computation —
the failure modes a long-lived multi-tenant server actually meets:

==============  ======================================================
model           injection
==============  ======================================================
``kill``        the codec worker process executing the job dies with
                ``os._exit`` mid-case (first attempt only — a crash
                is transient, the retry must succeed)
``slow``        the worker stalls well past the job's deadline (the
                job is marked with a tight per-tenant deadline, so
                the outcome is a deterministic ``deadline_exceeded``)
``malformed``   the job request itself is corrupted before admission
                (wrong field type, unknown kind, missing workload);
                validation must reject it before any work is queued
==============  ======================================================

Injection is a pure function of ``(seed, tenant, job_id)``, so a
chaos campaign is exactly reproducible and — crucially for the
SIGKILL/resume gate — a *resumed* campaign regenerates the same chaos
plan for the jobs it still has to run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ReproError

#: Chaos model names accepted by ``repro serve --chaos``.
CHAOS_KINDS = ("kill", "slow", "malformed")

#: How long a ``slow`` worker stalls, and the tight deadline the job
#: is given so the stall deterministically exceeds it.  The margin is
#: wide (5x) so scheduler noise cannot flip the outcome.
SLOW_STALL_S = 2.0
SLOW_DEADLINE_S = 0.4


@dataclass(frozen=True)
class ChaosPlan:
    """What (if anything) chaos does to one job."""

    kind: str  # one of CHAOS_KINDS
    detail: str = ""


class ChaosPolicy:
    """Seeded per-job chaos assignment.

    Each job draws once from ``random.Random(f"{seed}:{tenant}:{job_id}")``;
    at most one model fires per job so taxonomies stay disjoint
    (a killed worker that is also past deadline would be ambiguous).
    """

    def __init__(
        self,
        seed: int,
        models: tuple[str, ...] = CHAOS_KINDS,
        kill_rate: float = 0.06,
        slow_rate: float = 0.04,
        malformed_rate: float = 0.05,
    ):
        unknown = [name for name in models if name not in CHAOS_KINDS]
        if unknown:
            raise ReproError(
                f"unknown chaos model(s): {', '.join(unknown)}; "
                f"available: {', '.join(CHAOS_KINDS)}"
            )
        self.seed = seed
        self.models = tuple(models)
        self.rates = {
            "kill": kill_rate if "kill" in models else 0.0,
            "slow": slow_rate if "slow" in models else 0.0,
            "malformed": malformed_rate if "malformed" in models else 0.0,
        }

    def plan_for(self, tenant: str, job_id: str) -> ChaosPlan | None:
        rng = random.Random(f"chaos:{self.seed}:{tenant}:{job_id}")
        draw = rng.random()
        threshold = 0.0
        for kind in CHAOS_KINDS:
            threshold += self.rates[kind]
            if draw < threshold:
                return ChaosPlan(kind=kind, detail=f"draw={draw:.4f}")
        return None

    def corrupt(self, request: dict, tenant: str, job_id: str) -> dict:
        """The ``malformed`` injection: break the request the way a
        buggy client would, deterministically per job."""
        rng = random.Random(f"corrupt:{self.seed}:{tenant}:{job_id}")
        broken = dict(request)
        mutation = rng.choice(
            ("unknown_kind", "bad_block_size", "missing_workload", "bad_tt")
        )
        if mutation == "unknown_kind":
            broken["kind"] = "frobnicate"
        elif mutation == "bad_block_size":
            broken["block_size"] = "five"
        elif mutation == "missing_workload":
            broken.pop("workload", None)
        else:
            broken["tt_capacity"] = -3
        broken["_chaos_mutation"] = mutation
        return broken


def parse_chaos_spec(spec: str | None) -> tuple[str, ...]:
    """``"kill,slow"`` -> ``("kill", "slow")``; validates names."""
    if not spec:
        return ()
    models = tuple(
        name.strip() for name in spec.split(",") if name.strip()
    )
    unknown = [name for name in models if name not in CHAOS_KINDS]
    if unknown:
        raise ReproError(
            f"unknown chaos model(s): {', '.join(unknown)}; "
            f"available: {', '.join(CHAOS_KINDS)}"
        )
    return models
