"""The differential verification campaign runner.

A run has two halves:

* **exhaustive sweeps** — per configured block size, every codebook
  entry against the reference solver (:func:`checks.sweep_codebook`),
  every τ selector's decode through all its layers
  (:func:`checks.sweep_tau`), and every boundary/tail class
  (:func:`checks.sweep_boundary`); plus one deterministic encoder-zoo
  sweep (:func:`checks.sweep_encoder_tables`) covering every
  registered backend's canonical streams, the memoryless optimality
  proof and the low-weight codeword-table invariants.  These are what
  make the coverage gate (100% codebook/τ for k=4..7, 100% encoder
  schemes) *deterministically* reachable — randomised inputs alone
  cannot promise exhaustion;
* **randomised cases** — ``cases`` seeded inputs scheduled over the
  four input families (streams with the configured bias sweep,
  synthetic instruction blocks, corrupted table states, and
  fetch-like word streams through the encoder zoo), each fully
  determined by ``random.Random(f"{seed}:{kind}:{case_id}")``.

Random cases fan out across a process pool in chunks (mirroring the
fault campaign's runner): chunk timeouts re-run serially, pool breaks
feed a :class:`repro.runtime.CircuitBreaker` that downgrades the rest
of the run to serial instead of failing it.  The pool initializer
re-arms any injected mutation so self-test divergences fire in every
worker, not just the parent.

Divergences never raise: each is shrunk
(:mod:`repro.verify.counterexample`) and recorded in the report.
"""

from __future__ import annotations

import random
import time
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import asdict, dataclass

from repro.obs import OBS
from repro.runtime import CircuitBreaker
from repro.verify import checks
from repro.verify.counterexample import (
    make_record,
    shrink_stream,
    shrink_words,
)
from repro.verify.coverage import CoverageTracker
from repro.verify.generators import (
    biased_stream,
    burst_stream,
    block_words,
    hot_word_stream,
    word_blocks,
)
from repro.verify.mutation import apply_mutation, applied_mutations
from repro.verify.report import VerifyReport

#: Twelve-case scheduling cycle: 5 stream, 3 program, 2 tables and
#: 2 encoder-zoo cases.
KIND_PATTERN = (
    "stream",
    "program",
    "stream",
    "tables",
    "encoders",
    "stream",
    "program",
    "stream",
    "tables",
    "stream",
    "program",
    "encoders",
)


@dataclass(frozen=True)
class VerifyConfig:
    """Everything that determines a campaign, and nothing that
    doesn't: two runs with equal configs generate identical inputs."""

    cases: int = 200
    seed: int = 7
    bias: tuple[float, ...] = (0.05, 0.25, 0.5, 0.75, 0.95)
    block_sizes: tuple[int, ...] = (2, 3, 4, 5, 6, 7)
    strategies: tuple[str, ...] = ("greedy", "optimal", "disjoint")
    min_stream_bits: int = 8
    max_stream_bits: int = 288
    min_block_words: int = 2
    max_block_words: int = 28
    sweeps: bool = True
    workers: int = 0
    chunk_size: int = 25
    chunk_timeout: float = 120.0
    breaker_threshold: int = 3
    mutation: str | None = None
    max_counterexamples: int = 25
    shrink_budget: int = 300

    def to_dict(self) -> dict:
        return asdict(self)


# ----------------------------------------------------------------------
# Case scheduling: pure functions of (config, case_id)
# ----------------------------------------------------------------------


def case_kind(case_id: int) -> str:
    return KIND_PATTERN[case_id % len(KIND_PATTERN)]


def case_seed_key(config: VerifyConfig, case_id: int) -> str:
    return f"{config.seed}:{case_kind(case_id)}:{case_id}"


def run_case(config: VerifyConfig, case_id: int) -> dict:
    """Generate and run one randomised differential case.

    The returned dict is picklable and self-describing: kind, seed
    key, parameters, coverage contribution, and — on divergence — a
    shrunk, replayable counterexample.
    """
    kind = case_kind(case_id)
    seed_key = case_seed_key(config, case_id)
    rng = random.Random(seed_key)
    block_size = config.block_sizes[case_id % len(config.block_sizes)]

    if kind == "stream":
        strategy = config.strategies[
            (case_id // len(config.block_sizes)) % len(config.strategies)
        ]
        bias = config.bias[case_id % len(config.bias)]
        length = rng.randint(config.min_stream_bits, config.max_stream_bits)
        if case_id % 5 == 0:
            stream = burst_stream(rng, length, flip=max(0.02, 1.0 - bias))
        else:
            stream = biased_stream(rng, length, bias)
        params = {"k": block_size, "strategy": strategy, "bias": bias}
        result = checks.check_stream(stream, block_size, strategy)
        input_data: list = stream
        if not result.ok:
            input_data = shrink_stream(
                stream,
                lambda bits: not checks.check_stream(
                    bits, block_size, strategy
                ).ok,
                budget=config.shrink_budget,
            )
    elif kind == "program":
        sparse = (None, 0.15, 0.85)[case_id % 3]
        words = block_words(
            rng,
            rng.randint(config.min_block_words, config.max_block_words),
            sparse=sparse,
        )
        params = {"k": block_size}
        result = checks.check_program(words, block_size)
        input_data = words
        if not result.ok:
            input_data = shrink_words(
                words,
                lambda ws: not checks.check_program(ws, block_size).ok,
                budget=config.shrink_budget,
            )
    elif kind == "encoders":
        alphabet = 2 + case_id % 7
        noise = (0.0, 0.1, 0.3)[case_id % 3]
        length = rng.randint(16, 160)
        words = hot_word_stream(rng, length, alphabet=alphabet, noise=noise)
        params = {"alphabet": alphabet, "noise": noise}
        result = checks.check_encoders(words)
        input_data = words
        if not result.ok:
            input_data = shrink_words(
                words,
                lambda ws: not checks.check_encoders(ws).ok,
                budget=config.shrink_budget,
            )
    else:  # tables
        fault = checks.TABLE_FAULTS[(case_id // 5) % len(checks.TABLE_FAULTS)]
        blocks = word_blocks(
            rng, 1 + case_id % 3, min_words=2, max_words=12
        )
        flip_seed = f"{seed_key}:flip"
        params = {"k": block_size, "fault": fault, "flip_seed": flip_seed}
        result = checks.check_tables(blocks, block_size, fault, flip_seed)
        input_data = blocks  # small; recorded unshrunk

    case = {
        "case_id": case_id,
        "kind": kind,
        "seed_key": seed_key,
        "params": params,
        "ok": result.ok,
        "coverage": result.coverage_lists(),
        "counterexample": None,
    }
    if not result.ok:
        case["counterexample"] = make_record(
            kind,
            seed_key,
            params,
            input_data,
            result.mismatch,
            applied_mutations(),
        )
    return case


# ----------------------------------------------------------------------
# Process fan-out (the fault campaign's pool pattern, chunked)
# ----------------------------------------------------------------------

_WORKER_CONFIG: VerifyConfig | None = None


def _worker_init(config: VerifyConfig) -> None:
    global _WORKER_CONFIG
    _WORKER_CONFIG = config
    # Self-test mutations must corrupt every process that decodes,
    # or pool runs would report fewer divergences than serial ones.
    apply_mutation(config.mutation)


def _worker_run_chunk(case_ids: list[int]) -> list[dict]:
    assert _WORKER_CONFIG is not None
    return [run_case(_WORKER_CONFIG, case_id) for case_id in case_ids]


def _run_cases_parallel(config: VerifyConfig) -> list[dict]:
    chunks = [
        list(range(start, min(start + config.chunk_size, config.cases)))
        for start in range(0, config.cases, config.chunk_size)
    ]
    breaker = CircuitBreaker(threshold=config.breaker_threshold)
    results: dict[int, list[dict]] = {}
    pool = ProcessPoolExecutor(
        max_workers=config.workers,
        initializer=_worker_init,
        initargs=(config,),
    )
    downgrade: str | None = None
    try:
        futures = {
            index: pool.submit(_worker_run_chunk, chunk)
            for index, chunk in enumerate(chunks)
        }
        for index, future in futures.items():
            try:
                results[index] = future.result(timeout=config.chunk_timeout)
                breaker.record_success()
            except FutureTimeoutError:
                if OBS.enabled:
                    OBS.registry.counter(
                        "verify.chunk_timeouts",
                        "verification chunks killed by the timeout",
                    ).inc()
                results[index] = [
                    run_case(config, case_id) for case_id in chunks[index]
                ]
                if breaker.record_failure():
                    downgrade = (
                        f"{breaker.consecutive_failures} consecutive chunk "
                        "timeout(s) tripped the circuit breaker"
                    )
            except BrokenExecutor as err:
                if OBS.enabled:
                    OBS.registry.counter(
                        "verify.pool_breaks",
                        "worker pools that died under verification",
                    ).inc()
                breaker.record_failure()
                downgrade = f"worker pool broke: {err!r}"
            if downgrade is not None:
                break
    finally:
        pool.shutdown(wait=downgrade is None, cancel_futures=True)
    if downgrade is not None:
        if OBS.enabled:
            OBS.registry.counter(
                "verify.pool_downgrades",
                "verification runs downgraded from parallel to serial",
            ).inc()
        warnings.warn(
            f"verify campaign: {downgrade}; finishing the remaining "
            f"{len(chunks) - len(results)} chunk(s) serially",
            RuntimeWarning,
            stacklevel=2,
        )
        for index, chunk in enumerate(chunks):
            if index not in results:
                results[index] = [run_case(config, case_id) for case_id in chunk]
    return [case for index in sorted(results) for case in results[index]]


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------


def _run_sweeps(
    config: VerifyConfig, tracker: CoverageTracker
) -> tuple[dict[str, dict[str, int]], list[dict]]:
    """The deterministic exhaustive half; returns (kind counts,
    counterexample records)."""
    kinds: dict[str, dict[str, int]] = {}
    counterexamples: list[dict] = []
    sweeps = (
        ("sweep_codebook", checks.sweep_codebook),
        ("sweep_tau", checks.sweep_tau),
        ("sweep_boundary", checks.sweep_boundary),
    )
    for name, sweep in sweeps:
        counts = kinds.setdefault(name, {"run": 0, "failed": 0})
        for block_size in config.block_sizes:
            result = sweep(block_size)
            counts["run"] += 1
            tracker.merge(result.coverage_lists())
            if not result.ok:
                counts["failed"] += 1
                counterexamples.append(
                    make_record(
                        name,
                        f"{config.seed}:{name}:k={block_size}",
                        {"k": block_size},
                        None,
                        result.mismatch,
                        applied_mutations(),
                    )
                )
            if OBS.enabled:
                OBS.registry.counter(
                    "verify.sweeps",
                    "exhaustive verification sweeps executed",
                    sweep=name,
                    outcome="ok" if result.ok else "mismatch",
                ).inc()
    # The encoder-zoo sweep is block-size independent: one run covers
    # every registered backend's canonical streams and table
    # invariants.
    counts = kinds.setdefault("sweep_encoders", {"run": 0, "failed": 0})
    result = checks.sweep_encoder_tables()
    counts["run"] += 1
    tracker.merge(result.coverage_lists())
    if not result.ok:
        counts["failed"] += 1
        counterexamples.append(
            make_record(
                "sweep_encoders",
                f"{config.seed}:sweep_encoders",
                {},
                None,
                result.mismatch,
                applied_mutations(),
            )
        )
    if OBS.enabled:
        OBS.registry.counter(
            "verify.sweeps",
            "exhaustive verification sweeps executed",
            sweep="sweep_encoders",
            outcome="ok" if result.ok else "mismatch",
        ).inc()
    return kinds, counterexamples


def run_verify(config: VerifyConfig) -> VerifyReport:
    """Run the full campaign and aggregate the report (never raises
    on divergence — only on misconfiguration)."""
    started = time.perf_counter()
    apply_mutation(config.mutation)
    tracker = CoverageTracker(config.block_sizes)
    kinds: dict[str, dict[str, int]] = {}
    mismatches: list[dict] = []
    counterexamples: list[dict] = []

    with OBS.tracer.span(
        "verify.campaign", cases=config.cases, seed=config.seed
    ):
        if config.sweeps:
            with OBS.tracer.span("verify.sweeps"):
                kinds, sweep_counterexamples = _run_sweeps(config, tracker)
            for record in sweep_counterexamples:
                mismatches.append(
                    {
                        "kind": record["kind"],
                        "seed_key": record["seed_key"],
                        "mismatch": record["mismatch"]["kind"],
                    }
                )
                counterexamples.append(record)

        with OBS.tracer.span("verify.cases", cases=config.cases):
            if config.workers > 1 and config.cases > config.chunk_size:
                cases = _run_cases_parallel(config)
            else:
                cases = [
                    run_case(config, case_id)
                    for case_id in range(config.cases)
                ]

    for case in cases:
        counts = kinds.setdefault(case["kind"], {"run": 0, "failed": 0})
        counts["run"] += 1
        tracker.merge(case["coverage"])
        if OBS.enabled:
            OBS.registry.counter(
                "verify.cases",
                "randomised differential cases executed",
                kind=case["kind"],
                outcome="ok" if case["ok"] else "mismatch",
            ).inc()
        if not case["ok"]:
            counts["failed"] += 1
            mismatches.append(
                {
                    "kind": case["kind"],
                    "seed_key": case["seed_key"],
                    "mismatch": case["counterexample"]["mismatch"]["kind"],
                }
            )
            if len(counterexamples) < config.max_counterexamples:
                counterexamples.append(case["counterexample"])

    gate_problems = tracker.gate_problems()
    if OBS.enabled:
        OBS.registry.counter(
            "verify.mismatches", "differential divergences observed"
        ).inc(len(mismatches))
        for dimension in (
            "codebook_entries",
            "tau_selectors",
            "encoder_schemes",
        ):
            OBS.registry.gauge(
                "verify.coverage_percent",
                "behaviour-space coverage per dimension",
                dimension=dimension,
            ).set(round(tracker.percent(dimension), 2))

    return VerifyReport(
        config=config.to_dict(),
        kinds=kinds,
        mismatches=mismatches,
        counterexamples=counterexamples,
        coverage=tracker.snapshot(),
        gate_problems=gate_problems,
        mutations=list(applied_mutations()),
        total_seconds=time.perf_counter() - started,
    )
