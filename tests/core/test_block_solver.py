"""Tests for the per-block optimal code-word search (Section 5.1/6)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitstream import count_transitions, from_paper_string
from repro.core.block_solver import (
    BlockSolver,
    solve_anchored_by_enumeration,
)
from repro.core.transformations import (
    ALL_TRANSFORMATIONS,
    OPTIMAL_SET,
    by_name,
)

words = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=9)


@pytest.fixture(scope="module")
def solver():
    return BlockSolver(OPTIMAL_SET)


@pytest.fixture(scope="module")
def full_solver():
    return BlockSolver(ALL_TRANSFORMATIONS)


class TestAnchoredSolve:
    def test_paper_walkthrough_010(self, solver):
        # Section 5.1 walks 010 -> 000 via ~y, eliminating both
        # transitions.
        solution = solver.solve_anchored(from_paper_string("010"))
        assert solution.code == tuple(from_paper_string("000"))
        assert solution.transformation == by_name("~y")
        assert solution.original_transitions == 2
        assert solution.encoded_transitions == 0

    def test_paper_walkthrough_011(self, solver):
        # Section 5.1: 011 cannot reach 0 transitions (contradictory
        # constraints); identity keeps the single transition.
        solution = solver.solve_anchored(from_paper_string("011"))
        assert solution.code == tuple(from_paper_string("011"))
        assert solution.transformation == by_name("x")
        assert solution.encoded_transitions == 1

    def test_anchor_equation_enforced(self, solver):
        for size in range(1, 7):
            for word in itertools.product((0, 1), repeat=size):
                solution = solver.solve_anchored(list(word))
                assert solution.code[0] == word[0]

    def test_never_worse_than_original(self, solver):
        for size in range(1, 8):
            for word in itertools.product((0, 1), repeat=size):
                solution = solver.solve_anchored(list(word))
                assert (
                    solution.encoded_transitions
                    <= solution.original_transitions
                )

    def test_decode_roundtrip_exhaustive(self, solver):
        for size in range(1, 8):
            for word in itertools.product((0, 1), repeat=size):
                solution = solver.solve_anchored(list(word))
                assert solver.verify(solution)

    @pytest.mark.parametrize("size", range(2, 7))
    def test_matches_paper_style_enumeration(self, solver, size):
        # Cross-validate the DP against the paper's own search order.
        for word in itertools.product((0, 1), repeat=size):
            dp = solver.solve_anchored(list(word))
            enum = solve_anchored_by_enumeration(list(word))
            assert dp.encoded_transitions == enum.encoded_transitions, word

    def test_empty_word_rejected(self, solver):
        with pytest.raises(ValueError):
            solver.solve_anchored([])

    def test_non_bit_rejected(self, solver):
        with pytest.raises(ValueError):
            solver.solve_anchored([0, 2, 1])

    def test_single_bit_word(self, solver):
        solution = solver.solve_anchored([1])
        assert solution.code == (1,)
        assert solution.encoded_transitions == 0


class TestConstrainedSolve:
    def test_always_feasible(self, solver):
        for size in range(1, 7):
            for word in itertools.product((0, 1), repeat=size):
                for fixed in (0, 1):
                    solution = solver.solve_constrained(list(word), fixed)
                    assert solution.code[0] == fixed

    def test_constrained_decode_roundtrip(self, solver):
        # Decoder knows the original overlap bit (word[0]); verify the
        # chain restores the remaining bits.
        for size in range(2, 7):
            for word in itertools.product((0, 1), repeat=size):
                for fixed in (0, 1):
                    solution = solver.solve_constrained(list(word), fixed)
                    decoded = [word[0]]
                    for i in range(1, size):
                        decoded.append(
                            solution.transformation(
                                solution.code[i], decoded[i - 1]
                            )
                        )
                    assert decoded == list(word)

    def test_matching_fixed_bit_no_worse_than_anchored(self, solver):
        # When the inherited stored bit equals the original, the
        # constrained problem contains the anchored one.
        for size in range(2, 7):
            for word in itertools.product((0, 1), repeat=size):
                anchored = solver.solve_anchored(list(word))
                constrained = solver.solve_constrained(list(word), word[0])
                assert (
                    constrained.encoded_transitions
                    <= anchored.encoded_transitions
                )

    def test_full_set_beats_eight_set_in_twelve_cases(self, full_solver, solver):
        # Reproduction finding: overlap-constrained blocks occasionally
        # benefit from x|~y / x&~y (12 cases over sizes 2..7).
        losses = 0
        for size in range(2, 8):
            for word in itertools.product((0, 1), repeat=size):
                for fixed in (0, 1):
                    a = full_solver.solve_constrained(list(word), fixed)
                    b = solver.solve_constrained(list(word), fixed)
                    assert a.encoded_transitions <= b.encoded_transitions
                    if a.encoded_transitions < b.encoded_transitions:
                        losses += 1
                        assert (
                            b.encoded_transitions - a.encoded_transitions == 1
                        )
        assert losses == 12

    def test_invalid_fixed_bit(self, solver):
        with pytest.raises(ValueError):
            solver.solve_constrained([0, 1], 2)


class TestBestByFinalBit:
    def test_profile_consistency(self, solver):
        # The per-final-bit minimum must match the overall minimum.
        for word in itertools.product((0, 1), repeat=5):
            for t in OPTIMAL_SET:
                overall = solver.best_for_transformation(list(word), t)
                by_final = solver.best_by_final_bit(list(word), t)
                assert (overall is None) == (by_final is None)
                if overall is None:
                    continue
                assert overall[0] == min(c for c, _ in by_final.values())

    def test_codes_decode_correctly(self, solver):
        word = [0, 1, 1, 0, 1]
        for t in OPTIMAL_SET:
            by_final = solver.best_by_final_bit(word, t)
            if by_final is None:
                continue
            for final_bit, (cost, code) in by_final.items():
                assert code[-1] == final_bit
                assert count_transitions(code) == cost
                decoded = [code[0]]
                for i in range(1, len(code)):
                    decoded.append(t(code[i], decoded[i - 1]))
                # Anchored: decode must reproduce the word.
                assert decoded[0] == word[0]


class TestProperties:
    @given(words)
    @settings(max_examples=200)
    def test_solution_invariants(self, word):
        solver = BlockSolver(OPTIMAL_SET)
        solution = solver.solve_anchored(word)
        assert len(solution.code) == len(word)
        assert solution.encoded_transitions == count_transitions(solution.code)
        assert solution.original_transitions == count_transitions(word)
        assert solution.reduction >= 0
        assert solver.verify(solution)

    @given(words, st.integers(min_value=0, max_value=1))
    @settings(max_examples=200)
    def test_constrained_invariants(self, word, fixed):
        solver = BlockSolver(OPTIMAL_SET)
        solution = solver.solve_constrained(word, fixed)
        assert solution.code[0] == fixed
        assert solution.encoded_transitions == count_transitions(solution.code)

    @given(words)
    @settings(max_examples=100)
    def test_complement_symmetry(self, word):
        # Section 5.2 symmetry: complementing the word complements the
        # optimal transition count story exactly.
        solver = BlockSolver(OPTIMAL_SET)
        a = solver.solve_anchored(word)
        b = solver.solve_anchored([1 - bit for bit in word])
        assert a.encoded_transitions == b.encoded_transitions


class TestSolverConfiguration:
    def test_empty_transformation_set_rejected(self):
        with pytest.raises(ValueError):
            BlockSolver([])

    def test_identity_only_solver_reproduces_input(self):
        solver = BlockSolver([by_name("x")])
        word = [0, 1, 0, 1]
        solution = solver.solve_anchored(word)
        assert solution.code == tuple(word)

    def test_insufficient_set_raises(self):
        # nor alone cannot express e.g. the all-ones word.
        solver = BlockSolver([by_name("nor")])
        with pytest.raises(RuntimeError):
            solver.solve_anchored([1, 1, 1])
