"""Tests for the hardware cost model."""

import pytest

from repro.hw.cost import (
    HardwareCost,
    cost_sweep,
    ct_field_bits,
    estimate_cost,
)


class TestCtBits:
    @pytest.mark.parametrize(
        "block_size,expected", [(2, 2), (3, 2), (4, 3), (7, 3), (8, 4), (15, 4)]
    )
    def test_values(self, block_size, expected):
        assert ct_field_bits(block_size) == expected


class TestEstimate:
    def test_paper_geometry(self):
        cost = estimate_cost(block_size=7, tt_entries=16, bbit_entries=16)
        # TT: 16 entries * (96 selectors + 1 E + 3 CT) = 1600 bits.
        assert cost.tt_bits == 16 * 100
        # BBIT: 16 * (30 + 4)
        assert cost.bbit_bits == 16 * 34
        assert cost.total_storage_bits == cost.tt_bits + cost.bbit_bits

    def test_paper_112_instruction_claim(self):
        # Section 7.2 argues a 16-entry TT at k=7 covers ~112
        # instructions; with the overlap accounting it is 7 + 15*6 = 97.
        cost = estimate_cost(block_size=7, tt_entries=16)
        assert cost.max_instructions == 97
        assert 0.8 * (7 * 16) <= cost.max_instructions <= 7 * 16

    def test_longer_blocks_cover_more(self):
        sweep = cost_sweep(block_sizes=(4, 5, 6, 7))
        coverage = [c.max_instructions for c in sweep]
        assert coverage == sorted(coverage)

    def test_storage_nearly_flat_in_block_size(self):
        # The paper's trade-off: block size barely moves table bits
        # (only the CT field), while coverage grows linearly.
        sweep = cost_sweep(block_sizes=(4, 7))
        assert sweep[1].total_storage_bits - sweep[0].total_storage_bits <= 16

    def test_gate_equivalents_positive_and_monotone_in_width(self):
        narrow = estimate_cost(5, bus_width=16)
        wide = estimate_cost(5, bus_width=32)
        assert 0 < narrow.gate_equivalents < wide.gate_equivalents

    def test_decode_gates_scale_with_width(self):
        cost16 = estimate_cost(5, bus_width=16)
        cost32 = estimate_cost(5, bus_width=32)
        assert cost32.decode_gates == 2 * cost16.decode_gates

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            estimate_cost(1)

    def test_dataclass_fields(self):
        cost = estimate_cost(5)
        assert isinstance(cost, HardwareCost)
        assert cost.block_size == 5
        assert cost.tt_entries == 16


class TestOverheadIsSmall:
    def test_tables_are_tiny_versus_program_memory(self):
        # The whole decode support is a few hundred bytes of SRAM —
        # negligible against even a 4 KiB instruction memory.
        cost = estimate_cost(5)
        assert cost.total_storage_bits < 4 * 1024 * 8 * 0.1
