"""Figure 4: optimal transformations for 5-bit blocks under the
restricted 8-function set.  The paper prints the lexicographic first
half; the second half follows by the global-inversion symmetry."""

from repro.core.bitstream import to_paper_string
from repro.core.codebook import build_codebook
from repro.core.transformations import ALL_TRANSFORMATIONS, OPTIMAL_SET

# (X, X~, tau, T_x, T_x~) exactly as printed in the paper.
PAPER_FIGURE4 = [
    ("00000", "00000", "x", 0, 0),
    ("00001", "11111", "~x", 1, 0),
    ("00010", "11100", "~x", 2, 1),
    ("00011", "00011", "x", 1, 1),
    ("00100", "00100", "x", 2, 2),
    ("00101", "01111", "xor", 3, 1),
    ("00110", "11000", "~x", 2, 1),
    ("00111", "00111", "x", 1, 1),
    ("01000", "11000", "xor", 2, 1),
    ("01001", "00111", "nor", 3, 1),
    ("01010", "00000", "~y", 4, 0),
    ("01011", "00011", "xnor", 3, 1),
    ("01100", "01100", "x", 2, 2),
    ("01101", "10011", "~x", 3, 2),
    ("01110", "10000", "~x", 2, 1),
    ("01111", "01111", "x", 1, 1),
]


def test_fig4_codebook_k5(benchmark, record_result):
    book = benchmark(build_codebook, 5, OPTIMAL_SET)

    for word, code, tau, tx, txt in PAPER_FIGURE4:
        solution = book.solution_for(word)
        assert to_paper_string(solution.code) == code, word
        assert solution.transformation.name == tau, word
        assert solution.original_transitions == tx, word
        assert solution.encoded_transitions == txt, word

    # The restriction to 8 functions costs nothing (the section's key
    # claim): full-16 search reaches the same RTN.
    full = build_codebook(5, ALL_TRANSFORMATIONS)
    assert book.reduced_transitions == full.reduced_transitions == 32
    assert book.total_transitions == 64

    # Symmetry: the unprinted half mirrors the printed half's counts.
    for word, _, _, tx, txt in PAPER_FIGURE4:
        mirrored = "".join("1" if c == "0" else "0" for c in word)
        solution = book.solution_for(mirrored)
        assert solution.original_transitions == tx
        assert solution.encoded_transitions == txt

    record_result("fig4_codebook_k5", book.format_table())
