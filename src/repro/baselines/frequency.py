"""Static frequency-ranked opcode remapping, after the low-power ISA
re-encoding idea of Benini et al. (GLS-VLSI 1998) — reference [6].

The original collects instruction-adjacency statistics and re-assigns
opcodes so frequent pairs are Hamming-close.  We implement the core
mechanism at word granularity: rank the distinct instruction words of
a hot region by dynamic frequency and re-assign code points so that
the most frequent words get codes with small pairwise Hamming
distances (a greedy minimum-weight assignment over the code space).
The mapping is a dictionary — exactly the cost the paper's Section 3
argues against, which the comparison benches quantify.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence


def _code_candidates(width: int, count: int) -> list[int]:
    """``count`` code points with small mutual Hamming distances:
    breadth-first by popcount (0, then weight-1 codes, ...)."""
    codes: list[int] = []
    weight = 0
    while len(codes) < count:
        codes.extend(
            c for c in range(1 << min(width, 20)) if c.bit_count() == weight
        )
        weight += 1
        if weight > min(width, 20):
            raise ValueError("code space exhausted")
    return codes[:count]


@dataclass
class FrequencyRemapper:
    """A dictionary-based re-encoder for a closed set of words.

    ``fit`` learns the mapping from a training trace; ``transitions``
    evaluates a (possibly different) trace under it.  Words outside
    the learned dictionary fall back to their original encoding, with
    one extra *escape* line toggling (modelling the miss signal a real
    implementation needs).
    """

    width: int = 32
    max_entries: int = 256
    mapping: dict[int, int] = field(default_factory=dict)

    def fit(self, words: Sequence[int]) -> "FrequencyRemapper":
        counts = Counter(words)
        ranked = [w for w, _ in counts.most_common(self.max_entries)]
        codes = _code_candidates(self.width, len(ranked))
        self.mapping = dict(zip(ranked, codes))
        return self

    def encode(self, word: int) -> tuple[int, int]:
        """Returns (driven word, escape bit)."""
        code = self.mapping.get(word)
        if code is None:
            return word, 1
        return code, 0

    def transitions(self, words: Sequence[int]) -> int:
        """Bus transitions (word lines + escape line) over a trace."""
        total = 0
        prev_word = None
        prev_escape = 0
        for word in words:
            driven, escape = self.encode(word)
            if prev_word is not None:
                total += (driven ^ prev_word).bit_count()
                total += escape ^ prev_escape
            prev_word, prev_escape = driven, escape
        return total

    @property
    def dictionary_bits(self) -> int:
        """Storage the dictionary costs (the paper's Section 3
        objection): two full words per entry."""
        return len(self.mapping) * 2 * self.width
