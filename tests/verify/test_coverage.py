"""Coverage-tracker universes, merging, and the acceptance gate."""

from repro.verify.coverage import (
    DECODER_TRANSITIONS,
    GATED_BLOCK_SIZES,
    CoverageTracker,
    codebook_key,
    tau_key,
)


class TestUniverses:
    def test_codebook_universe_is_three_variants_per_word(self):
        tracker = CoverageTracker([4])
        assert len(tracker.universes["codebook_entries"]) == 3 * 16

    def test_tau_universe_is_eight_per_block_size(self):
        tracker = CoverageTracker([4, 5])
        assert len(tracker.universes["tau_selectors"]) == 16

    def test_decoder_transition_universe(self):
        assert len(DECODER_TRANSITIONS) == 12
        tracker = CoverageTracker([4])
        assert tracker.universes["decoder_transitions"] == set(
            DECODER_TRANSITIONS
        )

    def test_duplicate_block_sizes_collapse(self):
        assert CoverageTracker([4, 4, 4]).block_sizes == (4,)


class TestAccounting:
    def test_cover_and_percent(self):
        tracker = CoverageTracker([4])
        assert tracker.percent("tau_selectors") == 0.0
        for selector in range(8):
            tracker.cover("tau_selectors", tau_key(4, selector))
        assert tracker.percent("tau_selectors") == 100.0

    def test_merge_folds_case_contributions(self):
        tracker = CoverageTracker([4])
        tracker.merge(
            {
                "tau_selectors": [tau_key(4, 0), tau_key(4, 1)],
                "unknown_dimension": ["ignored"],
            }
        )
        assert tracker.percent("tau_selectors") == 25.0
        assert "unknown_dimension" not in tracker.covered

    def test_keys_outside_the_universe_do_not_inflate_percent(self):
        tracker = CoverageTracker([4])
        tracker.cover("tau_selectors", tau_key(9, 0))  # k=9 not configured
        assert tracker.percent("tau_selectors") == 0.0
        snapshot = tracker.snapshot()
        assert snapshot["tau_selectors"]["covered"] == 0

    def test_prefix_percent_separates_block_sizes(self):
        tracker = CoverageTracker([4, 5])
        for word in range(16):
            tracker.cover("codebook_entries", codebook_key(4, "anchored", word))
            tracker.cover(
                "codebook_entries", codebook_key(4, "constrained0", word)
            )
            tracker.cover(
                "codebook_entries", codebook_key(4, "constrained1", word)
            )
        assert tracker.percent("codebook_entries", "k=4|") == 100.0
        assert tracker.percent("codebook_entries", "k=5|") == 0.0


class TestGate:
    @staticmethod
    def _cover_encoders(tracker):
        for scheme in tracker.universes["encoder_schemes"]:
            tracker.cover("encoder_schemes", scheme)

    def test_gate_flags_every_uncovered_gated_dimension(self):
        tracker = CoverageTracker(GATED_BLOCK_SIZES)
        problems = tracker.gate_problems()
        # codebook + tau for each of the four gated ks, plus the
        # encoder-scheme dimension.
        assert len(problems) == 9
        assert any("k=7" in problem for problem in problems)
        assert any("encoder_schemes" in problem for problem in problems)

    def test_ungated_block_sizes_do_not_gate(self):
        tracker = CoverageTracker([2, 3])
        self._cover_encoders(tracker)
        assert tracker.gate_problems() == []

    def test_encoder_schemes_gate_names_the_missing_backend(self):
        tracker = CoverageTracker([2])
        for scheme in tracker.universes["encoder_schemes"]:
            if scheme != "gray":
                tracker.cover("encoder_schemes", scheme)
        problems = tracker.gate_problems()
        assert len(problems) == 1
        assert "gray" in problems[0]

    def test_full_coverage_clears_the_gate(self):
        tracker = CoverageTracker([4])
        for word in range(16):
            for variant in ("anchored", "constrained0", "constrained1"):
                tracker.cover(
                    "codebook_entries", codebook_key(4, variant, word)
                )
        for selector in range(8):
            tracker.cover("tau_selectors", tau_key(4, selector))
        self._cover_encoders(tracker)
        assert tracker.gate_problems() == []

    def test_snapshot_reports_missing_keys_and_breakdown(self):
        tracker = CoverageTracker([4])
        tracker.cover("tau_selectors", tau_key(4, 0))
        snapshot = tracker.snapshot()
        entry = snapshot["tau_selectors"]
        assert entry["covered"] == 1 and entry["universe"] == 8
        assert entry["percent"] == 12.5
        assert len(entry["missing"]) == 7
        assert entry["by_block_size"] == {"4": 12.5}
