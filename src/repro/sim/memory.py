"""Byte-addressable paged memory for the simulator.

Little-endian, lazily allocated 4 KiB pages, with typed accessors for
the widths the ISA needs (8/16/32-bit integers and 64-bit doubles).
"""

from __future__ import annotations

import struct

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class MmioRegion:
    """A memory-mapped peripheral window.

    Handlers receive the *offset* from the region base.  Only 32-bit
    accesses are routed (device registers are word-wide, like the
    Section 7.1 table-programming peripheral this exists for).
    """

    def __init__(self, base: int, size: int, read_u32=None, write_u32=None):
        if size <= 0:
            raise ValueError("MMIO region needs a positive size")
        self.base = base
        self.end = base + size
        self._read = read_u32
        self._write = write_u32

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def read(self, address: int) -> int:
        if self._read is None:
            return 0
        return self._read(address - self.base) & 0xFFFFFFFF

    def write(self, address: int, value: int) -> None:
        if self._write is not None:
            self._write(address - self.base, value & 0xFFFFFFFF)


class Memory:
    """Sparse paged memory with optional MMIO windows."""

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}
        self._mmio: list[MmioRegion] = []

    def add_mmio(self, region: MmioRegion) -> None:
        """Map a peripheral window; overlaps are rejected."""
        for existing in self._mmio:
            if region.base < existing.end and existing.base < region.end:
                raise ValueError(
                    f"MMIO region {region.base:#x} overlaps {existing.base:#x}"
                )
        self._mmio.append(region)

    def _mmio_at(self, address: int) -> MmioRegion | None:
        for region in self._mmio:
            if region.contains(address):
                return region
        return None

    def _page(self, address: int) -> bytearray:
        page = self._pages.get(address >> PAGE_SHIFT)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[address >> PAGE_SHIFT] = page
        return page

    # ------------------------------------------------------------------
    # Raw byte access
    # ------------------------------------------------------------------

    def read_bytes(self, address: int, length: int) -> bytes:
        out = bytearray()
        while length:
            page = self._page(address)
            offset = address & PAGE_MASK
            chunk = min(length, PAGE_SIZE - offset)
            out += page[offset : offset + chunk]
            address += chunk
            length -= chunk
        return bytes(out)

    def write_bytes(self, address: int, data: bytes) -> None:
        view = memoryview(data)
        while view:
            page = self._page(address)
            offset = address & PAGE_MASK
            chunk = min(len(view), PAGE_SIZE - offset)
            page[offset : offset + chunk] = view[:chunk]
            address += chunk
            view = view[chunk:]

    # ------------------------------------------------------------------
    # Typed access (little-endian)
    # ------------------------------------------------------------------

    def read_u8(self, address: int) -> int:
        return self._page(address)[address & PAGE_MASK]

    def write_u8(self, address: int, value: int) -> None:
        self._page(address)[address & PAGE_MASK] = value & 0xFF

    def read_u16(self, address: int) -> int:
        return int.from_bytes(self.read_bytes(address, 2), "little")

    def write_u16(self, address: int, value: int) -> None:
        self.write_bytes(address, (value & 0xFFFF).to_bytes(2, "little"))

    def read_u32(self, address: int) -> int:
        if self._mmio:
            region = self._mmio_at(address)
            if region is not None:
                return region.read(address)
        page_off = address & PAGE_MASK
        if page_off <= PAGE_SIZE - 4:
            page = self._page(address)
            return int.from_bytes(page[page_off : page_off + 4], "little")
        return int.from_bytes(self.read_bytes(address, 4), "little")

    def write_u32(self, address: int, value: int) -> None:
        if self._mmio:
            region = self._mmio_at(address)
            if region is not None:
                region.write(address, value)
                return
        page_off = address & PAGE_MASK
        data = (value & 0xFFFFFFFF).to_bytes(4, "little")
        if page_off <= PAGE_SIZE - 4:
            self._page(address)[page_off : page_off + 4] = data
        else:
            self.write_bytes(address, data)

    def read_s8(self, address: int) -> int:
        value = self.read_u8(address)
        return value - 0x100 if value & 0x80 else value

    def read_s16(self, address: int) -> int:
        value = self.read_u16(address)
        return value - 0x10000 if value & 0x8000 else value

    def read_f64(self, address: int) -> float:
        return struct.unpack("<d", self.read_bytes(address, 8))[0]

    def write_f64(self, address: int, value: float) -> None:
        self.write_bytes(address, struct.pack("<d", value))

    def read_f32(self, address: int) -> float:
        return struct.unpack("<f", self.read_bytes(address, 4))[0]

    def write_f32(self, address: int, value: float) -> None:
        self.write_bytes(address, struct.pack("<f", value))

    def read_cstring(self, address: int, limit: int = 4096) -> str:
        out = bytearray()
        for i in range(limit):
            byte = self.read_u8(address + i)
            if byte == 0:
                break
            out.append(byte)
        return out.decode("latin-1")

    @property
    def allocated_pages(self) -> int:
        return len(self._pages)
