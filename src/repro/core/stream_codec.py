"""Chained encoding of arbitrary-length bit streams (Section 6).

A stream is split into blocks of ``block_size`` bits with a one-bit
overlap between neighbours: block ``j`` covers stream positions
``[j*(k-1), j*(k-1) + k)``.  The first block is anchored (its first
stored bit equals the original); every later block inherits its first
stored bit from the previous block's encoding, which couples the block
choices sequentially ("the transformation selected for a given block
depends on the transformation selected for the previous block").

Three strategies are provided:

``greedy``
    The paper's iterative approach: encode blocks left to right, each
    minimising its own transitions given the inherited overlap bit.
``optimal``
    A dynamic program over the one-bit block interface that finds the
    globally minimal-transition encoding; used to substantiate the
    paper's empirical claim that greedy is near-optimal.
``disjoint``
    Blocks without overlap, each independently anchored — the strawman
    the paper dismisses ("Were blocks to be disjoint, no improvement
    can be effected" across boundaries); kept for the overlap ablation.

Two implementations back every strategy.  The default routes through
the **compiled codebook fast path** (:mod:`repro.core.fastpath`):
streams are packed into Python ints and each block resolves to one
table lookup.  ``use_codebook=False`` selects the seed reference
implementation that calls :class:`BlockSolver` per block; the two are
cross-validated bit-for-bit in ``tests/core/test_fastpath.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Sequence

from repro.core import bitplane
from repro.core.bitstream import (
    count_transitions,
    count_transitions_int,
    pack_bits,
    unpack_bits,
    validate_bits,
)
from repro.core.block_solver import BlockSolver
from repro.core.fastpath import (
    CompiledCodebook,
    decode_plan_int,
    encode_disjoint_int,
    encode_greedy_int,
    encode_optimal_int,
    get_codebook,
    optimal_dp_empty_error,
)
from repro.core.transformations import (
    IDENTITY,
    OPTIMAL_SET,
    Transformation,
)

_INF = 1 << 30

STRATEGIES = ("greedy", "optimal", "disjoint")


@dataclass(frozen=True)
class SegmentEncoding:
    """One encoded block within a stream.

    ``start`` indexes the stream position of the block's first bit
    (the overlap bit for non-initial blocks); ``length`` counts the
    positions covered including the overlap bit.
    """

    start: int
    length: int
    transformation: Transformation

    @property
    def end(self) -> int:
        return self.start + self.length


@dataclass(frozen=True)
class StreamEncoding:
    """A fully encoded bit stream with its block/transformation plan.

    ``encoded_int`` and ``truth_tables`` are derived decode metadata
    the compiled encoder already holds (the packed stored bits and the
    per-segment tau truth tables); carrying them spares the bitplane
    decoder re-deriving both on every call.  They are excluded from
    equality/repr — a reference-path encoding (which leaves them
    ``None``) still compares equal to its fast-path twin, and decode
    falls back to recomputing them.
    """

    original: tuple[int, ...]
    encoded: tuple[int, ...]
    block_size: int
    segments: tuple[SegmentEncoding, ...]
    overlapped: bool = True
    encoded_int: int | None = field(default=None, compare=False, repr=False)
    truth_tables: tuple[int, ...] | None = field(
        default=None, compare=False, repr=False
    )

    @property
    def original_transitions(self) -> int:
        return count_transitions(self.original)

    @property
    def encoded_transitions(self) -> int:
        return count_transitions(self.encoded)

    @property
    def reduction(self) -> int:
        return self.original_transitions - self.encoded_transitions

    @property
    def reduction_percent(self) -> float:
        total = self.original_transitions
        if total == 0:
            return 0.0
        return 100.0 * self.reduction / total

    def transformations(self) -> list[Transformation]:
        return [segment.transformation for segment in self.segments]


def segment_bounds(length: int, block_size: int, overlapped: bool = True) -> list[tuple[int, int]]:
    """Block (start, length) pairs covering a stream of ``length`` bits.

    With overlap, consecutive blocks share one position; the tail block
    may be shorter than ``block_size`` (the hardware handles it via the
    E/CT fields of the Transformation Table, Section 7.2).
    """
    if block_size < 2:
        raise ValueError(f"block size must be >= 2, got {block_size}")
    return list(_segment_bounds_cached(length, block_size, overlapped))


@lru_cache(maxsize=4096)
def _segment_bounds_cached(
    length: int, block_size: int, overlapped: bool
) -> tuple[tuple[int, int], ...]:
    if length <= 0:
        return ()
    if length == 1:
        return ((0, 1),)
    bounds = []
    if overlapped:
        start = 0
        while start < length - 1:
            bounds.append((start, min(block_size, length - start)))
            start += block_size - 1
    else:
        start = 0
        while start < length:
            bounds.append((start, min(block_size, length - start)))
            start += block_size
    return tuple(bounds)


class StreamEncoder:
    """Encoder for vertical bit streams.

    Parameters
    ----------
    block_size:
        Block length ``k`` (the paper studies 4..7).
    transformations:
        Candidate transformation set (defaults to the optimal 8-set).
    strategy:
        ``"greedy"`` (the paper's), ``"optimal"`` (interface DP) or
        ``"disjoint"`` (no overlap, ablation only).
    use_codebook:
        ``True`` (default) encodes through the compiled codebook fast
        path; ``False`` runs the reference per-block solver.  Outputs
        are bit-identical either way.
    """

    def __init__(
        self,
        block_size: int,
        transformations: Sequence[Transformation] = OPTIMAL_SET,
        strategy: str = "greedy",
        use_codebook: bool = True,
    ) -> None:
        if block_size < 2:
            raise ValueError(f"block size must be >= 2, got {block_size}")
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        self.block_size = block_size
        self.transformations = tuple(transformations)
        self.strategy = strategy
        self._solver = BlockSolver(self.transformations)
        self._codebook: CompiledCodebook | None = (
            get_codebook(block_size, self.transformations)
            if use_codebook
            else None
        )

    @property
    def use_codebook(self) -> bool:
        return self._codebook is not None

    # ------------------------------------------------------------------

    def encode(self, stream: Sequence[int]) -> StreamEncoding:
        """Encode a stream; decoding the result restores it exactly."""
        stream = validate_bits(stream)
        if not stream:
            return StreamEncoding((), (), self.block_size, (), self.strategy != "disjoint")
        if len(stream) == 1:
            return StreamEncoding(
                tuple(stream),
                tuple(stream),
                self.block_size,
                (SegmentEncoding(0, 1, IDENTITY),),
                self.strategy != "disjoint",
            )
        if self.strategy == "greedy":
            return self._encode_greedy(stream)
        if self.strategy == "optimal":
            return self._encode_optimal(stream)
        return self._encode_disjoint(stream)

    # ------------------------------------------------------------------
    # Compiled fast path (default)
    # ------------------------------------------------------------------

    def _fast_result(
        self,
        stream: list[int],
        encoded_int: int,
        taus: list[Transformation],
        bounds: Sequence[tuple[int, int]],
        overlapped: bool,
    ) -> StreamEncoding:
        segments = tuple(
            SegmentEncoding(start, seg_len, tau)
            for (start, seg_len), tau in zip(bounds, taus)
        )
        return StreamEncoding(
            tuple(stream),
            unpack_bits(encoded_int, len(stream)),
            self.block_size,
            segments,
            overlapped,
            encoded_int=encoded_int,
            truth_tables=tuple(tau.func.truth_table for tau in taus),
        )

    # ------------------------------------------------------------------

    def _encode_greedy(self, stream: list[int]) -> StreamEncoding:
        if self._codebook is not None:
            bounds = _segment_bounds_cached(len(stream), self.block_size, True)
            encoded_int, taus = encode_greedy_int(
                self._codebook, pack_bits(stream), bounds
            )
            return self._fast_result(stream, encoded_int, taus, bounds, True)
        bounds = segment_bounds(len(stream), self.block_size, overlapped=True)
        encoded: list[int] = [0] * len(stream)
        segments: list[SegmentEncoding] = []
        for index, (start, seg_len) in enumerate(bounds):
            word = stream[start : start + seg_len]
            if index == 0:
                solution = self._solver.solve_anchored(word)
            else:
                solution = self._solver.solve_constrained(word, encoded[start])
            for offset, bit in enumerate(solution.code):
                encoded[start + offset] = bit
            segments.append(
                SegmentEncoding(start, seg_len, solution.transformation)
            )
        return StreamEncoding(
            tuple(stream), tuple(encoded), self.block_size, tuple(segments), True
        )

    def _encode_disjoint(self, stream: list[int]) -> StreamEncoding:
        if self._codebook is not None:
            bounds = _segment_bounds_cached(len(stream), self.block_size, False)
            encoded_int, taus = encode_disjoint_int(
                self._codebook, pack_bits(stream), bounds
            )
            return self._fast_result(stream, encoded_int, taus, bounds, False)
        bounds = segment_bounds(len(stream), self.block_size, overlapped=False)
        encoded: list[int] = [0] * len(stream)
        segments: list[SegmentEncoding] = []
        for start, seg_len in bounds:
            word = stream[start : start + seg_len]
            solution = self._solver.solve_anchored(word)
            for offset, bit in enumerate(solution.code):
                encoded[start + offset] = bit
            segments.append(
                SegmentEncoding(start, seg_len, solution.transformation)
            )
        return StreamEncoding(
            tuple(stream), tuple(encoded), self.block_size, tuple(segments), False
        )

    def _encode_optimal(self, stream: list[int]) -> StreamEncoding:
        """Global minimum via DP over the one-bit block interface.

        For each block and each (incoming stored bit, outgoing stored
        bit, transformation) we precompute the minimal internal
        transitions; a forward pass then chains blocks through the
        shared overlap bit.
        """
        if self._codebook is not None:
            bounds = _segment_bounds_cached(len(stream), self.block_size, True)
            encoded_int, taus, best_cost = encode_optimal_int(
                self._codebook, pack_bits(stream), bounds
            )
            result = self._fast_result(stream, encoded_int, taus, bounds, True)
            realised = count_transitions_int(encoded_int, len(stream))
            if realised != best_cost:
                raise RuntimeError(
                    f"optimal encoder self-check failed: DP cost {best_cost}"
                    f" != realised transitions {realised}"
                )
            return result
        bounds = segment_bounds(len(stream), self.block_size, overlapped=True)
        # profiles[j][(in_bit, out_bit)] = (cost, transformation, code)
        profiles: list[dict[tuple[int, int], tuple[int, Transformation, tuple[int, ...]]]] = []
        for index, (start, seg_len) in enumerate(bounds):
            word = stream[start : start + seg_len]
            profile: dict[tuple[int, int], tuple[int, Transformation, tuple[int, ...]]] = {}
            in_bits = (word[0],) if index == 0 else (0, 1)
            for in_bit in in_bits:
                for transformation in self.transformations:
                    fixed_first = None if index == 0 else in_bit
                    by_final = self._solver.best_by_final_bit(
                        word, transformation, fixed_first
                    )
                    if by_final is None:
                        continue
                    for out_bit, (cost, code) in by_final.items():
                        key = (in_bit, out_bit)
                        if key not in profile or cost < profile[key][0]:
                            profile[key] = (cost, transformation, code)
            profiles.append(profile)

        # Forward DP over the interface bit.
        state: dict[int, tuple[int, list[tuple[Transformation, tuple[int, ...]]]]] = {}
        first_profile = profiles[0]
        for (in_bit, out_bit), (cost, transformation, code) in first_profile.items():
            if out_bit not in state or cost < state[out_bit][0]:
                state[out_bit] = (cost, [(transformation, code)])
        for block_index, profile in enumerate(profiles[1:], start=1):
            if not state:
                raise optimal_dp_empty_error(
                    block_index - 1, bounds[block_index - 1][0]
                )
            new_state: dict[int, tuple[int, list[tuple[Transformation, tuple[int, ...]]]]] = {}
            for (in_bit, out_bit), (cost, transformation, code) in profile.items():
                if in_bit not in state:
                    continue
                prev_cost, prev_plan = state[in_bit]
                total = prev_cost + cost
                if out_bit not in new_state or total < new_state[out_bit][0]:
                    new_state[out_bit] = (total, prev_plan + [(transformation, code)])
            state = new_state
        if not state:
            last = len(bounds) - 1
            raise optimal_dp_empty_error(last, bounds[last][0])

        best_cost, plan = min(state.values(), key=lambda item: item[0])
        encoded: list[int] = [0] * len(stream)
        segments: list[SegmentEncoding] = []
        for (start, seg_len), (transformation, code) in zip(bounds, plan):
            for offset, bit in enumerate(code):
                encoded[start + offset] = bit
            segments.append(SegmentEncoding(start, seg_len, transformation))
        result = StreamEncoding(
            tuple(stream), tuple(encoded), self.block_size, tuple(segments), True
        )
        # Explicit check (not a bare assert: `python -O` must not strip
        # the verification from the production path).
        if result.encoded_transitions != best_cost:
            raise RuntimeError(
                f"optimal encoder self-check failed: DP cost {best_cost}"
                f" != realised transitions {result.encoded_transitions}"
            )
        return result


def encode_stream(
    stream: Sequence[int],
    block_size: int,
    transformations: Sequence[Transformation] = OPTIMAL_SET,
    strategy: str = "greedy",
    use_codebook: bool = True,
) -> StreamEncoding:
    """Convenience wrapper around :class:`StreamEncoder`."""
    encoder = StreamEncoder(block_size, transformations, strategy, use_codebook)
    return encoder.encode(stream)


def decode_stream(
    encoding: StreamEncoding,
    use_tables: bool = True,
    use_bitplane: bool | None = None,
) -> list[int]:
    """Decode a :class:`StreamEncoding`.

    Mirrors the hardware: the stream's first bit passes through
    unchanged; every later bit is ``tau(stored, previous_decoded)``
    with ``tau`` selected by the segment covering that position.

    Three bit-identical implementations back the contract.  The
    default routes through the vectorized bitplane scan
    (:mod:`repro.core.bitplane`); ``use_bitplane=False`` selects the
    scalar paths, where ``use_tables`` picks the compiled suffix-table
    decode (``True``) or the reference bit-serial loop (``False``).
    """
    if not encoding.encoded:
        return []
    if use_bitplane is None:
        use_bitplane = use_tables
    if use_bitplane:
        # Segmentation is a pure function of (length, k, overlap), so
        # the cached uniform bounds are exactly this encoding's layout;
        # fast-path encodings carry their packed bits and truth tables
        # already, reference-path ones re-derive both here.
        length = len(encoding.encoded)
        packed = encoding.encoded_int
        if packed is None:
            packed, length = bitplane.pack_validated(encoding.encoded)
        truth_tables = encoding.truth_tables
        if truth_tables is None:
            truth_tables = tuple(
                s.transformation.func.truth_table for s in encoding.segments
            )
        decoded_int = bitplane.decode_plan_bitplane(
            packed,
            length,
            _segment_bounds_cached(
                length, encoding.block_size, encoding.overlapped
            ),
            (),
            encoding.overlapped,
            truth_tables=truth_tables,
        )
        return bitplane.bits_list(decoded_int, length)
    encoded = list(encoding.encoded)
    if use_tables:
        bounds = tuple((s.start, s.length) for s in encoding.segments)
        decoded_int = decode_plan_int(
            pack_bits(encoded),
            len(encoded),
            bounds,
            [s.transformation for s in encoding.segments],
            encoding.overlapped,
        )
        return list(unpack_bits(decoded_int, len(encoded)))
    decoded: list[int] = [encoded[0]]
    if encoding.overlapped:
        for segment in encoding.segments:
            for pos in range(segment.start + 1, segment.end):
                decoded.append(
                    segment.transformation(encoded[pos], decoded[pos - 1])
                )
    else:
        for segment in encoding.segments:
            for pos in range(segment.start, segment.end):
                if pos == segment.start:
                    if pos != 0:
                        decoded.append(encoded[pos])  # each block re-anchors
                else:
                    decoded.append(
                        segment.transformation(encoded[pos], decoded[pos - 1])
                    )
    return decoded


def decode_with_plan(
    encoded: Sequence[int],
    block_size: int,
    transformations: Sequence[Transformation],
    use_tables: bool = True,
    use_bitplane: bool | None = None,
) -> list[int]:
    """Decode from raw materials (stored bits + per-block tau plan) —
    exactly the information a Transformation Table holds.

    Defaults to the vectorized bitplane scan; ``use_bitplane=False``
    selects the scalar suffix-table (``use_tables=True``) or bit-serial
    (``use_tables=False``) path.  All three are bit-identical.
    """
    if use_bitplane is None:
        use_bitplane = use_tables
    if use_bitplane:
        packed, length = bitplane.pack_validated(encoded)
        if block_size < 2:
            raise ValueError(f"block size must be >= 2, got {block_size}")
        bounds = _segment_bounds_cached(length, block_size, True)
        if len(bounds) != len(transformations):
            raise ValueError(
                f"plan length {len(transformations)} does not match "
                f"{len(bounds)} blocks for a stream of {length} bits"
            )
        if length == 0:
            return []
        decoded_int = bitplane.decode_plan_bitplane(
            packed, length, bounds, transformations, True
        )
        return bitplane.bits_list(decoded_int, length)
    encoded = validate_bits(encoded)
    bounds = segment_bounds(len(encoded), block_size, overlapped=True)
    if len(bounds) != len(transformations):
        raise ValueError(
            f"plan length {len(transformations)} does not match "
            f"{len(bounds)} blocks for a stream of {len(encoded)} bits"
        )
    if not encoded:
        return []
    if use_tables:
        decoded_int = decode_plan_int(
            pack_bits(encoded), len(encoded), bounds, transformations, True
        )
        return list(unpack_bits(decoded_int, len(encoded)))
    decoded = [encoded[0]]
    for (start, seg_len), transformation in zip(bounds, transformations):
        for pos in range(start + 1, start + seg_len):
            decoded.append(transformation(encoded[pos], decoded[pos - 1]))
    return decoded
