"""Tests for the h-history transformation generalisation."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitstream import count_transitions
from repro.core.multihistory import (
    HistoryFunc,
    MultiHistorySolver,
    identity_function,
    num_functions,
    theory_rtn,
)
from repro.core.theory import theory_row

words = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=8)


class TestHistoryFunc:
    def test_function_counts(self):
        assert num_functions(1) == 16
        assert num_functions(2) == 256

    def test_identity(self):
        for h in (1, 2):
            identity = identity_function(h)
            for x in (0, 1):
                for history in itertools.product((0, 1), repeat=h):
                    assert identity(x, list(history)) == x

    def test_h1_matches_boolfunc(self):
        # The h=1 functions must agree with the BoolFunc convention
        # used by the main solver (x index high, y index low).
        from repro.core.boolfunc import BoolFunc

        for tt in range(16):
            ours = HistoryFunc(1, tt)
            reference = BoolFunc(tt)
            for x in (0, 1):
                for y in (0, 1):
                    assert ours(x, [y]) == reference(x, y), (tt, x, y)

    def test_solve_x(self):
        func = HistoryFunc(2, 0b10100101)  # 8-entry table for 3 inputs
        for result in (0, 1):
            for history in itertools.product((0, 1), repeat=2):
                for x in func.solve_x(result, list(history)):
                    assert func(x, list(history)) == result

    def test_validation(self):
        with pytest.raises(ValueError):
            HistoryFunc(0, 0)
        with pytest.raises(ValueError):
            HistoryFunc(1, 1 << 16)
        with pytest.raises(ValueError):
            HistoryFunc(1, 3)(0, [0, 1])


class TestSolver:
    def test_h1_rtn_matches_main_theory(self):
        for k in (2, 3, 4, 5):
            assert theory_rtn(k, 1) == theory_row(k).reduced_transitions

    def test_h2_known_values(self):
        # Extension finding: two anchor bits make h=2 *worse* at k=3,
        # equal at k=4, better at k>=5.
        assert theory_rtn(3, 2) == 4 > theory_rtn(3, 1) == 2
        assert theory_rtn(4, 2) == theory_rtn(4, 1) == 10
        assert theory_rtn(5, 2) == 26 < theory_rtn(5, 1) == 32
        assert theory_rtn(6, 2) == 70 < theory_rtn(6, 1) == 90

    @given(words)
    @settings(max_examples=100, deadline=None)
    def test_h1_roundtrip(self, word):
        solver = MultiHistorySolver(1)
        transitions, code, func = solver.solve(word)
        assert solver.decode(code, func) == word
        assert count_transitions(code) == transitions

    @given(words)
    @settings(max_examples=50, deadline=None)
    def test_h2_roundtrip(self, word):
        solver = MultiHistorySolver(2)
        transitions, code, func = solver.solve(word)
        assert solver.decode(code, func) == word
        assert transitions <= count_transitions(word)

    def test_short_word_passthrough(self):
        solver = MultiHistorySolver(2)
        transitions, code, func = solver.solve([1, 0])
        assert code == [1, 0]
        assert transitions == 1

    def test_anchor_bits_preserved(self):
        solver = MultiHistorySolver(2)
        for word in itertools.product((0, 1), repeat=6):
            _, code, _ = solver.solve(list(word))
            assert tuple(code[:2]) == word[:2]

    def test_restricted_function_pool(self):
        # A solver restricted to identity alone reproduces the input.
        solver = MultiHistorySolver(2, [identity_function(2)])
        word = [0, 1, 0, 1, 1]
        transitions, code, _ = solver.solve(word)
        assert code == word
        assert transitions == count_transitions(word)
