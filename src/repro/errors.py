"""Structured exception hierarchy for the whole reproduction.

Every error the decode/deploy path can raise derives from
:class:`ReproError`, so callers (the flow, the loader, the
fault-injection campaign) can distinguish *detected* faults from
genuine programming bugs with one ``except`` clause.  Each concrete
class additionally subclasses the builtin its call sites historically
raised (``RuntimeError`` / ``ValueError``), so pre-existing handlers
keep working.

The hierarchy:

``ReproError``
    ``DecodeFault``             fetch stream violates the decode protocol
    ``TableIntegrityError``     TT/BBIT read fails a parity or bounds check
    ``BundleFormatError``       firmware bundle fails load-time validation
    ``DecodeVerificationError`` replayed decode did not restore the image
    ``EncodingError``           encoder-internal invariant violated
    ``CampaignError``           fault-injection campaign misconfigured
    ``TableCapacityError``      table programming exceeds physical entries
    ``VerifyError``             verification campaign misconfigured
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every structured error in :mod:`repro`."""


class DecodeFault(ReproError, RuntimeError):
    """The fetch stream violates the decode protocol, e.g. jumping
    into the middle of an encoded basic block, or a trace ending while
    a block is still being decoded."""


class TableIntegrityError(ReproError, RuntimeError):
    """A TT or BBIT read failed an integrity check: the entry's parity
    word does not match its contents, or an index walked outside the
    table's populated range."""


class BundleFormatError(ReproError, ValueError):
    """A firmware bundle failed load-time validation (bad JSON,
    unsupported version, digest mismatch, dangling BBIT->TT reference,
    out-of-range words, ...)."""


class DecodeVerificationError(ReproError, RuntimeError):
    """The post-encode hardware replay failed to restore the original
    instruction stream bit-exactly."""


class EncodingError(ReproError, RuntimeError):
    """An encoder-internal invariant was violated (e.g. no feasible
    code word although identity is always feasible)."""


class CampaignError(ReproError, RuntimeError):
    """The fault-injection campaign was misconfigured or could not
    prepare its deployment target."""


class TableCapacityError(ReproError, ValueError):
    """Raised when a load exceeds the table's physical entry count."""


class VerifyError(ReproError, RuntimeError):
    """The differential verification campaign was misconfigured (an
    unknown mutation, an unreplayable counterexample, ...).  Actual
    divergences are never raised — they are recorded as
    counterexamples and reported."""
