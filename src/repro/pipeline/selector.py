"""Per-region scheme selection: the encoder zoo meets the pipeline.

The regional flow (:mod:`repro.pipeline.regional`) already decomposes
a program into top-level hot-loop regions.  This module makes the
*scheme* a per-region decision: every registered
:class:`~repro.baselines.protocol.Encoder` backend — plus the paper's
TT/BBIT transformation and the do-nothing ``raw`` option — is measured
on each region's actual fetch traffic, and the cheapest scheme within
the configured hardware budget wins.  The result is a mixed-scheme
:class:`~repro.pipeline.bundle.EncodingBundle` whose ``regions``
metadata tags each hot region with its scheme and fitted config, which
:class:`~repro.hw.fetch_decoder.FetchDecoder` understands at fetch
time.

Cost model (documented in docs/encoders.md): every transition of the
trace is attributed to exactly one bucket.  A transition whose source
and destination fetches both fall in region R is *intra-region*
traffic, charged to R under whichever scheme R uses; all other
transitions (outside any region, or crossing a region boundary) are
*residual* and always charged at the raw-image rate.  Because the
mixed configuration takes the per-region minimum over a candidate set
that contains every single-scheme configuration's per-region cost,
``mixed <= best single scheme`` holds on every workload by
construction — and the accompanying tests measure it anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.baselines.protocol import (
    ENCODER_REGISTRY,
    make_encoder,
    registered_schemes,
)
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.profile import profile_trace
from repro.core.program_codec import encode_basic_block
from repro.core.transitions import word_transitions
from repro.errors import DecodeVerificationError, EncodingError
from repro.isa.assembler import Program
from repro.obs import OBS
from repro.pipeline.bundle import EncodingBundle, _digest
from repro.pipeline.regional import RegionPlan, plan_regions
from repro.sim.bus import count_trace_transitions

#: scheme tags that are not encoder-zoo backends
SCHEME_TTBBIT = "ttbbit"
SCHEME_RAW = "raw"


@dataclass(frozen=True)
class SelectorBudget:
    """Hardware ceiling a candidate scheme must fit under."""

    max_table_bits: int = 8192
    max_extra_lines: int = 8


@dataclass
class RegionChoice:
    """The selector's verdict for one hot region."""

    header: int
    blocks: tuple[int, ...]  # region body block starts, sorted
    scheme: str
    transitions: int
    raw_transitions: int
    candidates: Dict[str, int | None]  # scheme -> cost (None: over budget)
    config: dict = field(default_factory=dict)
    config_digest: str = ""
    fetches: int = 0

    @property
    def savings(self) -> int:
        return self.raw_transitions - self.transitions


@dataclass
class SelectorResult:
    """A full per-region selection over one workload."""

    name: str
    block_size: int
    baseline_transitions: int
    residual_transitions: int
    choices: List[RegionChoice]
    bundle: EncodingBundle

    @property
    def mixed_transitions(self) -> int:
        return self.residual_transitions + sum(
            c.transitions for c in self.choices
        )

    @property
    def reduction_percent(self) -> float:
        if self.baseline_transitions == 0:
            return 0.0
        return (
            100.0
            * (self.baseline_transitions - self.mixed_transitions)
            / self.baseline_transitions
        )

    def single_scheme_transitions(self, scheme: str) -> int:
        """Whole-trace cost of forcing ``scheme`` onto every region
        (regions where it is over budget / not applicable fall back to
        raw) — the yardstick for the never-worse guarantee."""
        total = self.residual_transitions
        for choice in self.choices:
            cost = choice.candidates.get(scheme)
            total += choice.raw_transitions if cost is None else cost
        return total


def _region_runs(
    cfg: ControlFlowGraph,
    plans: Sequence[RegionPlan],
    trace: Sequence[int],
) -> Dict[int, List[List[int]]]:
    """Maximal consecutive stretches of the trace inside each region,
    as lists of fetch addresses, keyed by region header."""
    block_to_header: Dict[int, int] = {}
    for plan in plans:
        for start in plan.blocks:
            block_to_header[start] = plan.header
    runs: Dict[int, List[List[int]]] = {plan.header: [] for plan in plans}
    current: int | None = None
    for pc in trace:
        header = block_to_header.get(cfg.block_of(pc).start)
        if header is None:
            current = None
            continue
        if header is not current:
            runs[header].append([])
            current = header
        runs[header][-1].append(pc)
    return runs


def _runs_cost(runs: List[List[int]], words_of) -> int:
    return sum(word_transitions([words_of(pc) for pc in run]) for run in runs)


class SchemeSelector:
    """Measure every backend per region and emit a mixed-scheme bundle."""

    def __init__(
        self,
        block_size: int,
        tt_capacity: int = 16,
        bbit_capacity: int = 16,
        budget: SelectorBudget | None = None,
        schemes: Sequence[str] | None = None,
    ):
        self.block_size = block_size
        self.tt_capacity = tt_capacity
        self.bbit_capacity = bbit_capacity
        self.budget = budget or SelectorBudget()
        self.schemes = tuple(schemes) if schemes is not None else registered_schemes()
        unknown = [s for s in self.schemes if s not in ENCODER_REGISTRY]
        if unknown:
            raise EncodingError(f"unknown encoder scheme(s): {unknown}")

    # ------------------------------------------------------------------

    def run(
        self, program: Program, trace: Sequence[int], name: str = "program"
    ) -> SelectorResult:
        with OBS.tracer.span(
            "selector.run", workload=name, fetches=len(trace)
        ):
            result = self._run(program, trace, name)
        if OBS.enabled:
            OBS.registry.counter(
                "selector.runs", "per-region scheme selections", workload=name
            ).inc()
            for choice in result.choices:
                OBS.registry.counter(
                    "selector.region_choices",
                    "regions assigned to a scheme by the selector",
                    scheme=choice.scheme,
                ).inc()
            OBS.registry.gauge(
                "selector.mixed_transitions",
                "measured transitions of the mixed-scheme configuration",
                workload=name,
            ).set(result.mixed_transitions)
        return result

    def _run(
        self, program: Program, trace: Sequence[int], name: str
    ) -> SelectorResult:
        cfg = ControlFlowGraph.build(program)
        profile = profile_trace(cfg, trace)
        plans = plan_regions(
            cfg,
            profile,
            self.block_size,
            tt_capacity=self.tt_capacity,
            bbit_capacity=self.bbit_capacity,
        )
        base = program.text_base
        original_of = lambda pc: program.words[(pc - base) >> 2]
        runs_by_header = _region_runs(cfg, plans, trace)

        baseline = count_trace_transitions(program, trace)
        image = list(program.words)
        regions_meta: List[dict] = []
        tt_entries: List[dict] = []
        bbit_entries: List[dict] = []
        choices: List[RegionChoice] = []
        intra_raw_total = 0

        for plan in plans:
            runs = runs_by_header[plan.header]
            region_words = [original_of(pc) for run in runs for pc in run]
            raw_cost = _runs_cost(runs, original_of)
            intra_raw_total += raw_cost
            candidates: Dict[str, int | None] = {SCHEME_RAW: raw_cost}

            # --- the paper's TT/BBIT scheme --------------------------
            tt_patch = self._encode_ttbbit(cfg, program, plan)
            if tt_patch is not None:
                patched, _, _ = tt_patch
                candidates[SCHEME_TTBBIT] = _runs_cost(
                    runs, lambda pc: patched[(pc - base) >> 2]
                )
            else:
                candidates[SCHEME_TTBBIT] = None

            # --- every registered zoo backend ------------------------
            encoders = {}
            for scheme in self.schemes:
                encoder = make_encoder(scheme).fit(region_words)
                if not encoder.budget().fits(
                    self.budget.max_table_bits, self.budget.max_extra_lines
                ):
                    candidates[scheme] = None
                    continue
                cost = 0
                ok = True
                for run in runs:
                    run_words = [original_of(pc) for pc in run]
                    stream = encoder.encode(run_words)
                    if encoder.decode(stream) != run_words:
                        ok = False  # never select a scheme that misdecodes
                        break
                    cost += stream.transitions()
                candidates[scheme] = cost if ok else None
                if ok:
                    encoders[scheme] = encoder

            # --- choose: first strict minimum in deterministic order -
            order = [SCHEME_TTBBIT, SCHEME_RAW] + sorted(self.schemes)
            best_scheme = SCHEME_RAW
            best_cost = raw_cost
            for scheme in order:
                cost = candidates.get(scheme)
                if cost is not None and cost < best_cost:
                    best_scheme, best_cost = scheme, cost

            choice = RegionChoice(
                header=plan.header,
                blocks=tuple(sorted(plan.blocks)),
                scheme=best_scheme,
                transitions=best_cost,
                raw_transitions=raw_cost,
                candidates=candidates,
                fetches=sum(len(run) for run in runs),
            )

            # --- commit the winner into the image/bundle -------------
            if best_scheme == SCHEME_TTBBIT:
                patched, region_tt, region_bbit = tt_patch  # type: ignore[misc]
                tt_base = len(tt_entries)
                tt_entries.extend(region_tt)
                blocks_meta = []
                for entry in region_bbit:
                    bbit_entries.append(
                        {
                            "pc": entry["pc"],
                            "tt_index": entry["tt_index"] + tt_base,
                            "num_instructions": entry["num_instructions"],
                        }
                    )
                    blocks_meta.append(
                        {
                            "pc": entry["pc"],
                            "num_instructions": entry["num_instructions"],
                        }
                    )
                    first = program.index_of(entry["pc"])
                    for offset in range(entry["num_instructions"]):
                        image[first + offset] = patched[first + offset]
                regions_meta.append(
                    {
                        "header": plan.header,
                        "scheme": SCHEME_TTBBIT,
                        "blocks": blocks_meta,
                    }
                )
            else:
                blocks_meta = [
                    {
                        "pc": start,
                        "num_instructions": len(cfg.blocks[start]),
                    }
                    for start in sorted(plan.blocks)
                ]
                meta = {
                    "header": plan.header,
                    "scheme": best_scheme,
                    "blocks": blocks_meta,
                }
                if best_scheme != SCHEME_RAW:
                    encoder = encoders[best_scheme]
                    meta["config"] = encoder.to_config()
                    meta["config_digest"] = encoder.config_digest()
                    choice.config = meta["config"]
                    choice.config_digest = meta["config_digest"]
                    if encoder.deployable:
                        # burn the recoding into the stored image
                        for block in blocks_meta:
                            first = program.index_of(block["pc"])
                            for offset in range(block["num_instructions"]):
                                image[first + offset] = encoder.encode_word(
                                    image[first + offset]
                                )
                regions_meta.append(meta)
            choices.append(choice)

        bundle = EncodingBundle(
            name=name,
            block_size=self.block_size,
            text_base=program.text_base,
            encoded_words=image,
            original_digest=_digest(program.words),
            tt_entries=tt_entries,
            bbit_entries=bbit_entries,
            regions=regions_meta,
        )
        bundle.validate()
        if not bundle.deploy_and_check(program, trace):
            raise DecodeVerificationError(
                f"{name}: mixed-scheme bundle failed bit-identical decode"
            )
        return SelectorResult(
            name=name,
            block_size=self.block_size,
            baseline_transitions=baseline,
            residual_transitions=baseline - intra_raw_total,
            choices=choices,
            bundle=bundle,
        )

    # ------------------------------------------------------------------

    def _encode_ttbbit(
        self, cfg: ControlFlowGraph, program: Program, plan: RegionPlan
    ):
        """Encode the region's selected blocks with the paper's scheme;
        returns (patched image copy, tt entry dicts, bbit entry dicts)
        or None when the region selected no encodable blocks."""
        if not plan.selected:
            return None
        patched = list(program.words)
        tt_entries: List[dict] = []
        bbit_entries: List[dict] = []
        tt_index = 0
        for start in plan.selected:
            block = cfg.blocks[start]
            length = plan.lengths[start]
            encoding = encode_basic_block(block.words[:length], self.block_size)
            base_index = tt_index
            for row, (seg_start, seg_len) in zip(
                encoding.selectors(), encoding.bounds
            ):
                is_tail = seg_start + seg_len >= length
                tt_entries.append(
                    {
                        "selectors": list(row),
                        "end": is_tail,
                        "count": (
                            (seg_len if seg_start == 0 else seg_len - 1)
                            if is_tail
                            else 0
                        ),
                    }
                )
                tt_index += 1
            bbit_entries.append(
                {"pc": start, "tt_index": base_index, "num_instructions": length}
            )
            first = program.index_of(start)
            for offset, word in enumerate(encoding.encoded_words):
                patched[first + offset] = word
        return patched, tt_entries, bbit_entries


def select_for_workload(
    name: str,
    block_size: int = 5,
    tt_capacity: int = 16,
    bbit_capacity: int = 16,
    budget: SelectorBudget | None = None,
    schemes: Sequence[str] | None = None,
) -> SelectorResult:
    """Run the per-region selector on a registry workload."""
    from repro.workloads.registry import build_workload

    workload = build_workload(name)
    cpu, trace = workload.run()
    selector = SchemeSelector(
        block_size,
        tt_capacity=tt_capacity,
        bbit_capacity=bbit_capacity,
        budget=budget,
        schemes=schemes,
    )
    return selector.run(cpu.program, trace, name)
