"""The fetch-path decode engine (Section 7.2, Figure 5).

Walks a fetch stream exactly as the hardware would:

* On every fetch the PC is matched against the BBIT.  A hit activates
  decoding for that basic block: the entry supplies the base TT index,
  a segment-position counter resets, and the per-line one-bit history
  registers load from the first (pass-through) instruction.
* While active, each fetched word is restored by applying the current
  TT entry's per-line transformations to the stored word and the
  previous *decoded* word; the segment counter advances to the next TT
  entry every ``k - 1`` instructions (one-bit overlap).
* The entry with the E bit set finishes after CT decoded instructions;
  the engine then deactivates until the next BBIT hit.
* A non-sequential fetch (taken branch out of the block) also
  deactivates the engine; the new PC immediately re-probes the BBIT.

Fetches that miss the BBIT pass through unchanged — the identity
treatment for unencoded code.

Fault handling
--------------

The engine runs in one of two modes:

``strict`` (default)
    Any detected fault — a fetch-protocol violation (entering an
    encoded block mid-way, a trace ending mid-block under
    :meth:`FetchDecoder.finalize`) or a table integrity failure
    (TT/BBIT parity mismatch, TT index outside the populated range) —
    raises the matching :class:`~repro.errors.ReproError` subclass.

``recover``
    The engine never raises on a corrupted block.  It records the
    event in :attr:`FetchDecoder.recovery_events`, abandons decoding,
    and falls back to pass-through fetches for the remainder of the
    run of sequential fetches (the rest of the block); the next BBIT
    hit or non-sequential fetch re-arms normal operation.  Decoded
    output for the abandoned block is, of course, the raw stored
    words — recovery trades silent mis-decoding for an *explicit*
    degraded region that software can act on.

``degraded``
    The strongest fallback, available when a golden (pre-encoding)
    image lookup is attached.  On unrecoverable TT/BBIT corruption the
    engine *demotes* the affected block: its addresses move from
    :attr:`FetchDecoder.encoded_region` into
    :attr:`FetchDecoder.degraded_region` and every subsequent fetch of
    them is served from the golden image — so the decoded stream stays
    bit-identical to the original program, at the cost of losing the
    power benefit for that block.  Each demotion is counted
    (``decoder.degradations``) alongside the per-fetch
    ``decoder.golden_served`` volume.  After the scrubber repairs the
    tables from a golden bundle, :meth:`FetchDecoder.restore_degraded`
    re-arms the demoted blocks.

Note the single-bit story never reaches any of these modes: the
tables' SEC-DED rows correct one flipped bit transparently inside
:meth:`TransformationTable.read` / BBIT ``lookup``, so only
uncorrectable (double-bit or worse) corruption surfaces here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import bitplane
from repro.core.stream_codec import _segment_bounds_cached
from repro.core.transformations import by_selector
from repro.errors import DecodeFault, SchemeTagError, TableIntegrityError
from repro.hw.bbit import BasicBlockIdentificationTable
from repro.hw.tt import TransformationTable
from repro.obs import OBS

__all__ = ["FetchDecoder", "DecodeFault", "SchemeTagError", "TableIntegrityError"]

#: region scheme tag meaning "the paper's TT/BBIT transformation" —
#: such regions flow through the normal table-driven decode path.
SCHEME_TTBBIT = "ttbbit"

#: Hardware selector code -> tau truth table, for rebuilding a TT
#: row's per-line decode planes on the bulk bitplane path.
_SELECTOR_TRUTH_TABLES = tuple(
    by_selector(selector).func.truth_table for selector in range(8)
)

#: Retained recover-mode events; older events beyond the cap roll off
#: (counted in ``recovery_events_dropped``) so a long recover-mode run
#: cannot grow without bound.
DEFAULT_RECOVERY_EVENT_CAPACITY = 1024


@dataclass
class _ActiveBlock:
    base_tt_index: int
    start_pc: int
    instructions_total: int
    index: int  # instruction index within the basic block


class FetchDecoder:
    """Behavioural model of the decode hardware on the fetch path."""

    def __init__(
        self,
        tt: TransformationTable,
        bbit: BasicBlockIdentificationTable,
        block_size: int,
        encoded_region: set[int] | None = None,
        mode: str = "strict",
        recovery_event_capacity: int = DEFAULT_RECOVERY_EVENT_CAPACITY,
        golden_lookup=None,
        region_schemes: dict[int, str] | None = None,
        scheme_word_decoders: dict[str, object] | None = None,
    ):
        if isinstance(block_size, bool) or not isinstance(block_size, int):
            raise TypeError(
                f"block_size must be an int, got {type(block_size).__name__}"
            )
        if block_size < 2:
            raise ValueError("block size must be >= 2")
        if mode not in ("strict", "recover", "degraded"):
            raise ValueError(
                f"mode must be 'strict', 'recover' or 'degraded', got {mode!r}"
            )
        if mode == "degraded" and golden_lookup is None:
            raise ValueError(
                "degraded mode needs a golden_lookup (pc -> original word)"
            )
        self.tt = tt
        self.bbit = bbit
        self.block_size = block_size
        self.mode = mode
        #: Addresses whose stored words are encoded; used to detect
        #: protocol violations (entering an encoded block mid-way).
        #: A caller-supplied empty set is kept as-is (shared, mutable).
        self.encoded_region = (
            encoded_region if encoded_region is not None else set()
        )
        #: Golden-image lookup (pc -> original word) backing degraded
        #: mode; also usable by the scrubber's verification sweeps.
        self.golden_lookup = golden_lookup
        #: Addresses demoted out of :attr:`encoded_region` after an
        #: unrecoverable fault; served from the golden image.
        self.degraded_region: set[int] = set()
        #: Mixed-scheme bundle support: ``pc -> scheme tag`` for every
        #: address inside a tagged region.  Tags equal to
        #: :data:`SCHEME_TTBBIT` flow through the table path; other
        #: tags are served through ``scheme_word_decoders[tag]`` — a
        #: per-word decode callable for deployable recoders, or
        #: ``None`` for bus codecs whose stored words are raw.  A tag
        #: with no entry in ``scheme_word_decoders`` is a fault
        #: (:class:`~repro.errors.SchemeTagError`).
        self.region_schemes = region_schemes or {}
        self.scheme_word_decoders = scheme_word_decoders or {}
        self.scheme_decoded_instructions = 0
        self._active: _ActiveBlock | None = None
        self._history_word = 0
        self._expected_pc: int | None = None
        #: True while recover mode is passing a corrupted/mid-entered
        #: block through raw; cleared by any non-sequential fetch or
        #: BBIT hit.
        self._passthrough_run = False
        self.decoded_instructions = 0
        self.passthrough_instructions = 0
        #: Activity counters for the overhead argument (Section 7.2):
        #: TT reads happen once per decoded (non-anchor) instruction,
        #: BBIT probes only when the engine is inactive.
        self.tt_reads = 0
        if recovery_event_capacity < 1:
            raise ValueError("recovery_event_capacity must be >= 1")
        self.recovery_event_capacity = recovery_event_capacity
        #: One dict per recover-mode event: ``kind`` (``mid_block_entry``,
        #: ``bbit_integrity``, ``tt_integrity``, ``trace_truncation``),
        #: the faulting ``pc`` and the original error ``message``.  A
        #: bounded ring: the newest ``recovery_event_capacity`` events
        #: are kept, the overflow is counted in
        #: :attr:`recovery_events_dropped` (and on the metrics
        #: registry) instead of growing without bound.
        self.recovery_events: list[dict] = []
        self.recovery_events_dropped = 0
        #: Degraded-mode bookkeeping: demotion events and the number
        #: of fetches served straight from the golden image.
        self.degradations = 0
        self.golden_served_instructions = 0

    def reset(self) -> None:
        """Return to the idle state *and* zero all statistics, so a
        decoder reused across :meth:`decode_trace` calls does not leak
        counters from the previous trace."""
        self._active = None
        self._history_word = 0
        self._expected_pc = None
        self._passthrough_run = False
        self.decoded_instructions = 0
        self.passthrough_instructions = 0
        self.scheme_decoded_instructions = 0
        self.tt_reads = 0
        self.recovery_events = []
        self.recovery_events_dropped = 0
        # degraded_region intentionally survives a reset: demotion is
        # a persistent memory-layout change, not a per-trace statistic.
        self.degradations = 0
        self.golden_served_instructions = 0

    def restore_degraded(self) -> int:
        """Re-arm every demoted block (after the tables were repaired
        from a golden bundle); returns how many addresses moved back
        into the encoded region."""
        restored = len(self.degraded_region)
        self.encoded_region |= self.degraded_region
        self.degraded_region.clear()
        return restored

    # ------------------------------------------------------------------

    def _degrade(
        self, kind: str, pc: int, message: str, block: _ActiveBlock | None = None
    ) -> None:
        """Demote the faulting address — or, when the block extent is
        known, the whole block — out of the encoded region."""
        pcs = [pc]
        if block is not None:
            pcs = [
                block.start_pc + 4 * i
                for i in range(block.instructions_total)
            ]
        for addr in pcs:
            self.encoded_region.discard(addr)
            self.degraded_region.add(addr)
        self.degradations += 1
        self._recover(kind, pc, message)
        if OBS.enabled:
            OBS.registry.counter(
                "decoder.degradations",
                "blocks demoted to golden-image service after an "
                "unrecoverable table fault",
                kind=kind,
            ).inc()

    def _serve_golden(self, pc: int) -> int:
        self.golden_served_instructions += 1
        self._active = None
        self._passthrough_run = False
        self._expected_pc = None
        return self.golden_lookup(pc)

    def _recover(self, kind: str, pc: int, message: str) -> None:
        if len(self.recovery_events) >= self.recovery_event_capacity:
            self.recovery_events.pop(0)
            self.recovery_events_dropped += 1
            if OBS.enabled:
                OBS.registry.counter(
                    "decoder.recovery_events_dropped",
                    "recover-mode events rolled off the bounded ring",
                ).inc()
        self.recovery_events.append(
            {"kind": kind, "pc": pc, "message": message}
        )
        if OBS.enabled:
            OBS.registry.counter(
                "decoder.recoveries",
                "recover-mode fallbacks to pass-through",
                kind=kind,
            ).inc()

    def _fetch_scheme_region(self, pc: int, stored_word: int, scheme: str) -> int:
        """Serve a fetch from a region encoded by a non-TT/BBIT
        backend of the encoder zoo.

        Deployable word recoders registered a per-word decode callable;
        bus codecs registered ``None`` (their stored words are raw and
        pass through).  An unknown tag is treated like any other
        decode-path fault: strict raises :class:`SchemeTagError`,
        recover/degraded fall back to the golden bundle when attached.
        """
        if scheme not in self.scheme_word_decoders:
            fault = SchemeTagError(
                f"unknown region scheme tag {scheme!r} at {pc:#010x}"
            )
            if self.mode == "strict":
                raise fault
            if self.mode == "degraded":
                self._degrade("scheme_tag", pc, str(fault))
                return self._serve_golden(pc)
            self._recover("scheme_tag", pc, str(fault))
            if self.golden_lookup is not None:
                return self._serve_golden(pc)
            self.passthrough_instructions += 1
            self._active = None
            self._expected_pc = None
            return stored_word
        # Entering a zoo-encoded region always leaves the TT engine.
        self._active = None
        self._expected_pc = None
        self._passthrough_run = False
        decode_word = self.scheme_word_decoders[scheme]
        if decode_word is None:
            self.passthrough_instructions += 1
            return stored_word
        self.scheme_decoded_instructions += 1
        return decode_word(stored_word)

    def fetch(self, pc: int, stored_word: int) -> int:
        """Process one fetch; returns the restored instruction word."""
        if pc in self.degraded_region:
            # The block was demoted after an unrecoverable fault: its
            # stored words are untrustworthy, serve the golden image.
            return self._serve_golden(pc)
        if self.region_schemes:
            scheme = self.region_schemes.get(pc)
            if scheme is not None and scheme != SCHEME_TTBBIT:
                return self._fetch_scheme_region(pc, stored_word, scheme)
        if self._active is not None and pc != self._expected_pc:
            # Taken branch out of the current block.
            self._active = None
        if self._passthrough_run and pc != self._expected_pc:
            self._passthrough_run = False
        if self._active is None:
            entry = None
            fault: Exception | None = None
            try:
                entry = self.bbit.lookup(pc)
            except TableIntegrityError as err:
                fault = err
            if (
                fault is None
                and entry is None
                and not self._passthrough_run
                and pc in self.encoded_region
            ):
                fault = DecodeFault(
                    f"fetch of encoded word at {pc:#010x} without an "
                    "active basic block (mid-block entry?)"
                )
            if fault is not None:
                if self.mode == "strict":
                    raise fault
                kind = (
                    "bbit_integrity"
                    if isinstance(fault, TableIntegrityError)
                    else "mid_block_entry"
                )
                if self.mode == "degraded":
                    # The block extent is unknown (the BBIT row is the
                    # thing that's broken): demote this address; the
                    # block's remaining words demote themselves one by
                    # one as their mid-block fetches fault here too.
                    self._degrade(kind, pc, str(fault))
                    return self._serve_golden(pc)
                self._recover(kind, pc, str(fault))
                self._passthrough_run = True
                entry = None
            if entry is None:
                self.passthrough_instructions += 1
                # Inside a pass-through run only sequential successors
                # continue it; a plain unencoded fetch expects nothing.
                self._expected_pc = pc + 4 if self._passthrough_run else None
                return stored_word
            self._passthrough_run = False
            self._active = _ActiveBlock(
                base_tt_index=entry.tt_index,
                start_pc=pc,
                instructions_total=entry.num_instructions,
                index=0,
            )

        active = self._active
        if active.index == 0:
            decoded = stored_word  # block's first instruction passes through
        else:
            segment = (active.index - 1) // (self.block_size - 1)
            try:
                # read() bounds- and (when enabled) parity-checks the row.
                tt_entry = self.tt.read(active.base_tt_index + segment)
            except TableIntegrityError as err:
                if self.mode == "strict":
                    raise
                if self.mode == "degraded":
                    # The active block's extent is known: demote all of
                    # it at once and serve this fetch from the golden
                    # image (earlier words already decoded correctly).
                    block = self._active
                    self._active = None
                    self._degrade("tt_integrity", pc, str(err), block=block)
                    return self._serve_golden(pc)
                # Abandon the block: this fetch and the rest of the
                # block fall back to pass-through.
                self._recover("tt_integrity", pc, str(err))
                self._active = None
                self._passthrough_run = True
                self.passthrough_instructions += 1
                self._expected_pc = pc + 4
                return stored_word
            self.tt_reads += 1
            decoded = tt_entry.decode(stored_word, self._history_word)
        self._history_word = decoded
        self.decoded_instructions += 1
        active.index += 1
        if active.index >= active.instructions_total:
            self._active = None
            self._expected_pc = None
        else:
            self._expected_pc = pc + 4
        return decoded

    def finalize(self) -> None:
        """Declare the fetch stream over.  A trace that ends while a
        block is still being decoded (truncation) is a protocol fault:
        strict mode raises, recover mode records the event."""
        active = self._active
        if active is None:
            return
        remaining = active.instructions_total - active.index
        fault = DecodeFault(
            f"trace ended mid-block: block at {active.start_pc:#010x} "
            f"has {remaining} instruction(s) undecoded"
        )
        self._active = None
        self._expected_pc = None
        if self.mode == "strict":
            raise fault
        self._recover("trace_truncation", active.start_pc, str(fault))

    def stats(self) -> dict:
        """Counters plus recover-mode events, in one report-friendly dict."""
        return {
            "mode": self.mode,
            "decoded_instructions": self.decoded_instructions,
            "passthrough_instructions": self.passthrough_instructions,
            "scheme_decoded_instructions": self.scheme_decoded_instructions,
            "tt_reads": self.tt_reads,
            "bbit_lookups": self.bbit.lookups,
            "recoveries": len(self.recovery_events) + self.recovery_events_dropped,
            "recovery_events": list(self.recovery_events),
            "recovery_events_dropped": self.recovery_events_dropped,
            "degradations": self.degradations,
            "golden_served_instructions": self.golden_served_instructions,
            "degraded_addresses": len(self.degraded_region),
            "ecc_corrections": (
                self.tt.ecc_corrections + self.bbit.ecc_corrections
            ),
            "ecc_double_faults": (
                self.tt.ecc_double_faults + self.bbit.ecc_double_faults
            ),
        }

    def publish_metrics(self, table_baseline: dict | None = None) -> None:
        """Route this decoder's counters (and its tables' activity
        since ``table_baseline``) onto the process metrics registry."""
        if not OBS.enabled:
            return
        base = table_baseline or {}
        registry = OBS.registry
        registry.counter(
            "decoder.decoded_instructions",
            "instructions restored through a TT transformation chain",
            mode=self.mode,
        ).inc(self.decoded_instructions)
        registry.counter(
            "decoder.passthrough_instructions",
            "fetches served unchanged (BBIT miss or degraded block)",
            mode=self.mode,
        ).inc(self.passthrough_instructions)
        registry.counter(
            "decoder.tt_reads", "TT row reads on the fetch path", mode=self.mode
        ).inc(self.tt_reads)
        registry.counter(
            "decoder.bbit_lookups", "BBIT CAM probes", mode=self.mode
        ).inc(self.bbit.lookups - base.get("bbit_lookups", 0))
        registry.counter(
            "decoder.bbit_hits", "BBIT CAM hits", mode=self.mode
        ).inc(self.bbit.hits - base.get("bbit_hits", 0))
        registry.counter(
            "decoder.parity_checks",
            "TT + BBIT parity words recomputed and compared",
            mode=self.mode,
        ).inc(
            self.tt.parity_checks
            + self.bbit.parity_checks
            - base.get("parity_checks", 0)
        )
        registry.counter(
            "decoder.parity_failures",
            "TT + BBIT parity mismatches detected",
            mode=self.mode,
        ).inc(
            self.tt.parity_failures
            + self.bbit.parity_failures
            - base.get("parity_failures", 0)
        )
        registry.counter(
            "decoder.golden_served",
            "fetches served from the golden image for demoted blocks",
            mode=self.mode,
        ).inc(self.golden_served_instructions)
        if self.scheme_decoded_instructions:
            registry.counter(
                "decoder.scheme_decoded_instructions",
                "fetches restored through an encoder-zoo word recoder",
                mode=self.mode,
            ).inc(self.scheme_decoded_instructions)

    def _table_baseline(self) -> dict:
        """Snapshot of the shared tables' cumulative counters, so a
        :meth:`decode_trace` publishes only its own activity."""
        return {
            "bbit_lookups": self.bbit.lookups,
            "bbit_hits": self.bbit.hits,
            "parity_checks": self.tt.parity_checks + self.bbit.parity_checks,
            "parity_failures": (
                self.tt.parity_failures + self.bbit.parity_failures
            ),
        }

    # ------------------------------------------------------------------

    def decode_trace(
        self,
        addresses: list[int],
        stored_image_lookup,
        finalize: bool = False,
        use_bitplane: bool = True,
    ) -> list[int]:
        """Decode a full fetch trace.  ``stored_image_lookup`` maps a
        PC to the stored (possibly encoded) word.  ``finalize=True``
        additionally treats end-of-trace as end-of-stream, flagging a
        truncation that leaves a block half-decoded.

        In strict mode (with no demoted blocks) full sequential
        basic-block occurrences decode in bulk through the lane-packed
        bitplane scan, bit-identical to the per-fetch walk; anything
        irregular — partial occurrences, BBIT misses, mid-block
        entries — falls back to :meth:`fetch` so protocol faults and
        table integrity errors surface exactly as they would
        instruction by instruction.  ``use_bitplane=False`` (and the
        recover/degraded modes, whose per-fetch fault contracts are the
        point) force the scalar walk.  Architectural counters
        (``decoded_instructions``, ``tt_reads``, BBIT probes) are kept
        identical on both paths; only the *internal* table-row read
        volume differs (the bulk path reads each TT row once per block
        occurrence instead of once per instruction, so
        ``TransformationTable.parity_checks`` advances more slowly).
        """
        self.reset()
        baseline = self._table_baseline() if OBS.enabled else None
        with OBS.tracer.span(
            "decoder.decode_trace", mode=self.mode, fetches=len(addresses)
        ):
            if (
                use_bitplane
                and self.mode == "strict"
                and not self.degraded_region
                # mixed-scheme traces interleave zoo regions with TT
                # blocks; the scalar walk owns that dispatch.
                and not self.region_schemes
            ):
                decoded = self._decode_trace_bitplane(
                    addresses, stored_image_lookup
                )
            else:
                decoded = [
                    self.fetch(pc, stored_image_lookup(pc))
                    for pc in addresses
                ]
            if finalize:
                self.finalize()
        if OBS.enabled:
            self.publish_metrics(baseline)
        return decoded

    def _decode_trace_bitplane(
        self, addresses: list[int], stored_image_lookup
    ) -> list[int]:
        """Strict-mode bulk walk: one bitplane scan per clean
        sequential block occurrence, scalar :meth:`fetch` for
        everything else.  Repeated occurrences of an unchanged block
        (hot loops) reuse the decoded words via a per-trace memo keyed
        on the stored words themselves."""
        out: list[int] = []
        memo: dict[tuple, list[int]] = {}
        block_size = self.block_size
        index = 0
        total = len(addresses)
        while index < total:
            pc = addresses[index]
            if self._active is not None or self._passthrough_run:
                out.append(self.fetch(pc, stored_image_lookup(pc)))
                index += 1
                continue
            # Engine idle: probe the BBIT exactly as fetch() would
            # (strict-mode integrity errors propagate from the probe).
            entry = self.bbit.lookup(pc)
            if entry is None:
                if pc in self.encoded_region:
                    raise DecodeFault(
                        f"fetch of encoded word at {pc:#010x} without an "
                        "active basic block (mid-block entry?)"
                    )
                self.passthrough_instructions += 1
                self._expected_pc = None
                out.append(stored_image_lookup(pc))
                index += 1
                continue
            count = entry.num_instructions
            if (
                count < 2
                or index + count > total
                or any(
                    addresses[index + j] != pc + 4 * j
                    for j in range(1, count)
                )
            ):
                # Partial or truncated occurrence: hand the block to
                # the scalar engine without re-probing the BBIT.
                self._passthrough_run = False
                self._active = _ActiveBlock(
                    base_tt_index=entry.tt_index,
                    start_pc=pc,
                    instructions_total=count,
                    index=0,
                )
                self._expected_pc = pc
                out.append(self.fetch(pc, stored_image_lookup(pc)))
                index += 1
                continue
            stored = [
                stored_image_lookup(addresses[index + j])
                for j in range(count)
            ]
            key = (entry.tt_index, pc, tuple(stored))
            decoded_words = memo.get(key)
            if decoded_words is None:
                num_segments = (count - 2) // (block_size - 1) + 1
                plans = []
                for segment in range(num_segments):
                    # Same bounds- and SEC-DED checks, in the same row
                    # order, as the per-fetch path.
                    row = self.tt.read(entry.tt_index + segment)
                    plans.append(
                        tuple(
                            _SELECTOR_TRUTH_TABLES[selector]
                            for selector in row.selectors
                        )
                    )
                with OBS.tracer.span(
                    "decode.bitplane", words=count, segments=num_segments
                ):
                    decoded_words = bitplane.decode_block_bitplane(
                        stored,
                        _segment_bounds_cached(count, block_size, True),
                        tuple(plans),
                        width=len(plans[0]),
                    )
                memo[key] = decoded_words
            out.extend(decoded_words)
            # Architectural accounting identical to the per-fetch
            # walk: one TT read per non-anchor instruction, history =
            # the last decoded word, engine idle after the block.
            self.decoded_instructions += count
            self.tt_reads += count - 1
            self._history_word = decoded_words[-1]
            self._expected_pc = None
            index += count
        return out
