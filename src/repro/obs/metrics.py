"""Labelled metric families: counters, gauges, histograms.

The registry is the always-on half of the observability layer
(:mod:`repro.obs`): incrementing a counter is one attribute add, and
*fetching* a metric is one dict lookup on an interned key, so
instrumented code can afford to keep it live on warm paths.  The truly
hot inner loops (per-segment codec lookups, per-fetch decode) never
touch the registry directly — they keep plain local counters and
publish totals in bulk when a run completes.

Families group series that share a name and type but differ in label
values (``workload``, ``k``, ``line``, ``model``, ...), mirroring the
Prometheus data model the related benchmarking literature leans on:

>>> reg = MetricsRegistry()
>>> reg.counter("codec.blocks_encoded", workload="fir").inc()
>>> reg.counter("codec.blocks_encoded", workload="fft").inc(3)
>>> sorted(s.value for s in reg.family("codec.blocks_encoded").series())
[1, 3]

Histograms keep fixed cumulative buckets *and* a bounded value sample
for summary quantiles; both appear in :meth:`MetricsRegistry.snapshot`,
the JSON-ready structure ``RUN_report.json`` embeds.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets: exponential seconds-scale coverage from
#: 100 microseconds to ~100 s, suitable for span durations.
DEFAULT_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    100.0,
)

#: Upper bound on the per-histogram value sample kept for quantiles.
_SAMPLE_CAP = 4096


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: tuple[tuple[str, str], ...]) -> None:
        self.labels = labels
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def to_dict(self) -> dict:
        return {"labels": dict(self.labels), "value": self.value}

    def export_data(self) -> dict:
        return {"value": self.value}

    def merge_data(self, data: dict) -> None:
        value = data.get("value", 0)
        if isinstance(value, (int, float)) and value > 0:
            self.value += value


class Gauge:
    """A value that can go up and down (capacities, coverage, sizes)."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: tuple[tuple[str, str], ...]) -> None:
        self.labels = labels
        self.value = 0.0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount

    def to_dict(self) -> dict:
        return {"labels": dict(self.labels), "value": self.value}

    def export_data(self) -> dict:
        return {"value": self.value}

    def merge_data(self, data: dict) -> None:
        # Last-writer-wins: a gauge is a level, not a flow, and the
        # freshest worker observation is the best estimate we have.
        value = data.get("value")
        if isinstance(value, (int, float)):
            self.value = value


class Histogram:
    """Fixed cumulative buckets plus a bounded sample for quantiles.

    ``observe`` is O(log buckets); the sample keeps the first
    ``_SAMPLE_CAP`` observations (enough for the quantiles of any run
    this repo performs — a full campaign is a few thousand cases) and
    counts what it had to drop, so a truncated summary is visible
    rather than silent.
    """

    __slots__ = (
        "labels",
        "buckets",
        "bucket_counts",
        "count",
        "total",
        "min",
        "max",
        "_sample",
        "sample_dropped",
    )

    def __init__(
        self,
        labels: tuple[tuple[str, str], ...],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("histogram buckets must be strictly increasing")
        self.labels = labels
        self.buckets = tuple(buckets)
        self.bucket_counts = [0] * (len(buckets) + 1)  # last = +Inf
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._sample: list[float] = []
        self.sample_dropped = 0

    def observe(self, value: int | float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._sample) < _SAMPLE_CAP:
            self._sample.append(value)
        else:
            self.sample_dropped += 1

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        """Summary quantile from the retained sample (nearest-rank).

        The extremes are served from the *tracked* min/max rather than
        the sample, so q=0.0/q=1.0 stay exact even after the sample
        truncates; interior ranks use the textbook nearest-rank index
        ``ceil(q*n) - 1`` (the previous ``round``-based index suffered
        banker's rounding and could return the wrong neighbour).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return None
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        if not self._sample:
            return None
        ordered = sorted(self._sample)
        rank = math.ceil(q * len(ordered)) - 1
        return ordered[min(len(ordered) - 1, max(0, rank))]

    def to_dict(self) -> dict:
        return {
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "quantiles": {
                "p50": self.quantile(0.5),
                "p90": self.quantile(0.9),
                "p99": self.quantile(0.99),
            },
            "buckets": [
                {"le": le, "count": count}
                for le, count in zip(
                    [*self.buckets, "+Inf"], self.bucket_counts
                )
            ],
            "sample_dropped": self.sample_dropped,
        }

    def export_data(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "bounds": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
            "sample": list(self._sample),
            "sample_dropped": self.sample_dropped,
        }

    def merge_data(self, data: dict) -> None:
        """Fold another histogram's exported state into this one.

        Counter-like fields (count/sum/buckets) add; min/max take the
        extreme; the bounded sample absorbs the remote sample up to
        the cap, counting overflow in ``sample_dropped``.  Mismatched
        bucket bounds fall back to re-observing the remote sample so a
        merge never raises — at the cost of bucket fidelity for the
        values the remote side had already dropped.
        """
        count = data.get("count")
        if not isinstance(count, int) or count <= 0:
            return
        bounds = data.get("bounds")
        bucket_counts = data.get("bucket_counts")
        sample = [
            float(v)
            for v in data.get("sample", ())
            if isinstance(v, (int, float))
        ]
        if (
            isinstance(bounds, list)
            and tuple(bounds) == self.buckets
            and isinstance(bucket_counts, list)
            and len(bucket_counts) == len(self.bucket_counts)
        ):
            for i, n in enumerate(bucket_counts):
                self.bucket_counts[i] += int(n)
        else:
            # Foreign bucket layout: keep the distribution approximately
            # by re-binning the retained sample.
            for value in sample:
                self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.count += count
        self.total += float(data.get("sum", 0.0) or 0.0)
        for bound_attr, pick in (("min", min), ("max", max)):
            remote = data.get(bound_attr)
            if isinstance(remote, (int, float)):
                mine = getattr(self, bound_attr)
                setattr(
                    self,
                    bound_attr,
                    remote if mine is None else pick(mine, remote),
                )
        room = _SAMPLE_CAP - len(self._sample)
        self._sample.extend(sample[:room])
        overflow = max(0, len(sample) - room)
        dropped = data.get("sample_dropped", 0)
        self.sample_dropped += overflow + (
            dropped if isinstance(dropped, int) and dropped > 0 else 0
        )


_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All series sharing one metric name and type."""

    __slots__ = ("name", "type", "help", "_series")

    def __init__(self, name: str, type_: str, help_: str = "") -> None:
        self.name = name
        self.type = type_
        self.help = help_
        self._series: dict[tuple[tuple[str, str], ...], object] = {}

    def series(self) -> list:
        return list(self._series.values())

    def total(self) -> float:
        """Sum of all series values (counters/gauges) or counts."""
        if self.type == "histogram":
            return sum(s.count for s in self._series.values())
        return sum(s.value for s in self._series.values())

    def to_dict(self) -> dict:
        return {
            "type": self.type,
            "help": self.help,
            "series": [s.to_dict() for s in self._series.values()],
        }


class MetricsRegistry:
    """Process-wide metric store with labelled families.

    A family's type is fixed by its first registration; asking for the
    same name with a different type raises, which catches the classic
    "counter here, gauge there" drift at the call site.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        # Interned (name, labels) -> metric fast path, so warm call
        # sites cost one dict get after the first visit.
        self._interned: dict[tuple, object] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def _get(
        self,
        type_: str,
        name: str,
        help_: str,
        labels: dict,
        **extra,
    ):
        key = (name, tuple(sorted(labels.items())) if labels else ())
        metric = self._interned.get(key)
        # The class check keeps the fast path honest: an interned hit
        # under the wrong accessor (counter vs gauge) must still raise.
        if metric is not None and metric.__class__ is _TYPES[type_]:
            return metric
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, type_, help_)
                self._families[name] = family
            elif family.type != type_:
                raise ValueError(
                    f"metric {name!r} already registered as a "
                    f"{family.type}, cannot re-register as a {type_}"
                )
            elif help_ and not family.help:
                family.help = help_
            metric = self._interned.get(key)
            if metric is not None:
                return metric
            label_key = key[1]
            metric = _TYPES[type_](label_key, **extra)
            family._series[label_key] = metric
            self._interned[key] = metric
            return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get("gauge", name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get("histogram", name, help, labels, buckets=buckets)

    # ------------------------------------------------------------------

    def family(self, name: str) -> MetricFamily:
        return self._families[name]

    def family_names(self) -> list[str]:
        return sorted(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def snapshot(self) -> dict:
        """JSON-ready ``{family name: family dict}`` of everything."""
        with self._lock:
            return {
                name: family.to_dict()
                for name, family in sorted(self._families.items())
            }

    def reset(self) -> None:
        """Drop every family and series (test isolation hook)."""
        with self._lock:
            self._families.clear()
            self._interned.clear()

    # ------------------------------------------------------------------
    # Cross-process telemetry deltas
    # ------------------------------------------------------------------

    def export_delta(self, max_series: int = 512) -> dict:
        """Wire-ready dump of this registry for piggybacking on a job
        result.

        A worker that calls :meth:`reset` per job and exports at the
        end produces a true *delta*: everything here happened during
        that one job.  The series count is bounded so a pathological
        label explosion cannot bloat every result envelope; what was
        cut is visible in ``series_dropped``.
        """
        with self._lock:
            families: dict[str, dict] = {}
            emitted = 0
            dropped = 0
            for name, family in sorted(self._families.items()):
                series = []
                for label_key, metric in family._series.items():
                    if emitted >= max_series:
                        dropped += 1
                        continue
                    series.append(
                        {"labels": list(label_key), "data": metric.export_data()}
                    )
                    emitted += 1
                if series:
                    families[name] = {"type": family.type, "series": series}
        delta: dict = {"v": 1, "families": families}
        if dropped:
            delta["series_dropped"] = dropped
        return delta

    def merge_delta(self, delta: object) -> int:
        """Fold a worker's :meth:`export_delta` into this registry.

        Returns the number of series merged.  Malformed input and
        per-family type conflicts are skipped, never raised — a
        telemetry envelope from a crashed or skewed worker must not be
        able to take the server down.
        """
        if not isinstance(delta, dict) or delta.get("v") != 1:
            return 0
        families = delta.get("families")
        if not isinstance(families, dict):
            return 0
        merged = 0
        for name, payload in families.items():
            if not isinstance(payload, dict):
                continue
            type_ = payload.get("type")
            series = payload.get("series")
            if type_ not in _TYPES or not isinstance(series, list):
                continue
            for entry in series:
                if not isinstance(entry, dict):
                    continue
                data = entry.get("data")
                if not isinstance(data, dict):
                    continue
                try:
                    labels = {
                        str(k): str(v) for k, v in entry.get("labels", ())
                    }
                    if type_ == "counter":
                        metric = self.counter(name, **labels)
                    elif type_ == "gauge":
                        metric = self.gauge(name, **labels)
                    else:
                        bounds = data.get("bounds")
                        buckets = (
                            tuple(bounds)
                            if isinstance(bounds, list) and bounds
                            else DEFAULT_BUCKETS
                        )
                        metric = self.histogram(name, buckets=buckets, **labels)
                except (TypeError, ValueError):
                    continue
                metric.merge_data(data)
                merged += 1
        return merged
