"""Tests for the CFG wrapper and the dominator computation."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.dominators import dominates, dominator_tree, immediate_dominators
from repro.cfg.graph import ControlFlowGraph
from repro.isa.assembler import TEXT_BASE, assemble

NESTED_LOOPS = """
        .text
main:   li $s0, 3
outer:  li $s1, 3
inner:  addiu $s1, $s1, -1
        bnez $s1, inner
        addiu $s0, $s0, -1
        bnez $s0, outer
        li $v0, 10
        syscall
"""


@pytest.fixture(scope="module")
def nested_cfg():
    return ControlFlowGraph.build(assemble(NESTED_LOOPS))


class TestControlFlowGraph:
    def test_nodes_match_blocks(self, nested_cfg):
        assert set(nested_cfg.graph.nodes) == set(nested_cfg.blocks)

    def test_entry(self, nested_cfg):
        assert nested_cfg.entry == TEXT_BASE

    def test_block_of(self, nested_cfg):
        program = nested_cfg.program
        inner = program.address_of("inner")
        assert nested_cfg.block_of(inner).start == inner
        assert nested_cfg.block_of(inner + 4).start == inner
        with pytest.raises(KeyError):
            nested_cfg.block_of(program.text_end + 100)

    def test_all_blocks_reachable(self, nested_cfg):
        assert nested_cfg.reachable_blocks() == set(nested_cfg.blocks)

    def test_successor_predecessor_symmetry(self, nested_cfg):
        for node in nested_cfg.graph.nodes:
            for succ in nested_cfg.successors(node):
                assert node in nested_cfg.predecessors(succ)


class TestDominators:
    def test_entry_dominates_everything(self, nested_cfg):
        idom = immediate_dominators(nested_cfg.graph, nested_cfg.entry)
        for node in idom:
            assert dominates(idom, nested_cfg.entry, node)

    def test_matches_networkx(self, nested_cfg):
        # networkx >= 3.6 omits the start node from its result.
        entry = nested_cfg.entry
        ours = immediate_dominators(nested_cfg.graph, entry)
        theirs = nx.immediate_dominators(nested_cfg.graph, entry)
        assert {k: v for k, v in ours.items() if k != entry} == dict(theirs)

    def test_diamond(self):
        graph = nx.DiGraph(
            [("entry", "a"), ("entry", "b"), ("a", "join"), ("b", "join")]
        )
        idom = immediate_dominators(graph, "entry")
        assert idom["join"] == "entry"
        assert idom["a"] == "entry"
        assert not dominates(idom, "a", "join")

    def test_chain(self):
        graph = nx.DiGraph([("a", "b"), ("b", "c")])
        idom = immediate_dominators(graph, "a")
        assert idom == {"a": "a", "b": "a", "c": "b"}
        assert dominates(idom, "a", "c")
        assert dominates(idom, "b", "c")
        assert not dominates(idom, "c", "b")

    def test_unreachable_nodes_absent(self):
        graph = nx.DiGraph([("a", "b")])
        graph.add_node("island")
        idom = immediate_dominators(graph, "a")
        assert "island" not in idom

    def test_missing_entry_raises(self):
        with pytest.raises(KeyError):
            immediate_dominators(nx.DiGraph([("a", "b")]), "zzz")

    def test_dominator_tree_shape(self):
        graph = nx.DiGraph([("a", "b"), ("b", "c"), ("a", "c")])
        idom = immediate_dominators(graph, "a")
        tree = dominator_tree(idom)
        assert set(tree.edges) == {("a", "b"), ("a", "c")}

    @given(st.integers(min_value=0, max_value=2**31), st.integers(2, 12))
    @settings(max_examples=50, deadline=None)
    def test_random_graphs_match_networkx(self, seed, n):
        rng = nx.gnp_random_graph(
            n, 0.35, seed=seed, directed=True
        )
        graph = nx.DiGraph()
        graph.add_nodes_from(rng.nodes)
        graph.add_edges_from(rng.edges)
        entry = 0
        # Only compare over nodes reachable from the entry; networkx
        # >= 3.6 omits the start node from its result.
        ours = immediate_dominators(graph, entry)
        theirs = nx.immediate_dominators(graph, entry)
        assert {k: v for k, v in ours.items() if k != entry} == dict(theirs)
