"""End-to-end: ``repro encode --metrics`` -> RUN_report.json -> readers.

This file carries the PR's acceptance checks: the seeded encode run
must produce a schema-valid report with non-zero encode-phase spans,
codec counters and decoder table-lookup counters, and the ``repro
metrics --check`` gate must pass on it (and fail when a family is
removed).
"""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.report import (
    load_run_report,
    missing_families,
    validate_run_report,
)


@pytest.fixture(autouse=True)
def _isolated_obs():
    """Commands flip the process-wide switch; always restore it."""
    yield
    obs.disable()
    obs.reset()


@pytest.fixture(scope="module")
def encode_report(tmp_path_factory):
    """One instrumented ``repro encode --workload fir --metrics`` run."""
    path = tmp_path_factory.mktemp("obs") / "RUN_report.json"
    code = main(
        [
            "encode",
            "--workload",
            "fir",
            "--metrics",
            "--report",
            str(path),
        ]
    )
    obs.disable()
    obs.reset()
    assert code == 0
    return path


class TestEncodeReport:
    def test_report_is_schema_valid(self, encode_report):
        data = load_run_report(encode_report)
        assert validate_run_report(data) == []
        assert data["meta"]["command"] == "repro encode fir"
        assert data["meta"]["git_sha"]

    def test_all_expected_families_present(self, encode_report):
        assert missing_families(load_run_report(encode_report)) == []

    def test_encode_phase_spans_nonzero(self, encode_report):
        by_name = load_run_report(encode_report)["trace"]["by_name"]
        for phase in ("flow.run", "flow.encode", "flow.deploy"):
            assert by_name[phase]["count"] >= 1
            assert by_name[phase]["total_s"] > 0

    def test_codec_and_decoder_counters_nonzero(self, encode_report):
        metrics = load_run_report(encode_report)["metrics"]

        def total(name):
            return sum(
                s["value"] for s in metrics[name]["series"]
            )

        assert total("codec.blocks_encoded") > 0
        assert total("codec.words_encoded") > 0
        assert total("decoder.tt_reads") > 0
        assert total("decoder.bbit_lookups") > 0
        assert total("sim.fetches") > 0

    def test_spans_nest_flow_over_encode(self, encode_report):
        spans = load_run_report(encode_report)["trace"]["spans"]
        by_name = {s["name"]: s for s in spans}
        assert by_name["flow.encode"]["parent_id"] == (
            by_name["flow.run"]["span_id"]
        )


class TestMetricsCommand:
    def test_check_passes_on_real_report(self, encode_report, capsys):
        assert main(["metrics", "--report", str(encode_report)]) == 0
        assert (
            main(["metrics", "--report", str(encode_report), "--check"])
            == 0
        )
        out = capsys.readouterr().out
        assert "codec.blocks_encoded" in out
        assert "all expected encode metric families present" in out

    def test_check_fails_when_family_missing(
        self, encode_report, tmp_path, capsys
    ):
        data = load_run_report(encode_report)
        del data["metrics"]["decoder.tt_reads"]
        crippled = tmp_path / "crippled.json"
        crippled.write_text(json.dumps(data))
        assert main(["metrics", "--report", str(crippled), "--check"]) == 1
        assert "decoder.tt_reads" in capsys.readouterr().err

    def test_json_mode_round_trips(self, encode_report, capsys):
        assert main(["metrics", "--report", str(encode_report), "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert "codec.blocks_encoded" in parsed

    def test_missing_file_is_a_usage_error(self, tmp_path, capsys):
        assert main(["metrics", "--report", str(tmp_path / "nope.json")]) == 2
        assert "no run report" in capsys.readouterr().err

    def test_invalid_report_rejected(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 1}))
        assert main(["metrics", "--report", str(bad)]) == 2
        assert "invalid report" in capsys.readouterr().err


class TestTraceCommand:
    def test_table_and_top(self, encode_report, capsys):
        assert main(["trace", "--report", str(encode_report), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "flow.run" in out
        assert "slowest 3 spans" in out

    def test_json_mode(self, encode_report, capsys):
        assert main(["trace", "--report", str(encode_report), "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["spans_recorded"] >= 1


class TestEncodeArguments:
    def test_workload_required(self, capsys):
        assert main(["encode"]) == 2
        assert "workload is required" in capsys.readouterr().err

    def test_conflicting_workloads_rejected(self, capsys):
        assert main(["encode", "mmul", "--workload", "fft"]) == 2
        assert "conflicting workloads" in capsys.readouterr().err

    def test_positional_still_works(self, capsys):
        assert main(["encode", "fir"]) == 0
        assert "FIR" in capsys.readouterr().out


class TestDisabledIsInert:
    def test_plain_encode_records_nothing(self, capsys):
        obs.disable()
        obs.reset()
        assert main(["encode", "fir"]) == 0
        assert obs.OBS.registry.family_names() == []
        assert obs.OBS.tracer.spans == []
        assert "wrote" not in capsys.readouterr().out
