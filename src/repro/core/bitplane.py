"""Packed-bitplane vectorized decode core (the 32-vertical-stream view).

The paper's decode recurrence is bit-serial on its face: position ``p``
of a bus line restores as ``d[p] = tau_p(e[p], d[p-1])`` where ``tau_p``
is the transformation of the segment covering ``p``.  But each tau is a
two-input boolean function, so for a *fixed* stored stream ``e`` the
recurrence collapses to an affine-over-GF(2) first-order form

    ``d[p] = B[p] XOR (A[p] AND d[p-1])``

with per-position masks derived from the tau truth tables:

* ``A[p] = tau_p(e[p], 0) XOR tau_p(e[p], 1)`` — does position ``p``
  depend on its history bit at all?
* ``B[p] = tau_p(e[p], 0)`` — the decoded bit when the history is 0.

Anchor positions (stream position 0, and every segment start under the
disjoint strategy) pass the stored bit through: they are modelled as
the identity tau, which gives ``A = 0`` there — the recurrence
re-anchors itself and nothing propagates across an anchor.

A first-order recurrence with AND/XOR coefficients is solvable with the
classic parallel-prefix doubling trick in ``O(log n)`` full-width
bitwise operations::

    m = 1
    while m < n:
        B ^= A & (B << m)   # substitute the recurrence into itself
        A &= A << m         # dependence distance doubles
        m <<= 1
    d = B

Because ``A`` is zero at every anchor, the same solve works unchanged
on *lane-packed* operands: the 32 vertical bit streams of a basic
block are concatenated into one ``32*n``-bit operand (lane ``L``
occupies bits ``[L*n, (L+1)*n)``) and decoded in a single scan — all
lines of all words of a block per operation, instead of one bit of one
line per Python loop iteration.

Two interchangeable backends execute the scan:

``bigint``
    Arbitrary-precision Python integers (CPython runs the bitwise
    operators over the whole operand in C).  The default: at the
    operand sizes this codebase produces (a 5000-bit stream, a
    32x64-bit lane-packed block) one big-int op on the whole operand
    beats a numpy pass, whose per-call dispatch dominates on such
    short arrays (measured ~5us vs ~80us per solve at 5000 bits).
``numpy``
    Operands live in little-endian ``uint64`` lane arrays; shifts are
    word-rotations plus intra-word shifts.  Registered when numpy is
    importable; numpy (when present) also accelerates the word
    transpose via ``packbits``/``unpackbits`` regardless of the scan
    backend.

``REPRO_BITPLANE_BACKEND`` (or :func:`set_backend`) overrides the
choice; ``tests/core/test_bitplane.py`` and the differential campaign
cross-check the two backends and every decode entry point against the
scalar paths.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Sequence

from repro.core.boolfunc import TT_X
from repro.obs import OBS

try:  # pragma: no cover - exercised both ways via the reload test
    import numpy as _np
except ImportError:  # pragma: no cover - no-numpy environments
    _np = None

__all__ = [
    "available_backends",
    "get_backend",
    "set_backend",
    "solve_first_order",
    "decode_plan_bitplane",
    "decode_block_bitplane",
    "transpose_words",
    "untranspose_words",
    "pack_validated",
    "bits_list",
]


# ----------------------------------------------------------------------
# Backends: the doubling scan over one packed operand
# ----------------------------------------------------------------------


class _BigIntBackend:
    """Doubling scan on Python big ints (no third-party dependency)."""

    name = "bigint"

    @staticmethod
    def solve(coeff: int, const: int, nbits: int) -> int:
        mask = (1 << nbits) - 1
        a = coeff & mask
        b = const & mask
        m = 1
        while m < nbits:
            b ^= (a & (b << m)) & mask
            a &= (a << m) & mask
            m <<= 1
        return b & mask


class _NumpyBackend:
    """Doubling scan on little-endian ``uint64`` lane arrays."""

    name = "numpy"

    @staticmethod
    def _shl(arr, shift: int):
        """Shift a multi-word operand left by ``shift`` bits."""
        nwords = arr.shape[0]
        word_shift, bit_shift = divmod(shift, 64)
        out = _np.zeros_like(arr)
        if word_shift >= nwords:
            return out
        if bit_shift == 0:
            out[word_shift:] = arr[: nwords - word_shift]
        else:
            out[word_shift:] = arr[: nwords - word_shift] << _np.uint64(
                bit_shift
            )
            out[word_shift + 1 :] |= arr[: nwords - word_shift - 1] >> (
                _np.uint64(64 - bit_shift)
            )
        return out

    @classmethod
    def solve(cls, coeff: int, const: int, nbits: int) -> int:
        mask = (1 << nbits) - 1
        nbytes = ((nbits + 63) // 64) * 8
        a = _np.frombuffer(
            (coeff & mask).to_bytes(nbytes, "little"), dtype="<u8"
        ).copy()
        b = _np.frombuffer(
            (const & mask).to_bytes(nbytes, "little"), dtype="<u8"
        ).copy()
        m = 1
        while m < nbits:
            b ^= a & cls._shl(b, m)
            a &= cls._shl(a, m)
            m <<= 1
        return int.from_bytes(b.tobytes(), "little") & mask


_BACKENDS: dict[str, type] = {"bigint": _BigIntBackend}
if _np is not None:
    _BACKENDS["numpy"] = _NumpyBackend

#: Active backend: big-int (faster at this codebase's operand sizes —
#: see the module docstring — and dependency-free);
#: ``REPRO_BITPLANE_BACKEND`` overrides (unknown names fall back).
_ACTIVE: type = _BACKENDS.get(
    os.environ.get("REPRO_BITPLANE_BACKEND", ""), _BACKENDS["bigint"]
)


def available_backends() -> tuple[str, ...]:
    return tuple(sorted(_BACKENDS))


def get_backend() -> str:
    return _ACTIVE.name


def set_backend(name: str) -> None:
    """Select the scan backend process-wide (tests compare the two)."""
    global _ACTIVE
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown bitplane backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    _ACTIVE = _BACKENDS[name]


def solve_first_order(
    coeff: int, const: int, nbits: int, backend: str | None = None
) -> int:
    """Solve ``d[p] = const[p] ^ (coeff[p] & d[p-1])`` over ``nbits``
    packed positions (``d[-1] = 0``) with the doubling scan."""
    if nbits <= 0:
        return 0
    solver = _BACKENDS[backend] if backend is not None else _ACTIVE
    return solver.solve(coeff, const, nbits)


# ----------------------------------------------------------------------
# Plan planes: per-position tau truth tables, packed
# ----------------------------------------------------------------------

#: For truth-table bit ``b``, maps a per-position tau byte to ASCII
#: ``'0'``/``'1'`` — so one ``bytes.translate`` builds a whole plane.
_TT_BIT_TABLES = tuple(
    bytes((49 if (value >> bit) & 1 else 48) for value in range(256))
    for bit in range(4)
)


def _planes_from_bytes(arr: bytearray) -> tuple[int, int, int, int]:
    """Fold a per-position truth-table bytearray into the four decode
    planes ``(x0, x1, t00, t10)``:

    * stored bit 0: ``A = x0 = t00^t01``, ``B = t00``;
    * stored bit 1: ``A = x1 = t10^t11``, ``B = t10``.
    """
    raw = bytes(arr)
    t00, t01, t10, t11 = (
        int(raw.translate(table)[::-1], 2) for table in _TT_BIT_TABLES
    )
    return (t00 ^ t01, t10 ^ t11, t00, t10)


@lru_cache(maxsize=4096)
def _plan_planes(
    length: int,
    bounds: tuple[tuple[int, int], ...],
    truth_tables: tuple[int, ...],
    overlapped: bool,
) -> tuple[int, int, int, int]:
    """Decode planes for one single-stream segment plan.

    Position 0 (and every disjoint segment start) carries the identity
    tau; each segment's *body* (positions ``start+1 .. start+len-1``)
    carries that segment's tau — exactly the per-position protocol of
    :func:`repro.core.fastpath.decode_plan_int`.
    """
    arr = bytearray(length)
    arr[0] = TT_X
    for (start, seg_len), tt in zip(bounds, truth_tables):
        if not overlapped and start != 0:
            arr[start] = TT_X
        if seg_len > 1:
            arr[start + 1 : start + seg_len] = bytes((tt,)) * (seg_len - 1)
    return _planes_from_bytes(arr)


@lru_cache(maxsize=1024)
def _block_planes(
    length: int,
    width: int,
    bounds: tuple[tuple[int, int], ...],
    plans: tuple[tuple[int, ...], ...],
    overlapped: bool,
) -> tuple[int, int, int, int]:
    """Decode planes for a lane-packed basic block: ``width`` vertical
    streams of ``length`` bits, lane ``L`` at bits ``[L*length, ...)``,
    each lane with its own per-segment tau row (``plans[s][L]`` is the
    truth table of segment ``s`` on line ``L``)."""
    arr = bytearray(width * length)
    for line in range(width):
        base = line * length
        arr[base] = TT_X
        for (start, seg_len), plan in zip(bounds, plans):
            if not overlapped and start != 0:
                arr[base + start] = TT_X
            if seg_len > 1:
                arr[base + start + 1 : base + start + seg_len] = bytes(
                    (plan[line],)
                ) * (seg_len - 1)
    return _planes_from_bytes(arr)


def _masks_to_recurrence(
    planes: tuple[int, int, int, int], encoded: int, nbits: int
) -> tuple[int, int]:
    """Specialise the tau planes to one stored operand: the positions
    where the stored bit is 1 take the ``x1``/``t10`` planes, the rest
    the ``x0``/``t00`` planes."""
    x0, x1, t00, t10 = planes
    mask = (1 << nbits) - 1
    e = encoded & mask
    ne = e ^ mask
    return (x1 & e) | (x0 & ne), (t10 & e) | (t00 & ne)


# ----------------------------------------------------------------------
# Stream-level decode
# ----------------------------------------------------------------------


def decode_plan_bitplane(
    encoded_int: int,
    length: int,
    bounds: Sequence[tuple[int, int]],
    transformations: Sequence,
    overlapped: bool = True,
    backend: str | None = None,
    truth_tables: tuple[int, ...] | None = None,
) -> int:
    """Vectorized equivalent of
    :func:`repro.core.fastpath.decode_plan_int`: one doubling scan
    instead of a per-segment Python loop.  Bit-identical by
    construction (the differential campaign and the k=4..7 sweeps
    machine-check this against the table and bit-serial paths).

    A caller that already holds the per-segment truth tables (e.g. a
    :class:`~repro.core.stream_codec.StreamEncoding` from the compiled
    encoder) can pass them via ``truth_tables`` to skip re-extracting
    them from ``transformations``.
    """
    if length == 0:
        return 0
    if truth_tables is None:
        # Keyed on the raw truth-table ints, not the Transformation
        # objects: hashing an int tuple is C-speed, hashing a tuple of
        # frozen dataclasses re-hashes every field of every element.
        truth_tables = tuple(t.func.truth_table for t in transformations)
    planes = _plan_planes(length, tuple(bounds), truth_tables, overlapped)
    coeff, const = _masks_to_recurrence(planes, encoded_int, length)
    decoded = solve_first_order(coeff, const, length, backend)
    if OBS.enabled:
        OBS.registry.counter(
            "codec.bitplane_streams_decoded",
            "vertical bit streams decoded through the bitplane scan",
            backend=(backend or _ACTIVE.name),
        ).inc()
    return decoded


# ----------------------------------------------------------------------
# Lane-packed block decode
# ----------------------------------------------------------------------


def transpose_words(words: Sequence[int], width: int = 32) -> int:
    """Pack instruction words into the lane-major bitplane operand:
    bit ``L*len(words) + t`` of the result is bit ``L`` of
    ``words[t]`` (bus line ``L``'s vertical stream, time-ordered)."""
    n = len(words)
    if n == 0:
        return 0
    if _np is not None and width == 32:
        arr = _np.asarray(words, dtype="<u4")
        bits = _np.unpackbits(
            arr.view(_np.uint8), bitorder="little"
        ).reshape(n, 32)
        packed = _np.packbits(
            _np.ascontiguousarray(bits.T).reshape(-1), bitorder="little"
        )
        return int.from_bytes(packed.tobytes(), "little")
    rows = [format(w, f"0{width}b") for w in words]
    # Column j of the MSB-first rows is bus line width-1-j, so reading
    # columns left to right already yields the most significant lane
    # first — exactly the order int() wants.
    return int(
        "".join(column[::-1] for column in ("".join(c) for c in zip(*rows))),
        2,
    )


def untranspose_words(packed: int, length: int, width: int = 32) -> list[int]:
    """Inverse of :func:`transpose_words`."""
    if length == 0:
        return []
    if _np is not None and width == 32:
        total = 32 * length
        data = packed.to_bytes((total + 7) // 8, "little")
        bits = _np.unpackbits(
            _np.frombuffer(data, dtype=_np.uint8), bitorder="little"
        )[:total]
        repacked = _np.packbits(
            _np.ascontiguousarray(bits.reshape(32, length).T).reshape(-1),
            bitorder="little",
        )
        return _np.frombuffer(repacked.tobytes(), dtype="<u4").tolist()
    text = format(packed, f"0{width * length}b")
    lanes = [text[j * length : (j + 1) * length][::-1] for j in range(width)]
    return [int("".join(row), 2) for row in zip(*lanes)]


def decode_block_bitplane(
    encoded_words: Sequence[int],
    bounds: Sequence[tuple[int, int]],
    plans: Sequence[Sequence[int]],
    width: int = 32,
    overlapped: bool = True,
    backend: str | None = None,
) -> list[int]:
    """Decode a whole basic block in one lane-packed scan.

    ``plans[s][line]`` is the truth table applied by bus line ``line``
    during segment ``s`` — the payload of the block's ``s``-th
    Transformation Table row.  All ``width`` vertical streams decode
    concurrently; the per-lane anchors (``A = 0``) stop the scan from
    propagating anything across lane boundaries.
    """
    n = len(encoded_words)
    if n == 0:
        return []
    planes = _block_planes(
        n,
        width,
        tuple(bounds),
        tuple(tuple(plan) for plan in plans),
        overlapped,
    )
    packed = transpose_words(encoded_words, width)
    coeff, const = _masks_to_recurrence(planes, packed, width * n)
    decoded = solve_first_order(coeff, const, width * n, backend)
    words = untranspose_words(decoded, n, width)
    if OBS.enabled:
        registry = OBS.registry
        registry.counter(
            "codec.bitplane_blocks_decoded",
            "basic blocks decoded through the lane-packed bitplane scan",
            backend=(backend or _ACTIVE.name),
        ).inc()
        registry.counter(
            "codec.bitplane_words_decoded",
            "instruction words decoded through the bitplane scan",
            backend=(backend or _ACTIVE.name),
        ).inc(n)
    return words


# ----------------------------------------------------------------------
# Fast 0/1-list <-> int bridges (C-speed, validation-compatible)
# ----------------------------------------------------------------------

#: Byte value 0/1 -> ASCII '0'/'1' (everything else is pre-validated).
_BIT_TO_ASCII = bytes((49 if value == 1 else 48) for value in range(256))
#: ASCII '0'/'1' -> byte value 0/1.
_ASCII_TO_BIT = bytes(
    (value - 48 if value in (48, 49) else 0) for value in range(256)
)


def pack_validated(stream) -> tuple[int, int]:
    """Validate and pack a 0/1 sequence at C speed.

    Same contract as ``pack_bits(validate_bits(stream))`` — including
    raising :class:`ValueError` through
    :func:`repro.core.bitstream.validate_bits` for non-bit elements, so
    error text stays canonical — but the happy path is two ``bytes``
    conversions and one ``int`` parse.
    """
    from repro.core.bitstream import validate_bits

    bits = stream if isinstance(stream, (list, tuple)) else list(stream)
    try:
        raw = bytes(bits)
    except (TypeError, ValueError):
        # Non-int elements: let the canonical validator raise (or
        # normalise odd-but-valid values like 1.0, exactly as the
        # scalar paths would accept them).
        raw = bytes(int(bit) for bit in validate_bits(list(bits)))
    if raw.translate(None, b"\x00\x01"):
        validate_bits(list(bits))  # raises the canonical per-element error
        raise ValueError("stream elements must be 0 or 1")  # pragma: no cover
    if not raw:
        return 0, 0
    return int(raw.translate(_BIT_TO_ASCII)[::-1], 2), len(raw)


def bits_list(value: int, length: int) -> list[int]:
    """The low ``length`` bits of ``value`` as a time-ordered 0/1 list
    (C-speed inverse of :func:`pack_validated`)."""
    if length == 0:
        return []
    text = format(value & ((1 << length) - 1), f"0{length}b").encode()
    bits = list(text.translate(_ASCII_TO_BIT))
    bits.reverse()
    return bits


def clear_plane_cache() -> None:
    """Drop the memoized decode planes (test isolation hook)."""
    _plan_planes.cache_clear()
    _block_planes.cache_clear()
