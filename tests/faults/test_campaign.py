"""Campaign runner tests: determinism, classification, the report
shape, and the worker-pool downgrade path — driven by a synthetic
deployment target so no workload simulation runs."""

import json
import warnings

import pytest

from tests.strategies import rng_for

from repro.core.program_codec import encode_basic_block
from repro.faults import (
    DEFAULT_MODELS,
    MODELS_BY_NAME,
    CampaignConfig,
    DeploymentTarget,
    FaultCampaignReport,
    run_campaign,
)
from repro.faults import campaign as campaign_module
from repro.faults.report import OUTCOMES


def _synthetic_target(num_blocks=2, block_len=10, block_size=5, seed=11):
    rng = rng_for("synthetic-target", seed)
    base = 0x400000
    original = [rng.getrandbits(32)]
    encoded = list(original)
    tt_entries, bbit_entries, block_pcs = [], [], []
    pc = base + 4
    tt_index = 0
    for _ in range(num_blocks):
        words = [rng.getrandbits(32) for _ in range(block_len)]
        enc = encode_basic_block(words, block_size)
        for row, (start, seg_len) in zip(enc.selectors(), enc.bounds):
            is_tail = start + seg_len >= block_len
            tt_entries.append(
                {
                    "selectors": list(row),
                    "end": is_tail,
                    "count": (
                        (seg_len if start == 0 else seg_len - 1)
                        if is_tail
                        else 0
                    ),
                }
            )
            tt_index += 1
        bbit_entries.append(
            {
                "pc": pc,
                "tt_index": tt_index - len(enc.bounds),
                "num_instructions": block_len,
            }
        )
        block_pcs.append(pc)
        original.extend(words)
        encoded.extend(enc.encoded_words)
        pc += 4 * block_len
    trace = [base]
    for _ in range(2):
        for start in block_pcs:
            trace.extend(start + 4 * i for i in range(block_len))
            trace.append(base)
    return DeploymentTarget(
        name="synthetic",
        block_size=block_size,
        text_base=base,
        original_words=original,
        encoded_words=encoded,
        tt_entries=tt_entries,
        bbit_entries=bbit_entries,
        trace=trace,
        parity=True,
    )


def _small_config(**overrides):
    defaults = dict(workloads=("synthetic",), trials=3, seed=42)
    defaults.update(overrides)
    return CampaignConfig(**defaults)


class TestRunCampaign:
    def test_full_sweep_shape_and_outcomes(self):
        config = _small_config()
        report = run_campaign(config, targets=[_synthetic_target()])
        expected = len(DEFAULT_MODELS) * config.trials * len(config.modes)
        assert len(report.cases) == expected
        assert all(case.outcome in OUTCOMES for case in report.cases)
        # Strict and recover runs of a trial share the injection seed.
        seeds = {case.seed for case in report.cases}
        assert len(seeds) == len(DEFAULT_MODELS) * config.trials

    def test_protected_ok_on_synthetic_target(self):
        report = run_campaign(_small_config(), targets=[_synthetic_target()])
        assert report.protected_ok()
        silent_models = {case.model for case in report.silent_cases()}
        assert silent_models <= {"image_bit_flip", "image_3bit_flip"}

    def test_campaign_is_deterministic(self):
        first = run_campaign(_small_config(), targets=[_synthetic_target()])
        second = run_campaign(_small_config(), targets=[_synthetic_target()])
        assert [c.to_dict() for c in first.cases] == [
            c.to_dict() for c in second.cases
        ]

    def test_model_table_rates(self):
        report = run_campaign(_small_config(), targets=[_synthetic_target()])
        table = report.model_table()
        assert {row["model"] for row in table} == set(MODELS_BY_NAME)
        for row in table:
            manifested = row["manifested"]
            rate = row["detection_or_recovery_rate"]
            assert (rate is None) == (manifested == 0)
            if row["model"] in report.protected_models() and manifested:
                assert rate == 1.0

    def test_report_json_roundtrip(self, tmp_path):
        report = run_campaign(_small_config(), targets=[_synthetic_target()])
        path = report.write(tmp_path / "FAULTS_report.json")
        data = json.loads(path.read_text())
        assert set(data) == {
            "config",
            "summary",
            "protected_ok",
            "silent_corruptions",
            "total_seconds",
            "slowest_case",
            "cases",
        }
        assert data["protected_ok"] is True
        assert data["config"]["seed"] == 42
        assert len(data["cases"]) == len(report.cases)
        assert data["silent_corruptions"] == len(report.silent_cases())
        # Durations are aggregated, never per-case: the case records
        # stay byte-deterministic across identical runs.
        assert data["total_seconds"] > 0
        assert data["slowest_case"]["duration_seconds"] > 0
        assert all("duration_seconds" not in case for case in data["cases"])
        for row in data["summary"]:
            assert row["total_seconds"] >= 0
            assert row["mean_seconds"] is None or row["mean_seconds"] >= 0

    def test_format_table_lists_every_model(self):
        report = run_campaign(_small_config(), targets=[_synthetic_target()])
        text = report.format_table()
        for name in MODELS_BY_NAME:
            assert name in text

    def test_duplicate_target_names_rejected(self):
        from repro.errors import CampaignError

        with pytest.raises(CampaignError, match="duplicate"):
            run_campaign(
                _small_config(),
                targets=[_synthetic_target(), _synthetic_target()],
            )


class TestWorkerDowngrade:
    def test_broken_pool_downgrades_to_serial(self, monkeypatch):
        from concurrent.futures import BrokenExecutor

        class _BrokenFuture:
            def result(self, timeout=None):
                raise BrokenExecutor("worker died")

        class _BrokenPool:
            def __init__(self, *args, **kwargs):
                pass

            def submit(self, fn, *args):
                return _BrokenFuture()

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        monkeypatch.setattr(
            campaign_module, "ProcessPoolExecutor", _BrokenPool
        )
        config = _small_config(trials=1, workers=4)
        with pytest.warns(RuntimeWarning, match="finishing the remaining"):
            report = run_campaign(config, targets=[_synthetic_target()])
        # Every case still completed — serially.
        expected = len(DEFAULT_MODELS) * 1 * len(config.modes)
        assert len(report.cases) == expected
        assert all(case.outcome in OUTCOMES for case in report.cases)
        assert report.protected_ok()

    def test_timeouts_trip_breaker_then_downgrade(self, monkeypatch):
        from concurrent.futures import TimeoutError as FutureTimeoutError

        class _HungFuture:
            def result(self, timeout=None):
                raise FutureTimeoutError()

        class _HungPool:
            def __init__(self, *args, **kwargs):
                pass

            def submit(self, fn, *args):
                return _HungFuture()

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        monkeypatch.setattr(campaign_module, "ProcessPoolExecutor", _HungPool)
        config = _small_config(
            trials=1, workers=2, case_timeout=30.0, breaker_threshold=3
        )
        with pytest.warns(RuntimeWarning, match="circuit breaker"):
            report = run_campaign(config, targets=[_synthetic_target()])
        # Timed-out futures are re-run serially under the same
        # deadline (the cases themselves are healthy, only the fake
        # pool hangs), so every case still completes — and none is
        # falsely marked crashed.
        expected = len(DEFAULT_MODELS) * 1 * len(config.modes)
        assert len(report.cases) == expected
        assert all(c.outcome != "crashed" for c in report.cases)
        assert report.protected_ok()

    def test_serial_fallback_enforces_case_deadline(self, monkeypatch):
        """The downgrade-to-serial path must honor the per-case
        deadline: a case that hangs serially is classified crashed
        instead of stalling the campaign forever."""
        import time as time_module

        from repro.faults.campaign import _run_case_serial
        from repro.faults.models import TTSelectorFlip

        target = _synthetic_target()
        monkeypatch.setattr(
            campaign_module,
            "run_case",
            lambda *args, **kwargs: time_module.sleep(5.0),
        )
        result = _run_case_serial(
            target, TTSelectorFlip(), "s:0", "strict", 0.05, retry_attempts=1
        )
        assert result.outcome == "crashed"
        assert "deadline" in result.error

    def test_parallel_matches_serial(self):
        config = _small_config(trials=2)
        serial = run_campaign(config, targets=[_synthetic_target()])
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no downgrade expected
            parallel = run_campaign(
                _small_config(trials=2, workers=2),
                targets=[_synthetic_target()],
            )
        key = lambda c: (c.model, c.seed, c.mode)
        assert sorted(
            (c.outcome for c in serial.cases),
        ) == sorted(c.outcome for c in parallel.cases)
        serial_map = {key(c): c.outcome for c in serial.cases}
        for case in parallel.cases:
            assert serial_map[key(case)] == case.outcome


class TestReportGates:
    def test_protected_ok_fails_on_silent_protected_case(self):
        report = run_campaign(_small_config(), targets=[_synthetic_target()])
        assert report.protected_ok()
        # Forge one silent corruption on a protected model.
        victim = next(
            c for c in report.cases if c.model == "tt_selector_flip"
        )
        victim.outcome = "silently-corrupted"
        assert not report.protected_ok()

    def test_unprotected_silence_does_not_fail_the_gate(self):
        report = FaultCampaignReport(
            config={"protected_models": ["tt_selector_flip"]},
            cases=[],
        )
        assert report.protected_ok()
