"""Differential checks: every decode path against every other.

Each check runs one input through all independent implementations of
the same contract and demands bit-identical agreement:

* stream level — compiled fast path vs reference :class:`BlockSolver`
  encode, then bitplane vs suffix-table vs bit-serial decode (plus the
  plan-based variants of all three, and every available bitplane
  backend) (:func:`check_stream`);
* program level — vertical fast/reference block encode, bitplane /
  table / bit-serial block decode, the behavioural
  :class:`FetchDecoder` in strict, recover and degraded modes against
  the golden words, and the bulk ``decode_trace`` bitplane walk
  against the per-fetch walk (:func:`check_program`);
* table-state level — seeded SEC-DED corruption of live TT/BBIT rows,
  checking each decoder mode's *exact* contractual output: strict
  raises, recover serves the documented pass-through region, degraded
  stays bit-identical to the golden image (:func:`check_tables`);
* exhaustive sweeps — every codebook entry for a block size against
  the reference solver plus all three decode paths
  (:func:`sweep_codebook`), and every τ selector's decode tables
  against the bit-serial recurrence, the bitplane doubling scan and
  the hardware :class:`TTEntry` gate model (:func:`sweep_tau`), in the
  exhaustive-enumeration spirit of the bus-encoding literature.

Checks never raise on divergence — they return a
:class:`CheckResult` whose ``mismatch`` names the first disagreement,
so the campaign can shrink and record it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core import bitplane
from repro.core.block_solver import BlockSolver
from repro.core.bitstream import pack_bits
from repro.core.program_codec import (
    decode_basic_block,
    encode_basic_block,
)
from repro.core.stream_codec import (
    _segment_bounds_cached,
    decode_stream,
    decode_with_plan,
    encode_stream,
)
from repro.core.transformations import OPTIMAL_SET
from repro.errors import ReproError, TableIntegrityError
from repro.hw import integrity
from repro.hw.fetch_decoder import FetchDecoder
from repro.hw.tt import TTEntry
from repro.verify.coverage import codebook_key, tau_key
from repro.verify.generators import Deployment, make_deployment

TABLE_FAULTS = ("none", "single_bit", "double_bit_tt", "double_bit_bbit")


@dataclass
class CheckResult:
    """One differential check's verdict plus its coverage footprint."""

    ok: bool = True
    coverage: dict[str, set] = field(default_factory=dict)
    mismatch: dict | None = None

    def cover(self, dimension: str, key: str) -> None:
        self.coverage.setdefault(dimension, set()).add(key)

    def fail(self, kind: str, **detail) -> "CheckResult":
        if self.ok:
            self.ok = False
            self.mismatch = {"kind": kind, **detail}
        return self

    def coverage_lists(self) -> dict[str, list[str]]:
        """JSON/pickle-friendly form of the coverage footprint."""
        return {dim: sorted(keys) for dim, keys in self.coverage.items()}


# ----------------------------------------------------------------------
# Stream level
# ----------------------------------------------------------------------


def check_stream(stream: list[int], block_size: int, strategy: str) -> CheckResult:
    """Fast vs reference encode, then every decode path, for one stream."""
    result = CheckResult()
    result.cover("block_sizes", f"k={block_size}")
    try:
        fast = encode_stream(stream, block_size, strategy=strategy)
        reference = encode_stream(
            stream, block_size, strategy=strategy, use_codebook=False
        )
    except ReproError as err:
        return result.fail("stream_encode_raised", error=repr(err))
    if fast != reference:
        return result.fail(
            "encode_paths_diverge",
            detail="compiled codebook encoding != reference BlockSolver "
            "encoding for the same stream",
        )
    decoded_bitplane = decode_stream(fast)
    if decoded_bitplane != list(stream):
        return result.fail("bitplane_decode_wrong")
    decoded_tables = decode_stream(fast, use_bitplane=False)
    if decoded_tables != list(stream):
        return result.fail("table_decode_wrong")
    decoded_serial = decode_stream(fast, use_tables=False)
    if decoded_serial != list(stream):
        return result.fail("bit_serial_decode_wrong")
    if strategy != "disjoint" and stream:
        plan = fast.transformations()
        stored = list(fast.encoded)
        if decode_with_plan(stored, block_size, plan) != list(stream):
            return result.fail("plan_bitplane_decode_wrong")
        if decode_with_plan(
            stored, block_size, plan, use_bitplane=False
        ) != list(stream):
            return result.fail("plan_table_decode_wrong")
        if decode_with_plan(
            stored, block_size, plan, use_tables=False
        ) != list(stream):
            return result.fail("plan_bit_serial_decode_wrong")
        # Every available bitplane backend must agree bit-for-bit (on
        # a numpy host this runs the pure big-int scan as well).
        packed, length = bitplane.pack_validated(stored)
        bounds = _segment_bounds_cached(length, block_size, True)
        for backend in bitplane.available_backends():
            scanned = bitplane.decode_plan_bitplane(
                packed, length, bounds, plan, backend=backend
            )
            if bitplane.bits_list(scanned, length) != list(stream):
                return result.fail(
                    "bitplane_backend_decode_wrong", backend=backend
                )

    # Coverage footprint: which codebook entries this stream resolved
    # through, which boundary/tail classes it ended on.
    encoded = list(fast.encoded)
    for index, segment in enumerate(fast.segments):
        if segment.length != block_size:
            continue  # only full-width entries are in the gated universe
        word_int = pack_bits(stream[segment.start : segment.end])
        if index == 0 or strategy == "disjoint":
            variant = "anchored"
        else:
            variant = f"constrained{encoded[segment.start]}"
        result.cover(
            "codebook_entries", codebook_key(block_size, variant, word_int)
        )
    if stream and block_size >= 2:
        residue = len(stream) % max(1, block_size - 1)
        result.cover("boundary_residues", f"k={block_size}|mod={residue}")
        if fast.segments:
            tail = fast.segments[-1].length
            result.cover("tail_lengths", f"k={block_size}|tail={tail}")
    return result


# ----------------------------------------------------------------------
# Program level
# ----------------------------------------------------------------------


def _fetch_all(
    decoder: FetchDecoder, deployment: Deployment, which: int
) -> list[int]:
    return [
        decoder.fetch(pc, deployment.image[pc])
        for pc in deployment.trace_for(which)
    ]


def check_program(words: list[int], block_size: int) -> CheckResult:
    """Vertical block encode/decode plus the full hardware fetch path."""
    result = CheckResult()
    result.cover("block_sizes", f"k={block_size}")
    try:
        fast = encode_basic_block(words, block_size)
        reference = encode_basic_block(words, block_size, use_codebook=False)
    except ReproError as err:
        return result.fail("program_encode_raised", error=repr(err))
    if fast != reference:
        return result.fail("program_encode_paths_diverge")
    if decode_basic_block(fast) != list(words):
        return result.fail("program_bitplane_decode_wrong")
    if decode_basic_block(fast, use_bitplane=False) != list(words):
        return result.fail("program_table_decode_wrong")
    if decode_basic_block(fast, use_tables=False) != list(words):
        return result.fail("program_bit_serial_decode_wrong")

    deployment = make_deployment([list(words)], block_size, parity=True)
    for mode in ("strict", "recover", "degraded"):
        decoder = FetchDecoder(
            deployment.tt,
            deployment.bbit,
            block_size,
            encoded_region=deployment.encoded_region,
            mode=mode,
            golden_lookup=(
                deployment.golden_lookup if mode == "degraded" else None
            ),
        )
        try:
            decoded = _fetch_all(decoder, deployment, 0)
            decoder.finalize()
        except ReproError as err:
            return result.fail(
                "decoder_raised_on_clean_tables", mode=mode, error=repr(err)
            )
        if decoded != list(words):
            return result.fail("decoder_output_wrong", mode=mode)
        if decoder.recovery_events or decoder.degradations:
            return result.fail("decoder_spurious_recovery", mode=mode)
        result.cover("decoder_transitions", f"clean:{mode}")

    # The bulk decode_trace bitplane walk must match the per-fetch
    # walk on both output and architectural counters.
    walks = []
    for use_bitplane in (True, False):
        decoder = FetchDecoder(
            deployment.tt,
            deployment.bbit,
            block_size,
            encoded_region=deployment.encoded_region,
        )
        try:
            decoded = decoder.decode_trace(
                deployment.trace_for(0),
                deployment.image.__getitem__,
                finalize=True,
                use_bitplane=use_bitplane,
            )
        except ReproError as err:
            return result.fail(
                "decode_trace_raised",
                bitplane=use_bitplane,
                error=repr(err),
            )
        walks.append(
            (decoded, decoder.decoded_instructions, decoder.tt_reads)
        )
    if walks[0][0] != list(words):
        return result.fail("decode_trace_bitplane_output_wrong")
    if walks[0] != walks[1]:
        return result.fail("decode_trace_paths_diverge")
    return result


# ----------------------------------------------------------------------
# Table-state level
# ----------------------------------------------------------------------


def _corrupt_tt_row(deployment: Deployment, rng: random.Random, bits: int) -> None:
    """Flip ``bits`` distinct bits in block 0's base TT row, leaving
    the stored SEC-DED check word stale (the soft-error model)."""
    tt = deployment.tt
    entry = tt.entries[0]
    width = integrity.tt_row_bits(entry.width)
    data = integrity.tt_row_data(entry.selectors, entry.end, entry.count)
    for position in rng.sample(range(width), bits):
        data ^= 1 << position
    selectors, end, count = integrity.tt_row_fields(data, entry.width)
    tt.entries[0] = TTEntry(selectors=selectors, end=end, count=count)


def _corrupt_bbit_row(deployment: Deployment, rng: random.Random, bits: int) -> None:
    """Flip ``bits`` distinct bits in block 0's BBIT row fields."""
    from repro.hw.bbit import BBITEntry

    bbit = deployment.bbit
    pc = deployment.bases[0]
    entry = bbit._by_pc[pc]
    width = integrity.bbit_row_bits()
    data = integrity.bbit_row_data(
        entry.pc, entry.tt_index, entry.num_instructions
    )
    for position in rng.sample(range(width), bits):
        data ^= 1 << position
    new_pc, tt_index, num_instructions = integrity.bbit_row_fields(data)
    bbit._by_pc[pc] = BBITEntry(
        pc=new_pc, tt_index=tt_index, num_instructions=num_instructions
    )


def check_tables(
    blocks: list[list[int]],
    block_size: int,
    fault: str,
    flip_seed: str,
) -> CheckResult:
    """Seeded table corruption against each decoder mode's contract.

    The *same* corruption (regenerated from ``flip_seed``) is applied
    to a fresh deployment for every mode, so the three fault-handling
    strategies are compared on an identical upset.
    """
    result = CheckResult()
    result.cover("block_sizes", f"k={block_size}")
    if fault not in TABLE_FAULTS:
        return result.fail("unknown_table_fault", fault=fault)
    event = {
        "none": "clean",
        "single_bit": "corrected",
        "double_bit_tt": "tt_uncorrectable",
        "double_bit_bbit": "bbit_uncorrectable",
    }[fault]

    for mode in ("strict", "recover", "degraded"):
        deployment = make_deployment(
            [list(words) for words in blocks], block_size, parity=True
        )
        rng = random.Random(flip_seed)
        if fault == "single_bit":
            _corrupt_tt_row(deployment, rng, 1)
        elif fault == "double_bit_tt":
            _corrupt_tt_row(deployment, rng, 2)
        elif fault == "double_bit_bbit":
            _corrupt_bbit_row(deployment, rng, 2)
        decoder = FetchDecoder(
            deployment.tt,
            deployment.bbit,
            block_size,
            encoded_region=deployment.encoded_region,
            mode=mode,
            golden_lookup=(
                deployment.golden_lookup if mode == "degraded" else None
            ),
        )

        decoded: list[list[int] | None] = []
        raised: ReproError | None = None
        for which in range(len(blocks)):
            try:
                decoded.append(_fetch_all(decoder, deployment, which))
            except TableIntegrityError as err:
                decoded.append(None)
                raised = err
                break
            except ReproError as err:
                return result.fail(
                    "decoder_unexpected_error", mode=mode, error=repr(err)
                )

        uncorrectable = fault in ("double_bit_tt", "double_bit_bbit")
        if mode == "strict":
            if uncorrectable and raised is None:
                return result.fail(
                    "strict_missed_uncorrectable", fault=fault
                )
            if not uncorrectable:
                if raised is not None:
                    return result.fail(
                        "strict_raised_on_correctable",
                        fault=fault,
                        error=repr(raised),
                    )
                if decoded != [deployment.golden_words(w) for w in range(len(blocks))]:
                    return result.fail("strict_output_wrong", fault=fault)
        else:
            if raised is not None:
                return result.fail(
                    f"{mode}_mode_raised", fault=fault, error=repr(raised)
                )
            for which in range(len(blocks)):
                golden = deployment.golden_words(which)
                if mode == "degraded" or not uncorrectable or which != 0:
                    expected = golden
                elif fault == "double_bit_bbit":
                    # Recover mode passes the whole faulted block
                    # through raw: its stored (encoded) words.
                    expected = deployment.stored_words(0)
                else:
                    # TT fault fires on instruction 1 (the first read
                    # of the corrupted base row): the anchor decoded
                    # fine, the rest of the block passes through raw.
                    expected = [golden[0]] + deployment.stored_words(0)[1:]
                if decoded[which] != expected:
                    return result.fail(
                        f"{mode}_output_violates_contract",
                        fault=fault,
                        block=which,
                    )
            if uncorrectable:
                if mode == "recover" and not decoder.recovery_events:
                    return result.fail("recover_event_missing", fault=fault)
                if mode == "degraded" and not decoder.degradations:
                    return result.fail("degradation_missing", fault=fault)
        if fault == "single_bit":
            corrections = (
                deployment.tt.ecc_corrections + deployment.bbit.ecc_corrections
            )
            if corrections == 0:
                return result.fail("secded_correction_missing", mode=mode)
        result.cover("decoder_transitions", f"{event}:{mode}")
    return result


# ----------------------------------------------------------------------
# Exhaustive sweeps
# ----------------------------------------------------------------------


def _decode_code_bits(code: list[int], tau, history: int | None) -> list[int]:
    """Bit-serial reference decode of one block code word.

    ``history=None`` is the anchored protocol (first decoded bit is
    the stored bit itself); otherwise the first decoded bit is the
    overlap history already produced by the previous block.
    """
    decoded = [code[0] if history is None else history]
    for position in range(1, len(code)):
        decoded.append(tau(code[position], decoded[position - 1]))
    return decoded


def sweep_codebook(block_size: int) -> CheckResult:
    """Every full-width block word through every codebook variant,
    against the reference solver and all three decode directions
    (bit-serial, suffix table, bitplane scan)."""
    from repro.core.fastpath import decode_suffix_table, get_codebook

    result = CheckResult()
    result.cover("block_sizes", f"k={block_size}")
    book = get_codebook(block_size)
    solver = BlockSolver(OPTIMAL_SET)
    for word_int in range(1 << block_size):
        word = [(word_int >> i) & 1 for i in range(block_size)]
        lookups = [("anchored", book.anchored[block_size][word_int], None)]
        for fixed in (0, 1):
            lookups.append(
                (
                    f"constrained{fixed}",
                    book.constrained[block_size][fixed][word_int],
                    fixed,
                )
            )
        for variant, entry, fixed in lookups:
            if fixed is None:
                solution = solver.solve_anchored(word)
            else:
                solution = solver.solve_constrained(word, fixed)
            if entry is None:
                return result.fail(
                    "codebook_entry_missing",
                    k=block_size,
                    variant=variant,
                    word=word_int,
                )
            code_int, tau, cost = entry
            if (
                code_int != pack_bits(list(solution.code))
                or tau != solution.transformation
                or cost != solution.encoded_transitions
            ):
                return result.fail(
                    "codebook_entry_diverges",
                    k=block_size,
                    variant=variant,
                    word=word_int,
                )
            code = [(code_int >> i) & 1 for i in range(block_size)]
            if fixed is not None and code[0] != fixed:
                return result.fail(
                    "codebook_fixed_bit_violated",
                    k=block_size,
                    variant=variant,
                    word=word_int,
                )
            history = None if fixed is None else word[0]
            if _decode_code_bits(code, tau, history) != word:
                return result.fail(
                    "codebook_bit_serial_roundtrip_wrong",
                    k=block_size,
                    variant=variant,
                    word=word_int,
                )
            table = decode_suffix_table(tau.func.truth_table, block_size - 1)
            first_decoded = code[0] if fixed is None else word[0]
            decoded_body = table[first_decoded][code_int >> 1]
            if (first_decoded | (decoded_body << 1)) != word_int:
                return result.fail(
                    "codebook_suffix_table_roundtrip_wrong",
                    k=block_size,
                    variant=variant,
                    word=word_int,
                )
            # Bitplane scan leg: the anchor position reproduces the
            # first decoded bit verbatim, so seeding it with the
            # overlap history models the constrained protocol exactly.
            scan_code = (code_int & ~1) | first_decoded
            scanned = bitplane.decode_plan_bitplane(
                scan_code, block_size, ((0, block_size),), (tau,)
            )
            if scanned != word_int:
                return result.fail(
                    "codebook_bitplane_roundtrip_wrong",
                    k=block_size,
                    variant=variant,
                    word=word_int,
                )
            result.cover(
                "codebook_entries",
                codebook_key(block_size, variant, word_int),
            )
    return result


def sweep_tau(block_size: int) -> CheckResult:
    """Every τ selector's decode, exhaustively, through every layer:
    the compiled suffix tables and the bitplane doubling scan vs the
    bit-serial recurrence for every (history, stored suffix), and the
    hardware :class:`TTEntry` masked gate model vs per-line function
    application on seeded words."""
    from repro.core.fastpath import decode_suffix_table

    result = CheckResult()
    result.cover("block_sizes", f"k={block_size}")
    for transformation in OPTIMAL_SET:
        selector = transformation.selector
        func = transformation.func
        for suffix_len in range(1, block_size):
            table = decode_suffix_table(func.truth_table, suffix_len)
            for history in (0, 1):
                for stored in range(1 << suffix_len):
                    h, expected = history, 0
                    for i in range(suffix_len):
                        h = func((stored >> i) & 1, h)
                        expected |= h << i
                    if table[history][stored] != expected:
                        return result.fail(
                            "suffix_table_diverges",
                            k=block_size,
                            selector=selector,
                            suffix_len=suffix_len,
                            history=history,
                            stored=stored,
                        )
                    scanned = bitplane.decode_plan_bitplane(
                        (stored << 1) | history,
                        suffix_len + 1,
                        ((0, suffix_len + 1),),
                        (transformation,),
                    )
                    if scanned != (expected << 1) | history:
                        return result.fail(
                            "bitplane_scan_diverges",
                            k=block_size,
                            selector=selector,
                            suffix_len=suffix_len,
                            history=history,
                            stored=stored,
                        )
        # Hardware gate model: a TT entry applying this τ on all lines.
        entry = TTEntry(selectors=(selector,) * 32)
        rng = random.Random(f"tau:{block_size}:{selector}")
        for _ in range(16):
            stored_word = rng.getrandbits(32)
            previous = rng.getrandbits(32)
            expected = 0
            for line in range(32):
                expected |= (
                    func((stored_word >> line) & 1, (previous >> line) & 1)
                    << line
                )
            if entry.decode(stored_word, previous) != expected:
                return result.fail(
                    "tt_entry_decode_diverges",
                    k=block_size,
                    selector=selector,
                )
        result.cover("tau_selectors", tau_key(block_size, selector))
    return result


def sweep_boundary(block_size: int) -> CheckResult:
    """Deterministic boundary/tail classes: one stream per length in
    ``1..3k`` so every tail length and every length-mod-(k-1) residue
    is exercised regardless of what the random cases draw."""
    result = CheckResult()
    for length in range(1, 3 * block_size + 1):
        rng = random.Random(f"boundary:{block_size}:{length}")
        for stream in (
            [(i ^ (i >> 1)) & 1 for i in range(length)],
            [rng.randint(0, 1) for _ in range(length)],
        ):
            sub = check_stream(stream, block_size, "greedy")
            for dimension, keys in sub.coverage.items():
                for key in keys:
                    result.cover(dimension, key)
            if not sub.ok:
                return result.fail(
                    "boundary_stream_diverges",
                    k=block_size,
                    length=length,
                    inner=sub.mismatch,
                )
    return result


# ----------------------------------------------------------------------
# Encoder zoo (every registered Encoder backend)
# ----------------------------------------------------------------------


def check_encoders(words: list[int], schemes: tuple[str, ...] | None = None) -> CheckResult:
    """Differential check of every registered encoder backend on one
    word stream: fitted-encoder roundtrip (decode(encode(w)) == w),
    fast transition count vs the scheme's independent reference
    counter, config-digest determinism, config round-trip through the
    bundle serialisation form, and — for deployable recoders — the
    per-word path against the stream path."""
    from repro.baselines.protocol import (
        encoder_from_config,
        make_encoder,
        reference_transitions,
        registered_schemes,
    )

    result = CheckResult()
    mask = (1 << 32) - 1
    expected = [w & mask for w in words]
    for scheme in schemes if schemes is not None else registered_schemes():
        result.cover("encoder_schemes", scheme)
        encoder = make_encoder(scheme).fit(words)
        stream = encoder.encode(words)
        decoded = encoder.decode(stream)
        if decoded != expected:
            return result.fail(
                "encoder_roundtrip",
                scheme=scheme,
                first_bad=next(
                    i for i, (a, b) in enumerate(zip(decoded, expected)) if a != b
                )
                if len(decoded) == len(expected)
                else -1,
            )
        fast = stream.transitions()
        reference = reference_transitions(encoder, words)
        if fast != reference:
            return result.fail(
                "encoder_transition_count",
                scheme=scheme,
                fast=fast,
                reference=reference,
            )
        if encoder.transitions(words) != fast:
            return result.fail("encoder_transitions_api", scheme=scheme)
        refit = make_encoder(scheme).fit(words)
        if refit.config_digest() != encoder.config_digest():
            return result.fail("encoder_digest_unstable", scheme=scheme)
        rebuilt = encoder_from_config(scheme, encoder.to_config())
        if rebuilt.encode(words).driven != stream.driven:
            return result.fail("encoder_config_roundtrip", scheme=scheme)
        if rebuilt.config_digest() != encoder.config_digest():
            return result.fail("encoder_config_digest", scheme=scheme)
        if encoder.deployable:
            per_word = [encoder.encode_word(w) for w in words]
            if per_word != stream.driven:
                return result.fail("encoder_word_vs_stream", scheme=scheme)
            if [encoder.decode_word(w) for w in per_word] != expected:
                return result.fail("encoder_word_roundtrip", scheme=scheme)
    return result


def sweep_encoder_tables(schemes: tuple[str, ...] | None = None) -> CheckResult:
    """Deterministic exhaustive half for the encoder zoo.

    * every backend: roundtrip + differential count over canonical
      seeded streams (hot-loop-like small alphabets and uniform words);
    * memoryless: a fitted 4-line sub-bus maps all 16 values
      bijectively, and the exact assignment matches brute force over
      all injective placements on a canonical narrow profile;
    * low-weight: every codeword obeys the weight bound, the
      per-position tables stay injective (unique decodability), and a
      transfer never toggles more than ``chunks * max_weight`` lines.
    """
    from itertools import permutations

    from repro.baselines.lowweight import (
        CODEWORDS,
        MAX_CODEWORD_WEIGHT,
        LowWeightCodeEncoder,
    )
    from repro.baselines.memoryless import MemorylessCodebookEncoder
    from repro.core.transitions import per_transfer_transitions, word_transitions

    result = CheckResult()

    # --- every backend over canonical streams -------------------------
    rng = random.Random("encoder-sweep")
    alphabet = [rng.getrandbits(32) for _ in range(5)]
    canonical = [
        [rng.choice(alphabet) for _ in range(64)],
        [rng.getrandbits(32) for _ in range(48)],
        [0xDEADBEEF] * 8 + [0x00FF00FF, 0xFF00FF00] * 4,
        [],
        [0x12345678],
    ]
    for words in canonical:
        sub = check_encoders(words, schemes=schemes)
        for dimension, keys in sub.coverage.items():
            for key in keys:
                result.cover(dimension, key)
        if not sub.ok:
            return result.fail(
                "encoder_canonical_stream", inner=sub.mismatch
            )

    # --- memoryless: bijectivity + exact-assignment optimality --------
    narrow = MemorylessCodebookEncoder(width=4, subbus_width=4)
    profile = [1, 9, 1, 9, 1, 4, 1, 9, 4, 9]  # 3 distinct values
    narrow.fit(profile)
    table = narrow.to_config()["maps"][0]
    if sorted(table) != list(range(16)):
        return result.fail("memoryless_not_bijective", table=table)
    achieved = narrow.transitions(profile)
    mapped_all = {v for v in profile}
    best = min(
        word_transitions([dict(zip(sorted(mapped_all), perm))[v] for v in profile])
        for perm in permutations(range(16), len(mapped_all))
    )
    if achieved != best:
        return result.fail(
            "memoryless_not_optimal", achieved=achieved, optimal=best
        )
    for value in range(16):
        if narrow.decode_word(narrow.encode_word(value)) != value:
            return result.fail("memoryless_inverse_broken", value=value)

    # --- low-weight: weight bound + unique decodability ---------------
    lw = LowWeightCodeEncoder()
    lw.fit([rng.getrandbits(32) for _ in range(64)])
    tables = lw.to_config()["tables"]
    if len(set(CODEWORDS)) != len(CODEWORDS):
        return result.fail("lowweight_codewords_duplicate")
    for pos, tbl in enumerate(tables):
        if len(set(tbl)) != len(tbl):
            return result.fail("lowweight_table_not_injective", position=pos)
        for value, code in enumerate(tbl):
            if code.bit_count() > MAX_CODEWORD_WEIGHT:
                return result.fail(
                    "lowweight_weight_bound",
                    position=pos,
                    value=value,
                    codeword=code,
                )
    probe = [rng.getrandbits(32) for _ in range(32)]
    per = per_transfer_transitions(lw.encode(probe).driven)
    if any(p > lw.max_weight_per_transfer for p in per):
        return result.fail(
            "lowweight_transfer_bound", worst=max(per)
        )
    if lw.decode(lw.encode(probe)) != probe:
        return result.fail("lowweight_sweep_roundtrip")
    return result
