"""Differential fuzzing of minicc: random kernels, compiled execution
vs the reference interpreter.

The generator emits guaranteed-terminating programs (only counted
``for`` loops with literal bounds; divisions guarded by making the
divisor ``expr*expr + 1``), with scalars, 1-D arrays, nested loops,
``if``/``else`` and mixed int/double arithmetic.
"""

from __future__ import annotations

import random

import pytest

from repro.minicc import compile_kernel
from tests.minicc.test_interp_reference import interpret

INT_VARS = ("a", "b", "c")
DOUBLE_VARS = ("p", "q")
INT_ARR = "v"  # int v[8]
DOUBLE_ARR = "w"  # double w[8]
LOOP_VARS = ("i", "j")

HEADER = (
    "int a; int b; int c; int i; int j;\n"
    "double p; double q;\n"
    "int v[8]; double w[8];\n"
)


class _Generator:
    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def int_expr(self, depth: int = 0, loops: tuple[str, ...] = ()) -> str:
        rng = self.rng
        if depth >= 3 or rng.random() < 0.35:
            choices = [str(rng.randint(-9, 9))]
            choices.extend(INT_VARS)
            choices.extend(loops)
            choices.append(f"{INT_ARR}[{self.index_expr(loops)}]")
            return rng.choice(choices)
        kind = rng.random()
        if kind < 0.55:
            op = rng.choice(("+", "-", "*"))
            return (
                f"({self.int_expr(depth + 1, loops)} {op} "
                f"{self.int_expr(depth + 1, loops)})"
            )
        if kind < 0.70:
            # Safe division/modulo: divisor = x*x + 1 > 0.
            inner = self.int_expr(depth + 2, loops)
            op = rng.choice(("/", "%"))
            return (
                f"({self.int_expr(depth + 1, loops)} {op} "
                f"({inner} * {inner} + 1))"
            )
        if kind < 0.85:
            op = rng.choice(("<", "<=", ">", ">=", "==", "!="))
            return (
                f"({self.int_expr(depth + 1, loops)} {op} "
                f"{self.int_expr(depth + 1, loops)})"
            )
        if kind < 0.95:
            op = rng.choice(("&&", "||"))
            return (
                f"({self.int_expr(depth + 1, loops)} {op} "
                f"{self.int_expr(depth + 1, loops)})"
            )
        return f"(-{self.int_expr(depth + 1, loops)})"

    def index_expr(self, loops: tuple[str, ...]) -> str:
        rng = self.rng
        if loops and rng.random() < 0.6:
            return rng.choice(loops)  # loop vars range 0..7 by design
        return str(rng.randint(0, 7))

    def double_expr(self, depth: int = 0, loops: tuple[str, ...] = ()) -> str:
        rng = self.rng
        if depth >= 3 or rng.random() < 0.4:
            choices = [f"{rng.randint(-40, 40) / 8.0!r}"]
            choices.extend(DOUBLE_VARS)
            choices.append(f"{DOUBLE_ARR}[{self.index_expr(loops)}]")
            choices.append(self.int_expr(depth + 1, loops))  # promotion
            return rng.choice(choices)
        op = rng.choice(("+", "-", "*"))
        return (
            f"({self.double_expr(depth + 1, loops)} {op} "
            f"{self.double_expr(depth + 1, loops)})"
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def stmt(self, depth: int, loops: tuple[str, ...]) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.5 or depth >= 2:
            return self.assign(loops)
        if roll < 0.75 and len(loops) < len(LOOP_VARS):
            var = LOOP_VARS[len(loops)]
            bound = rng.randint(2, 8)
            body = self.block(depth + 1, loops + (var,))
            return (
                f"for ({var} = 0; {var} < {bound}; {var} = {var} + 1) {body}"
            )
        condition = self.int_expr(1, loops)
        then = self.block(depth + 1, loops)
        if rng.random() < 0.5:
            return f"if ({condition}) {then}"
        return f"if ({condition}) {then} else {self.block(depth + 1, loops)}"

    def assign(self, loops: tuple[str, ...]) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.35:
            return f"{rng.choice(INT_VARS)} = {self.int_expr(0, loops)};"
        if roll < 0.55:
            return f"{rng.choice(DOUBLE_VARS)} = {self.double_expr(0, loops)};"
        if roll < 0.8:
            return (
                f"{INT_ARR}[{self.index_expr(loops)}] = "
                f"{self.int_expr(0, loops)};"
            )
        return (
            f"{DOUBLE_ARR}[{self.index_expr(loops)}] = "
            f"{self.double_expr(0, loops)};"
        )

    def block(self, depth: int, loops: tuple[str, ...]) -> str:
        count = self.rng.randint(1, 3)
        inner = " ".join(self.stmt(depth, loops) for _ in range(count))
        return "{ " + inner + " }"

    def program(self) -> str:
        count = self.rng.randint(3, 7)
        body = "\n".join(self.stmt(0, ()) for _ in range(count))
        return HEADER + body


@pytest.mark.parametrize("opt_level", (0, 1))
@pytest.mark.parametrize("seed", range(25))
def test_fuzz_compiled_matches_reference(seed, opt_level):
    source = _Generator(seed).program()
    try:
        compiled = compile_kernel(
            source, name=f"fuzz{seed}", opt_level=opt_level
        )
    except Exception as error:  # pragma: no cover - generator bug guard
        pytest.fail(f"seed {seed}: failed to compile\n{source}\n{error}")
    cpu, _trace = compiled.run(max_steps=5_000_000)
    expected = interpret(source)
    for name in (*INT_VARS, *DOUBLE_VARS, INT_ARR, DOUBLE_ARR):
        measured = compiled.read(cpu, name)
        want = expected[name]
        if not isinstance(measured, list):
            measured = [measured]
        for index, (m, e) in enumerate(zip(measured, want)):
            if isinstance(e, float):
                assert m == pytest.approx(e, rel=1e-9, abs=1e-9), (
                    seed,
                    name,
                    index,
                    source,
                )
            else:
                assert m == e, (seed, name, index, source)
