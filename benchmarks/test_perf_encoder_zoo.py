"""Encoder-zoo throughput harness.

Runs :func:`repro.pipeline.benchmark.run_encoder_zoo_benchmarks` and
writes ``BENCH_encoders.json`` at the repo root so per-backend encode
rates are tracked across PRs.  Unlike the codec harness there is no
speedup floor — both the fast count and the reference counter are pure
Python; the harness's value is the rate trajectory plus the built-in
fast-vs-reference cross-check (a divergence raises before timing).
"""

from pathlib import Path

from repro.baselines.protocol import registered_schemes
from repro.pipeline.benchmark import run_encoder_zoo_benchmarks

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_encoder_zoo_throughput_report():
    report = run_encoder_zoo_benchmarks(repeats=3)
    print()
    print(report.format_table())

    path = report.write(REPO_ROOT / "BENCH_encoders.json")
    assert path.exists()

    expected = {
        f"encoder_{scheme.replace('-', '_')}"
        for scheme in registered_schemes()
    }
    assert {case.name for case in report.cases} == expected
    for case in report.cases:
        assert case.fast_per_second > 0
        assert case.reference_per_second > 0
