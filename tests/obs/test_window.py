"""Rolling-window aggregation: epoch-slot rings under a fake clock."""

import pytest

from repro.obs.window import (
    RollingCounter,
    RollingHistogram,
    TelemetryWindows,
    WINDOW_SPECS,
)


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRollingCounter:
    def test_counts_within_window(self):
        clock = FakeClock()
        counter = RollingCounter(clock=clock)
        counter.inc()
        counter.inc(4)
        assert counter.total(60.0) == 5
        assert counter.rate(60.0) == pytest.approx(5 / 60.0)

    def test_old_events_age_out(self):
        clock = FakeClock()
        counter = RollingCounter(clock=clock)
        counter.inc(10)
        clock.advance(90.0)
        counter.inc(1)
        # The old burst is outside the 1m window but inside the 5m one.
        assert counter.total(60.0) == 1
        assert counter.total(300.0) == 11

    def test_everything_ages_out_past_the_span(self):
        clock = FakeClock()
        counter = RollingCounter(clock=clock)
        counter.inc(10)
        clock.advance(10_000.0)
        assert counter.total(300.0) == 0

    def test_ring_reuses_slots_without_ghosts(self):
        # Wrap the ring several times: totals must reflect only the
        # live window, never a stale slot from a previous lap.
        clock = FakeClock()
        counter = RollingCounter(clock=clock)
        for _ in range(200):  # 200 ticks x 5s = several full laps
            counter.inc()
            clock.advance(5.0)
        assert counter.total(60.0) <= 13  # 60s / 5s-per-tick, inclusive


class TestRollingHistogram:
    def test_quantiles_over_live_slots(self):
        clock = FakeClock()
        hist = RollingHistogram(clock=clock)
        for value in range(1, 11):
            hist.observe(float(value))
        assert hist.count(60.0) == 10
        assert hist.quantile(0.0, 60.0) == 1.0
        assert hist.quantile(1.0, 60.0) == 10.0
        assert hist.quantile(0.5, 60.0) == 5.0
        assert hist.mean(60.0) == pytest.approx(5.5)

    def test_empty_window_yields_none(self):
        hist = RollingHistogram(clock=FakeClock())
        assert hist.quantile(0.99, 60.0) is None
        assert hist.mean(60.0) is None
        assert hist.count(60.0) == 0

    def test_observations_age_out(self):
        clock = FakeClock()
        hist = RollingHistogram(clock=clock)
        hist.observe(100.0)
        clock.advance(90.0)
        hist.observe(1.0)
        assert hist.quantile(1.0, 60.0) == 1.0
        assert hist.quantile(1.0, 300.0) == 100.0


class TestTelemetryWindows:
    def test_snapshot_shape(self):
        clock = FakeClock()
        windows = TelemetryWindows(clock=clock)
        for i in range(10):
            windows.observe(0.010 * (i + 1), ok=(i != 3))
        snap = windows.snapshot()
        assert set(snap) == {name for name, _ in WINDOW_SPECS}
        one_minute = snap["1m"]
        assert one_minute["jobs"] == 10
        assert one_minute["errors"] == 1
        assert one_minute["error_rate"] == pytest.approx(0.1)
        assert one_minute["latency"]["count"] == 10
        assert one_minute["latency"]["p99_ms"] == pytest.approx(100.0)

    def test_windows_disagree_after_aging(self):
        clock = FakeClock()
        windows = TelemetryWindows(clock=clock)
        for _ in range(10):
            windows.observe(0.5, ok=True)
        clock.advance(120.0)
        snap = windows.snapshot()
        assert snap["1m"]["jobs"] == 0
        assert snap["5m"]["jobs"] == 10
