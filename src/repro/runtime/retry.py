"""Retry with deterministic backoff, and a pool circuit breaker.

Campaign results must be reproducible byte-for-byte, so the jitter
that decorrelates retry storms cannot come from ``random`` global
state or the clock: :class:`BackoffPolicy` derives it from a caller
seed, making every delay schedule a pure function of
``(seed, attempt)``.  :func:`retry_call` is the synchronous harness;
:func:`retry_call_async` is the same loop for coroutines (the serve
front-end), sleeping through ``asyncio`` so the event loop keeps
running — and staying cancellable mid-backoff.

:class:`CircuitBreaker` is the pool-health half: each worker failure
feeds :meth:`CircuitBreaker.record_failure`, each success resets the
streak, and once ``threshold`` *consecutive* failures accumulate the
breaker opens — the campaign runner reacts by downgrading from the
process pool to deadline-guarded serial execution.  With a
``cooldown_s`` the breaker additionally implements the classic
three-state machine: after the cooldown one *probe* call is let
through (half-open); its success closes the breaker, its failure
re-opens it for another cooldown.  Without a cooldown (the campaign
default) an open breaker stays open — a downgrade is one-way within
a run.

One deliberate non-feature: the breaker never *catches* anything.
:class:`~repro.runtime.deadline.DeadlineExceeded` inherits from
``BaseException`` precisely so that breaker/retry plumbing written
against ``Exception`` can record a timeout as a failure yet can never
swallow it (see ``tests/runtime/test_breaker_halfopen.py``).
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.obs import OBS


def _unit_interval(seed: str, attempt: int) -> float:
    """Deterministic stand-in for ``random.random()``: a uniform
    [0, 1) value derived from the seed and the attempt number."""
    digest = hashlib.sha256(f"{seed}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with seeded full jitter.

    Delay for attempt ``n`` (0-based) is uniform in
    ``[0, min(cap, base * factor**n))`` — AWS-style "full jitter",
    with the uniform draw seeded so reruns reproduce it exactly.
    """

    base: float = 0.05
    factor: float = 2.0
    cap: float = 2.0
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.base < 0 or self.factor < 1.0 or self.cap < 0:
            raise ValueError("backoff parameters out of range")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def delay(self, attempt: int, seed: str = "") -> float:
        """Jittered sleep before retry ``attempt`` (0-based)."""
        ceiling = min(self.cap, self.base * self.factor**attempt)
        return ceiling * _unit_interval(seed, attempt)


def retry_call(
    fn,
    *,
    policy: BackoffPolicy | None = None,
    seed: str = "",
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    sleep=time.sleep,
    on_retry=None,
):
    """Call ``fn()`` up to ``policy.max_attempts`` times.

    Exceptions matching ``retry_on`` trigger a jittered backoff sleep
    and another attempt; anything else (and the final failure)
    propagates.  ``on_retry(attempt, delay, error)`` is invoked before
    each sleep — campaign code uses it to log and count retries.
    """
    policy = policy or BackoffPolicy()
    last: BaseException | None = None
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except retry_on as err:  # noqa: PERF203 - retry loop by design
            last = err
            if attempt == policy.max_attempts - 1:
                raise
            pause = policy.delay(attempt, seed)
            if on_retry is not None:
                on_retry(attempt, pause, err)
            if OBS.enabled:
                OBS.registry.counter(
                    "runtime.retries",
                    "retried calls after a transient failure",
                    error=type(err).__name__,
                ).inc()
            if pause > 0:
                sleep(pause)
    raise last  # pragma: no cover - unreachable (loop raises first)


async def retry_call_async(
    fn,
    *,
    policy: BackoffPolicy | None = None,
    seed: str = "",
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    sleep=asyncio.sleep,
    on_retry=None,
):
    """Async twin of :func:`retry_call`: ``fn()`` must return an
    awaitable; backoff sleeps go through ``asyncio.sleep`` so the
    event loop stays live and a ``Task.cancel()`` lands mid-backoff
    (``CancelledError`` is a ``BaseException``, so it can never match
    ``retry_on`` tuples written against ``Exception`` — cancellation
    always wins over another attempt)."""
    policy = policy or BackoffPolicy()
    last: BaseException | None = None
    for attempt in range(policy.max_attempts):
        try:
            return await fn()
        except retry_on as err:  # noqa: PERF203 - retry loop by design
            last = err
            if attempt == policy.max_attempts - 1:
                raise
            pause = policy.delay(attempt, seed)
            if on_retry is not None:
                on_retry(attempt, pause, err)
            if OBS.enabled:
                OBS.registry.counter(
                    "runtime.retries",
                    "retried calls after a transient failure",
                    error=type(err).__name__,
                ).inc()
            if pause > 0:
                await sleep(pause)
    raise last  # pragma: no cover - unreachable (loop raises first)


#: CircuitBreaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


@dataclass
class CircuitBreaker:
    """Open after ``threshold`` *consecutive* failures.

    The campaign runner polls :attr:`tripped` after each completed
    case; once open, the pool is torn down and the remaining cases run
    serially (each still under its own deadline).  With the default
    ``cooldown_s=None`` the breaker stays open — a downgrade is
    one-way within a run.

    A long-lived service wants the third state: pass ``cooldown_s``
    and gate work on :meth:`allow`.  Once the cooldown has elapsed the
    next :meth:`allow` moves the breaker to half-open and admits
    exactly one probe; :meth:`record_success` then closes it,
    :meth:`record_failure` re-opens it for a fresh cooldown.  The
    ``clock`` is injectable so the transition logic is testable
    without real sleeps.
    """

    threshold: int = 3
    cooldown_s: float | None = None
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)
    state: str = field(default=CLOSED, init=False)
    consecutive_failures: int = field(default=0, init=False)
    failures_total: int = field(default=0, init=False)
    opened_at: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if self.cooldown_s is not None and self.cooldown_s < 0:
            raise ValueError("breaker cooldown must be >= 0")

    @property
    def tripped(self) -> bool:
        """True while the breaker is not closed (legacy campaign API)."""
        return self.state != CLOSED

    def allow(self) -> bool:
        """May the next call go down the protected (pool) path?

        Closed: yes.  Open: only once ``cooldown_s`` has elapsed — that
        admission *is* the transition to half-open, and it admits one
        probe.  Half-open: no (the outstanding probe decides first).
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN and self.cooldown_s is not None:
            if self.clock() - self.opened_at >= self.cooldown_s:
                self.state = HALF_OPEN
                if OBS.enabled:
                    OBS.registry.counter(
                        "runtime.breaker_probes",
                        "half-open probe calls admitted after a cooldown",
                    ).inc()
                return True
        return False

    def record_success(self) -> None:
        if self.state == HALF_OPEN:
            # The probe came back healthy: close and forget the streak.
            self.state = CLOSED
            self.opened_at = None
        self.consecutive_failures = 0

    def _open(self) -> None:
        self.state = OPEN
        self.opened_at = self.clock()
        if OBS.enabled:
            OBS.registry.counter(
                "runtime.breaker_trips",
                "circuit-breaker trips (pool downgraded to serial)",
            ).inc()

    def record_failure(self) -> bool:
        """Count one failure; returns True if this one moved the
        breaker into the open state (a fresh trip or a failed
        half-open probe)."""
        self.failures_total += 1
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            # The probe failed: back to open for a fresh cooldown.
            self._open()
            return True
        if self.state == CLOSED and self.consecutive_failures >= self.threshold:
            self._open()
            return True
        return False
