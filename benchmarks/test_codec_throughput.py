"""Throughput acceptance harness for the compiled codebook fast path.

Runs :func:`repro.pipeline.benchmark.run_codec_benchmarks` on the same
workloads as ``test_perf_components.py`` (5000-bit stream, 64-word
block, seed 1234), writes ``BENCH_codec.json`` at the repo root, and
asserts the headline speedups.  The harness itself cross-checks fast
and reference outputs for bit-identity before timing, so a passing run
certifies both correctness and throughput.

The acceptance floor is 5x on the encode paths; measured speedups on
the development machine are 20-45x, so the margin absorbs noisy CI
runners.
"""

from pathlib import Path

from repro.pipeline.benchmark import run_codec_benchmarks

REPO_ROOT = Path(__file__).resolve().parent.parent
SPEEDUP_FLOOR = 5.0


def test_codec_throughput_report():
    report = run_codec_benchmarks(repeats=3)
    print()
    print(report.format_table())

    path = report.write(REPO_ROOT / "BENCH_codec.json")
    assert path.exists()

    expected = {
        "stream_encode_greedy",
        "stream_encode_optimal",
        "stream_encode_disjoint",
        "block_encode_greedy",
        "stream_decode_plan",
        "block_decode",
    }
    assert {case.name for case in report.cases} == expected

    for name in (
        "stream_encode_greedy",
        "stream_encode_optimal",
        "block_encode_greedy",
    ):
        case = report.case(name)
        assert case.speedup >= SPEEDUP_FLOOR, (
            f"{name}: {case.speedup:.1f}x < required {SPEEDUP_FLOOR}x"
        )
    # Decode tables help too, but hold them to a softer floor: the
    # reference decode loop is already cheap.
    assert report.case("stream_decode_plan").speedup >= 1.0
    assert report.geomean_speedup >= SPEEDUP_FLOOR
