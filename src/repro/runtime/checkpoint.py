"""Write-ahead checkpointing and atomic artifact writes.

Two failure modes killed long campaigns before this module existed:

* a mid-run SIGKILL threw away every completed case, and
* a crash *during* ``Path.write_text`` of a report left a truncated
  JSON file that downstream tooling then choked on.

:func:`atomic_write_text` fixes the second: the content goes to a
temporary file in the destination directory, is flushed and fsynced,
and only then renamed over the target with ``os.replace`` — so the
artifact is always either the complete old version or the complete
new one.

:class:`CheckpointLog` fixes the first with the standard
write-ahead-log shape: one JSON line per completed unit of work,
fsynced on append.  On resume the log is replayed (tolerating a
truncated final line, the expected artifact of dying mid-append) and
completed keys are skipped.  The log is keyed by a ``run_key`` derived
from the campaign configuration, so a resume with a *different*
configuration refuses to mix results.

Every durability syscall both of them issue goes through the storage
VFS (:mod:`repro.runtime.storage_faults`), so the fault-injection
layer and the crash-consistency checker see each one; raw ``OSError``
failures are re-raised as the typed
:class:`~repro.errors.StorageError` hierarchy at this boundary, so no
bare ``OSError`` ever escapes to callers (a
:class:`~repro.runtime.storage_faults.SimulatedCrash` passes through
untouched — dead processes don't raise nicely).
"""

from __future__ import annotations

import json
import os
import weakref
from pathlib import Path

from repro.errors import ReproError, StorageError, storage_error_for
from repro.obs import OBS
from repro.runtime.storage_faults import SimulatedCrash, StorageVFS, get_vfs


class CheckpointMismatchError(ReproError):
    """Resume attempted against a WAL from a different run config."""


class CheckpointLockError(ReproError):
    """A second writer tried to append to an already-locked WAL.

    Two writers interleaving records on one log would corrupt the
    replay silently (each believes every record is its own), so the
    first append takes an exclusive advisory lock on the file and any
    other opener fails loudly instead."""


def atomic_write_text(
    path: Path | str, content: str, vfs: StorageVFS | None = None
) -> None:
    """Crash-safe replacement for ``Path.write_text``.

    Writes to a temp file in the same directory (same filesystem, so
    the rename is atomic), fsyncs it, then ``os.replace``\\ s it over
    ``path``.  Readers never observe a partial file; a failure at any
    syscall raises a typed :class:`~repro.errors.StorageError` and
    leaves the previous complete content in place.
    """
    path = Path(path)
    vfs = vfs or get_vfs()
    op = "open"
    tmp_name = None
    try:
        vfs.mkdirs(path.parent)
        handle, tmp_name = vfs.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            op = "write"
            vfs.write(handle, content.encode("utf-8"))
            op = "fsync"
            vfs.fsync(handle)
        finally:
            try:
                vfs.close(handle)
            except OSError:  # the close of a failed handle is best-effort
                pass
        op = "replace"
        vfs.replace(tmp_name, path)
    except SimulatedCrash:
        # A "dead" process performs no cleanup: the checker must see
        # exactly the state a real kill leaves behind (the orphan tmp
        # file included).
        raise
    except OSError as err:
        if tmp_name is not None:
            try:
                vfs.unlink(tmp_name)
            except OSError:
                pass
        if isinstance(err, StorageError):
            raise
        raise storage_error_for(err, op, path) from err


class CheckpointLog:
    """JSONL write-ahead log of completed work units.

    Record shape: the first line is a header ``{"run_key": ...}``;
    every subsequent line is ``{"key": <case key>, "result": <dict>}``.
    Appends are fsynced so a completed case survives any subsequent
    kill; a half-written trailing line (the signature of dying
    mid-append) is ignored on load.
    """

    def __init__(
        self,
        path: Path | str,
        run_key: str,
        vfs: StorageVFS | None = None,
    ):
        self.path = Path(path)
        self.run_key = run_key
        self.completed: dict[str, dict] = {}
        self._handle = None
        self._vfs_override = vfs
        self._vfs: StorageVFS | None = None
        #: Set when an append died partway: the on-disk tail may hold
        #: a torn line that must be newline-terminated before the next
        #: record, or the replay would glue them together.
        self._tail_dirty = False
        #: Set when the header line is still owed (a fresh log whose
        #: header append failed): it must land before any record, or
        #: the replay would mistake the first record for the header.
        self._needs_header = False

    @property
    def vfs(self) -> StorageVFS:
        """The VFS this log runs on: pinned at first open so one log
        never mixes handle types, resolved late so env/test installs
        are honoured."""
        if self._vfs is None:
            self._vfs = self._vfs_override or get_vfs()
        return self._vfs

    # -- loading -------------------------------------------------------

    def load(self) -> dict[str, dict]:
        """Replay the log (if it exists) into :attr:`completed`.

        Raises :class:`CheckpointMismatchError` when the log belongs
        to a different run configuration."""
        self.completed = {}
        if not self.vfs.exists(self.path):
            return self.completed
        # Bytes, not text: a torn tail can end mid-way through a
        # multi-byte UTF-8 character, which a text-mode read would
        # refuse to decode at all.
        lines = self.vfs.read_bytes(self.path).split(b"\n")
        header_seen = False
        for raw in lines:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Truncated or torn line — the tail of a killed append.
                continue
            if not isinstance(record, dict):
                # Valid JSON but not a record (torn bytes that happen
                # to parse, e.g. a bare number): not ours, skip it.
                continue
            if not header_seen:
                header_seen = True
                logged_key = record.get("run_key")
                if logged_key != self.run_key:
                    raise CheckpointMismatchError(
                        f"checkpoint log {self.path} belongs to run "
                        f"{logged_key!r}, not {self.run_key!r}; refusing "
                        "to mix results (delete it to start over)"
                    )
                continue
            key = record.get("key")
            if isinstance(key, str):
                self.completed[key] = record.get("result", {})
        if OBS.enabled and self.completed:
            OBS.registry.counter(
                "runtime.checkpoint_replayed",
                "completed cases skipped thanks to a WAL replay",
            ).inc(len(self.completed))
        return self.completed

    # -- appending -----------------------------------------------------

    def open_for_append(self) -> None:
        """Eagerly take the WAL lock (normally taken lazily by the
        first :meth:`record`), so a process that must not share the
        log — a resumed server — fails fast at startup instead of
        mid-dispatch."""
        self._ensure_open()

    def _ensure_open(self) -> None:
        if self._handle is not None:
            return
        vfs = self.vfs
        op = "open"
        try:
            vfs.mkdirs(self.path.parent)
            # The lock must be taken *before* the torn-tail repair
            # below: two writers racing that repair could each append
            # a newline.  flock is per open file description, so a
            # second CheckpointLog in the same process conflicts just
            # like one in another process.
            lock_handle = vfs.open_append(self.path)
        except SimulatedCrash:
            raise
        except OSError as err:
            raise storage_error_for(err, op, self.path) from err
        try:
            vfs.lock_exclusive(lock_handle)
        except OSError:
            try:
                vfs.close(lock_handle)
            except OSError:
                pass
            raise CheckpointLockError(
                f"checkpoint log {self.path} is already locked by "
                "another writer; two writers on one WAL would "
                "interleave records (resume the existing run or "
                "point this one at its own --wal path)"
            ) from None
        try:
            fresh = vfs.size(self.path) == 0
            if not fresh:
                # A torn tail means the file doesn't end in a newline;
                # a plain append would glue the next record onto the
                # torn bytes and lose it on replay.  Terminate first.
                if vfs.tail_byte(self.path) != b"\n":
                    op = "write"
                    vfs.write(lock_handle, b"\n")
                    op = "fsync"
                    vfs.fsync(lock_handle)
        except SimulatedCrash:
            raise
        except OSError as err:
            try:
                vfs.close(lock_handle)
            except OSError:
                pass
            if isinstance(err, StorageError):
                raise
            raise storage_error_for(err, op, self.path) from err
        # The locked handle doubles as the append handle (append mode
        # positions every write at EOF, so the repair above is seen).
        self._handle = lock_handle
        _OPEN_LOGS.add(self)
        # "Non-empty" does not mean "has a header": a crash can tear
        # the header line itself, leaving garbage bytes and no header.
        # Appending records to such a file would make the replay
        # mistake the first record for the header — so the header is
        # owed whenever no complete one is on disk.
        if fresh or not self._has_complete_header():
            self._needs_header = True
        if self._needs_header:
            self._append_line({"run_key": self.run_key})
            self._needs_header = False

    def _has_complete_header(self) -> bool:
        """Whether the on-disk log already holds a complete header
        line (the first parseable dict line carrying ``run_key``)."""
        try:
            data = self.vfs.read_bytes(self.path)
        except OSError:
            return False
        for raw in data.split(b"\n"):
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn line — keep scanning
            if isinstance(record, dict):
                # The first parseable dict decides: a header means the
                # log is properly started; anything else means the
                # header is missing and must be re-owed.
                return "run_key" in record
        return False

    def _append_line(self, record: dict) -> None:
        # Key order is preserved (no sort_keys): a replayed result must
        # serialize byte-identically to the freshly computed one, and
        # the caller's dicts are already built in deterministic order.
        vfs = self.vfs
        payload = (
            json.dumps(record, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        op = "write"
        try:
            if self._tail_dirty:
                # A previous append died mid-line: terminate the torn
                # bytes so the replay skips them as one garbage line
                # instead of gluing this record onto them.
                vfs.write(self._handle, b"\n")
                vfs.fsync(self._handle)
                self._tail_dirty = False
            vfs.write(self._handle, payload)
            op = "fsync"
            vfs.fsync(self._handle)
        except SimulatedCrash:
            raise
        except OSError as err:
            # Whatever partial bytes reached the file, the next append
            # must repair the line boundary first.
            self._tail_dirty = True
            if isinstance(err, StorageError):
                raise
            raise storage_error_for(err, op, self.path) from err

    def record(self, key: str, result: dict) -> None:
        """Durably mark one work unit complete.

        Raises a typed :class:`~repro.errors.StorageError` when the
        disk refuses (:class:`~repro.errors.StorageFullError` on
        ENOSPC — the one callers may degrade on); the record is only
        added to :attr:`completed` once the fsync acknowledged it."""
        self._ensure_open()
        if self._needs_header:
            self._append_line({"run_key": self.run_key})
            self._needs_header = False
        self._append_line({"key": key, "result": result})
        self.completed[key] = result
        if OBS.enabled:
            OBS.registry.counter(
                "runtime.checkpoint_appends", "WAL records written"
            ).inc()

    def __contains__(self, key: str) -> bool:
        return key in self.completed

    def close(self) -> None:
        if self._handle is not None:
            handle, self._handle = self._handle, None
            try:
                self.vfs.close(handle)
            except OSError:
                pass
        _OPEN_LOGS.discard(self)

    def __enter__(self) -> "CheckpointLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Logs currently holding the append lock, so fork children can be
#: scrubbed of them (weak: a dropped log must not be kept alive).
_OPEN_LOGS: "weakref.WeakSet[CheckpointLog]" = weakref.WeakSet()


def _release_inherited_locks() -> None:
    """Drop WAL handles in a freshly forked child.

    ``flock`` belongs to the open file *description*, which fork
    children share — a pool worker that inherits a locked WAL keeps it
    locked even after the parent is SIGKILLed (orphaned workers made a
    resumed server hang on ``CheckpointLockError`` forever).  Closing
    the child's copy leaves the parent as the description's only
    holder, so the lock dies exactly when the parent does."""
    for log in list(_OPEN_LOGS):
        handle, log._handle = log._handle, None
        _OPEN_LOGS.discard(log)
        if handle is not None:
            try:
                handle.close()
            except OSError:  # pragma: no cover - best-effort scrub
                pass


if hasattr(os, "register_at_fork"):  # Unix; a no-op elsewhere
    os.register_at_fork(after_in_child=_release_inherited_locks)
