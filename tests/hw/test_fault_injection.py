"""Fault-injection tests: the verification machinery must catch
corrupted tables, images and protocol violations — silence would mean
our "decode verified" claims are vacuous."""

import pytest

from tests.strategies import seeded_words

from repro.core.program_codec import encode_basic_block
from repro.errors import TableIntegrityError
from repro.hw.bbit import BasicBlockIdentificationTable, BBITEntry
from repro.hw.fetch_decoder import FetchDecoder
from repro.hw.tt import TransformationTable, TTEntry


def _setup(words, block_size=5, base=0x400000):
    encoding = encode_basic_block(words, block_size)
    tt = TransformationTable(16)
    bbit = BasicBlockIdentificationTable(16)
    index = tt.allocate(encoding)
    bbit.install(BBITEntry(pc=base, tt_index=index, num_instructions=len(words)))
    image = {base + 4 * i: w for i, w in enumerate(encoding.encoded_words)}
    return encoding, tt, bbit, image


def _decode_all(tt, bbit, image, count, block_size=5, base=0x400000):
    decoder = FetchDecoder(tt, bbit, block_size)
    return [decoder.fetch(base + 4 * i, image[base + 4 * i]) for i in range(count)]


@pytest.fixture()
def words():
    return seeded_words(77, 14)


class TestTableCorruption:
    def test_flipped_selector_detected(self, words):
        encoding, tt, bbit, image = _setup(words)
        # Find an entry/line whose selector actually matters and flip it.
        for entry_index, entry in enumerate(tt.entries):
            for line in range(32):
                selectors = list(entry.selectors)
                original = selectors[line]
                selectors[line] = (original + 1) % 8
                tt.entries[entry_index] = TTEntry(
                    selectors=tuple(selectors), end=entry.end, count=entry.count
                )
                decoded = _decode_all(tt, bbit, image, len(words))
                tt.entries[entry_index] = entry  # restore
                if decoded != words:
                    return  # corruption visible: good
        pytest.fail("no selector flip ever changed the decode output")

    def test_wrong_tt_base_index_detected(self, words):
        encoding, tt, bbit, image = _setup(words)
        bbit.clear()
        bbit.install(
            BBITEntry(pc=0x400000, tt_index=1, num_instructions=len(words))
        )
        # Either the decode output is wrong or the walk runs off the
        # end of the table (a checked TableIntegrityError, no longer a
        # raw IndexError) — both are detectable faults.
        try:
            decoded = _decode_all(tt, bbit, image, len(words))
        except TableIntegrityError:
            return
        assert decoded != words

    def test_wrong_block_length_truncates_decode(self, words):
        encoding, tt, bbit, image = _setup(words)
        bbit.clear()
        bbit.install(
            BBITEntry(pc=0x400000, tt_index=0, num_instructions=4)
        )
        decoded = _decode_all(tt, bbit, image, len(words))
        # After the (wrong) length runs out the decoder deactivates
        # and later encoded words pass through raw -> mismatch.
        assert decoded[:4] == words[:4]
        assert decoded != words


class TestImageCorruption:
    def test_flipped_stored_bit_detected(self, words):
        encoding, tt, bbit, image = _setup(words)
        victim = 0x400000 + 4 * 7
        image[victim] ^= 1 << 13
        decoded = _decode_all(tt, bbit, image, len(words))
        assert decoded != words

    def test_corruption_propagates_within_line(self, words):
        # History-based decode means one flipped stored bit can smear
        # along its bus line until the next anchor — check the blast
        # radius stays within the basic block.
        encoding, tt, bbit, image = _setup(words)
        image[0x400000 + 4 * 5] ^= 1 << 2
        decoded = _decode_all(tt, bbit, image, len(words))
        assert decoded[:5] == words[:5]  # earlier fetches unaffected
        assert decoded[5] != words[5]


def _synthetic_target(
    num_blocks=2, block_len=14, block_size=5, seed=7, parity=True
):
    """A DeploymentTarget built directly from encoded blocks — no
    workload simulation, so per-model sweeps stay fast."""
    from repro.faults.campaign import DeploymentTarget

    from tests.strategies import rng_for

    rng = rng_for("fault-injection-target", seed)
    base = 0x400000
    original = [rng.getrandbits(32)]  # one unencoded word (detour target)
    encoded = list(original)
    tt_entries, bbit_entries = [], []
    block_pcs = []
    pc = base + 4
    tt_index = 0
    for _ in range(num_blocks):
        words = [rng.getrandbits(32) for _ in range(block_len)]
        enc = encode_basic_block(words, block_size)
        for row, (start, seg_len) in zip(enc.selectors(), enc.bounds):
            is_tail = start + seg_len >= block_len
            tt_entries.append(
                {
                    "selectors": list(row),
                    "end": is_tail,
                    "count": (
                        (seg_len if start == 0 else seg_len - 1)
                        if is_tail
                        else 0
                    ),
                }
            )
            tt_index += 1
        bbit_entries.append(
            {
                "pc": pc,
                "tt_index": tt_index - len(enc.bounds),
                "num_instructions": block_len,
            }
        )
        block_pcs.append(pc)
        original.extend(words)
        encoded.extend(enc.encoded_words)
        pc += 4 * block_len
    trace = [base]
    for _ in range(2):  # each block fetched twice
        for start in block_pcs:
            trace.extend(start + 4 * i for i in range(block_len))
            trace.append(base)  # branch back out through the neutral word
    return DeploymentTarget(
        name="synthetic",
        block_size=block_size,
        text_base=base,
        original_words=original,
        encoded_words=encoded,
        tt_entries=tt_entries,
        bbit_entries=bbit_entries,
        trace=trace,
        parity=parity,
    )


class TestPerModelDetectionRates:
    """Every SEC-DED-protected table corruption and protocol violation
    must be corrected, detected (strict) or recovered (recover /
    degraded) whenever it manifests — the acceptance bar for the
    hardened decode path.  Single-bit row corruptions now heal
    transparently (``corrected``); only double-bit rows, protocol
    violations and stale tags fall through to detect/recover."""

    TRIALS = 20

    #: Models whose corruption is a single stored bit of one row —
    #: exactly what SEC-DED corrects in place.
    SINGLE_BIT_MODELS = {
        "tt_selector_flip",
        "tt_end_flip",
        "tt_count_corruption",
        "bbit_wrong_tt_index",
    }

    @pytest.fixture(scope="class")
    def target(self):
        return _synthetic_target()

    @pytest.fixture(scope="class")
    def protected_models(self):
        from repro.faults.models import DEFAULT_MODELS

        return [m for m in DEFAULT_MODELS if m.protected]

    def test_protected_models_strict_corrected_or_detected(
        self, target, protected_models
    ):
        from repro.faults.campaign import run_case

        for model in protected_models:
            outcomes = [
                run_case(target, model, f"t:{model.name}:{i}", "strict").outcome
                for i in range(self.TRIALS)
            ]
            assert set(outcomes) <= {
                "detected",
                "corrected",
                "masked",
                "not-applicable",
            }, (model.name, outcomes)
            if set(outcomes) == {"not-applicable"}:
                # Mixed-scheme models have nothing to bite on in this
                # classic deployment; covered by tests/faults.
                assert model.name == "scheme_tag_corruption", model.name
                continue
            handled = outcomes.count("detected") + outcomes.count("corrected")
            assert handled > 0, model.name
            if model.name in self.SINGLE_BIT_MODELS:
                # A single flipped bit never aborts any more: it heals.
                assert outcomes.count("detected") == 0, (model.name, outcomes)
                assert outcomes.count("corrected") > 0, model.name
            if model.name.endswith("double_bit_flip"):
                # Past correction power: must detect, never correct.
                assert outcomes.count("corrected") == 0, (model.name, outcomes)
                assert outcomes.count("detected") > 0, model.name

    def test_protected_models_recover_all_recovered(
        self, target, protected_models
    ):
        from repro.faults.campaign import run_case

        for model in protected_models:
            outcomes = [
                run_case(
                    target, model, f"t:{model.name}:{i}", "recover"
                ).outcome
                for i in range(self.TRIALS)
            ]
            assert set(outcomes) <= {
                "recovered",
                "corrected",
                "masked",
                "not-applicable",
            }, (model.name, outcomes)
            if set(outcomes) == {"not-applicable"}:
                assert model.name == "scheme_tag_corruption", model.name
                continue
            handled = outcomes.count("recovered") + outcomes.count("corrected")
            assert handled > 0, model.name

    def test_protected_models_degraded_bit_identical(
        self, target, protected_models
    ):
        """Degraded mode's promise: protected corruption never raises
        and never yields a wrong instruction — blocks either heal, or
        demote to golden-image service (classified ``recovered``)."""
        from repro.faults.campaign import run_case

        for model in protected_models:
            outcomes = [
                run_case(
                    target, model, f"t:{model.name}:{i}", "degraded"
                ).outcome
                for i in range(self.TRIALS)
            ]
            assert set(outcomes) <= {
                "recovered",
                "corrected",
                "masked",
                "not-applicable",
            }, (model.name, outcomes)
            assert "silently-corrupted" not in outcomes, model.name
            assert "crashed" not in outcomes, model.name

    def test_image_flips_are_silent_without_ecc(self, target):
        from repro.faults.models import ImageBitFlip
        from repro.faults.campaign import run_case

        outcomes = [
            run_case(target, ImageBitFlip(), f"img:{i}", "strict").outcome
            for i in range(self.TRIALS)
        ]
        # The honest negative result: stored-image upsets have no
        # runtime check to trip, so they corrupt silently (or mask).
        assert set(outcomes) <= {"silently-corrupted", "masked"}
        assert "silently-corrupted" in outcomes

    def test_without_parity_table_corruption_can_be_silent(self):
        from repro.faults.models import TTSelectorFlip
        from repro.faults.campaign import run_case

        target = _synthetic_target(parity=False)
        outcomes = {
            run_case(target, TTSelectorFlip(), f"np:{i}", "strict").outcome
            for i in range(self.TRIALS)
        }
        assert "silently-corrupted" in outcomes  # what parity buys us

    def test_same_seed_same_outcome(self, target):
        from repro.faults.models import DEFAULT_MODELS
        from repro.faults.campaign import run_case

        for model in DEFAULT_MODELS:
            first = run_case(target, model, "fixed-seed", "strict")
            second = run_case(target, model, "fixed-seed", "strict")
            assert first.outcome == second.outcome
            assert first.detail == second.detail


class TestRecoverModeDecoder:
    def test_recover_never_raises_and_records_events(self, words):
        encoding, tt, bbit, image = _setup(words)
        region = {0x400000 + 4 * i for i in range(len(words))}
        decoder = FetchDecoder(
            tt, bbit, 5, encoded_region=region, mode="recover"
        )
        # Enter mid-block: strict would raise DecodeFault.
        mid = 0x400000 + 4 * 6
        out = decoder.fetch(mid, image[mid])
        assert out == image[mid]  # passed through raw
        assert decoder.recovery_events
        assert decoder.recovery_events[0]["kind"] == "mid_block_entry"
        assert decoder.passthrough_instructions == 1
        # The rest of the block passes through without further events.
        decoder.fetch(mid + 4, image[mid + 4])
        assert len(decoder.recovery_events) == 1

    def test_recover_tt_integrity_falls_back_to_passthrough(self, words):
        encoding, tt, bbit, image = _setup(words)
        tt.parity_enabled = True
        tt.seal()
        entry = tt.entries[1]
        tt.entries[1] = TTEntry(
            selectors=tuple((s + 1) % 8 for s in entry.selectors),
            end=entry.end,
            count=entry.count,
        )
        decoder = FetchDecoder(tt, bbit, 5, mode="recover")
        decoded = [
            decoder.fetch(0x400000 + 4 * i, image[0x400000 + 4 * i])
            for i in range(len(words))
        ]
        assert any(
            e["kind"] == "tt_integrity" for e in decoder.recovery_events
        )
        # Everything before the corrupted segment decoded correctly.
        assert decoded[:5] == words[:5]
        stats = decoder.stats()
        assert stats["recoveries"] == len(decoder.recovery_events) >= 1

    def test_strict_finalize_detects_truncation(self, words):
        from repro.errors import DecodeFault as StructuredDecodeFault

        encoding, tt, bbit, image = _setup(words)
        decoder = FetchDecoder(tt, bbit, 5)
        for i in range(4):  # stop mid-block
            decoder.fetch(0x400000 + 4 * i, image[0x400000 + 4 * i])
        with pytest.raises(StructuredDecodeFault, match="mid-block"):
            decoder.finalize()

    def test_recover_finalize_records_truncation(self, words):
        encoding, tt, bbit, image = _setup(words)
        decoder = FetchDecoder(tt, bbit, 5, mode="recover")
        for i in range(4):
            decoder.fetch(0x400000 + 4 * i, image[0x400000 + 4 * i])
        decoder.finalize()
        assert decoder.recovery_events[-1]["kind"] == "trace_truncation"


class TestDecoderHardening:
    def test_reset_clears_counters(self, words):
        encoding, tt, bbit, image = _setup(words)
        decoder = FetchDecoder(tt, bbit, 5)
        lookup = lambda pc: image[pc]
        addresses = [0x400000 + 4 * i for i in range(len(words))]
        first = decoder.decode_trace(addresses, lookup)
        decoded_count = decoder.decoded_instructions
        tt_reads = decoder.tt_reads
        second = decoder.decode_trace(addresses, lookup)
        assert first == second == words
        # Counters no longer leak across decode_trace calls.
        assert decoder.decoded_instructions == decoded_count
        assert decoder.tt_reads == tt_reads
        assert decoder.passthrough_instructions == 0

    def test_caller_supplied_empty_region_is_kept(self, words):
        encoding, tt, bbit, image = _setup(words)
        region: set[int] = set()
        decoder = FetchDecoder(tt, bbit, 5, encoded_region=region)
        assert decoder.encoded_region is region  # not silently replaced

    def test_block_size_type_checked(self, words):
        encoding, tt, bbit, image = _setup(words)
        with pytest.raises(TypeError, match="block_size"):
            FetchDecoder(tt, bbit, "5")
        with pytest.raises(TypeError, match="block_size"):
            FetchDecoder(tt, bbit, True)

    def test_invalid_mode_rejected(self, words):
        encoding, tt, bbit, image = _setup(words)
        with pytest.raises(ValueError, match="mode"):
            FetchDecoder(tt, bbit, 5, mode="lenient")

    def test_parity_protected_bbit_detects_corruption(self, words):
        from repro.hw.bbit import BasicBlockIdentificationTable

        encoding, tt, bbit, image = _setup(words)
        protected = BasicBlockIdentificationTable(16, parity=True)
        protected.install(
            BBITEntry(pc=0x400000, tt_index=0, num_instructions=len(words))
        )
        protected._by_pc[0x400000] = BBITEntry(
            pc=0x400000, tt_index=3, num_instructions=len(words)
        )
        with pytest.raises(TableIntegrityError, match="parity"):
            protected.lookup(0x400000)


class TestFlowLevelDetection:
    def test_bundle_detects_tampered_image(self):
        from repro.pipeline.bundle import EncodingBundle
        from repro.pipeline.flow import EncodingFlow
        from repro.sim.cpu import run_program
        from repro.workloads.registry import build_workload

        workload = build_workload("lu", n=6)
        program = workload.assemble()
        cpu, trace = run_program(program)
        result = EncodingFlow(block_size=5).run(program, trace, "lu")
        assert result.decode_verified

        bundle = EncodingBundle.from_flow_result(program, result)
        assert bundle.deploy_and_check(program, trace)
        # Flip one stored bit inside an encoded block: the loader-side
        # decode check must fail.
        victim_index = program.index_of(result.selected_blocks[0]) + 1
        bundle.encoded_words[victim_index] ^= 0x00010000
        assert not bundle.deploy_and_check(program, trace)
