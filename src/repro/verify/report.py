"""``VERIFY_report.json``: the verification campaign's verdict.

The report carries everything needed to (a) trust a green run — the
coverage block qualifies "zero mismatches" with how much of the
behaviour space was actually exercised — and (b) act on a red run:
each mismatch ships as a minimised, replayable counterexample that
``repro verify --replay`` reproduces from the report alone.

Written through :func:`repro.runtime.atomic_write_text` so a crash
mid-write never leaves a truncated report, with ``deterministic=True``
zeroing the wall-clock fields so seed-pinned CI runs are
byte-comparable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.runtime import atomic_write_text

#: Top-level schema version of VERIFY_report.json.
REPORT_VERSION = 1

#: Keys every well-formed report must carry (the CI gate refuses a
#: report missing any of them rather than passing vacuously).
REQUIRED_KEYS = (
    "version",
    "config",
    "kinds",
    "mismatches",
    "counterexamples",
    "coverage",
    "gate_problems",
    "mutations",
    "check_ok",
)


@dataclass
class VerifyReport:
    """Aggregated outcome of one differential verification campaign."""

    config: dict
    kinds: dict[str, dict[str, int]]  # kind -> {"run": n, "failed": m}
    mismatches: list[dict]
    counterexamples: list[dict]
    coverage: dict
    gate_problems: list[str]
    mutations: list[str] = field(default_factory=list)
    total_seconds: float = 0.0
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------

    @property
    def cases_run(self) -> int:
        return sum(counts["run"] for counts in self.kinds.values())

    @property
    def mismatch_count(self) -> int:
        return len(self.mismatches)

    @property
    def check_ok(self) -> bool:
        """The ``--check`` verdict: no divergence anywhere AND the
        coverage gate (100% codebook/τ for gated block sizes) holds."""
        return not self.mismatches and not self.gate_problems

    # ------------------------------------------------------------------

    def format_summary(self) -> str:
        lines = [
            f"{'kind':<16s} {'run':>6s} {'failed':>7s}",
            "-" * 31,
        ]
        for kind in sorted(self.kinds):
            counts = self.kinds[kind]
            lines.append(
                f"{kind:<16s} {counts['run']:>6d} {counts['failed']:>7d}"
            )
        lines.append("-" * 31)
        lines.append(
            f"{'total':<16s} {self.cases_run:>6d} {self.mismatch_count:>7d}"
        )
        for dimension, entry in sorted(self.coverage.items()):
            lines.append(
                f"coverage {dimension}: {entry['covered']}/{entry['universe']}"
                f" ({entry['percent']:.1f}%)"
            )
        for problem in self.gate_problems:
            lines.append(f"GATE: {problem}")
        if self.mutations:
            lines.append(f"armed mutations: {', '.join(self.mutations)}")
        lines.append(f"check: {'OK' if self.check_ok else 'FAILED'}")
        return "\n".join(lines)

    def to_dict(self, deterministic: bool = False) -> dict:
        return {
            "version": REPORT_VERSION,
            "config": self.config,
            "kinds": self.kinds,
            "mismatches": self.mismatches,
            "counterexamples": self.counterexamples,
            "coverage": self.coverage,
            "gate_problems": list(self.gate_problems),
            "mutations": list(self.mutations),
            "check_ok": self.check_ok,
            "total_seconds": 0.0 if deterministic else self.total_seconds,
            "meta": {} if deterministic else self.meta,
        }

    def to_json(self, deterministic: bool = False) -> str:
        return json.dumps(self.to_dict(deterministic=deterministic), indent=1)

    def write(
        self,
        path: str = "VERIFY_report.json",
        deterministic: bool = False,
    ) -> Path:
        target = Path(path)
        atomic_write_text(target, self.to_json(deterministic=deterministic))
        return target


# ----------------------------------------------------------------------
# Report-side validation (the CI gate's parsing half)
# ----------------------------------------------------------------------


def load_verify_report(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


def verify_report_problems(
    data: dict, min_coverage: dict[str, float] | None = None
) -> list[str]:
    """Structural + threshold validation of a parsed report dict.

    ``min_coverage`` maps dimension name to a minimum percent (e.g.
    ``{"codebook_entries": 100.0}``) — the CI coverage gate.  Returns
    human-readable problems; empty means the report passes.
    """
    problems = [
        f"report is missing required key {key!r}"
        for key in REQUIRED_KEYS
        if key not in data
    ]
    if problems:
        return problems
    if data["version"] != REPORT_VERSION:
        problems.append(
            f"report version {data['version']!r} != {REPORT_VERSION}"
        )
    if not data["check_ok"]:
        problems.append(
            f"check failed: {len(data['mismatches'])} mismatch(es), "
            f"{len(data['gate_problems'])} gate problem(s)"
        )
    for dimension, floor in (min_coverage or {}).items():
        entry = data["coverage"].get(dimension)
        if entry is None:
            problems.append(f"coverage block lacks dimension {dimension!r}")
        elif entry["percent"] < floor:
            problems.append(
                f"coverage {dimension} at {entry['percent']:.1f}% "
                f"is below the {floor:.1f}% threshold"
            )
    for record in data["counterexamples"]:
        for key in ("kind", "params", "mismatch"):
            if key not in record:
                problems.append(
                    f"counterexample record lacks {key!r}: not replayable"
                )
                break
    return problems
