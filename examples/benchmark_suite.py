"""Regenerate the paper's evaluation (Figures 6 and 7) in one command.

Runs the six benchmarks on the simulator, applies the encoding flow at
block sizes 4..7 and prints the Figure-6 table plus a Figure-7 style
ASCII chart.  Data sizes default to simulator-friendly scales; pass
``--paper-scale`` for the (slow) paper-sized runs, or ``--quick`` for
a fast smoke run.

Run:  python examples/benchmark_suite.py [--quick | --paper-scale]
"""

import argparse
import time

from repro.pipeline.flow import EncodingFlow
from repro.pipeline.report import (
    fig6_table,
    fig7_series,
    format_fig6,
    format_fig7_ascii,
    summarize_results,
)
from repro.sim.cpu import run_program
from repro.workloads.registry import BENCHMARK_ORDER, build_workload

SIZES = {
    "quick": {
        "mmul": {"n": 10},
        "sor": {"n": 12, "sweeps": 3},
        "ej": {"n": 12, "sweeps": 3},
        "fft": {"n": 64},
        "tri": {"n": 48, "sweeps": 5},
        "lu": {"n": 12},
    },
    "default": {
        "mmul": {"n": 24},
        "sor": {"n": 32, "sweeps": 6},
        "ej": {"n": 32, "sweeps": 6},
        "fft": {"n": 256},
        "tri": {"n": 128, "sweeps": 20},
        "lu": {"n": 32},
    },
    # The paper's sizes.  mmul alone executes ~9M instructions; expect
    # minutes per benchmark under the pure-Python simulator.
    "paper": {
        "mmul": {"n": 100},
        "sor": {"n": 256, "sweeps": 2},
        "ej": {"n": 128, "sweeps": 4},
        "fft": {"n": 256},
        "tri": {"n": 128, "sweeps": 20},
        "lu": {"n": 128},
    },
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--paper-scale", action="store_true")
    parser.add_argument(
        "--block-sizes",
        type=int,
        nargs="+",
        default=[4, 5, 6, 7],
        help="vertical block sizes to evaluate",
    )
    args = parser.parse_args()
    scale = "paper" if args.paper_scale else ("quick" if args.quick else "default")
    sizes = SIZES[scale]

    results = {}
    for name in BENCHMARK_ORDER:
        t0 = time.time()
        workload = build_workload(name, **sizes[name])
        program = workload.assemble()
        cpu, trace = run_program(program, max_steps=2_000_000_000)
        if workload.verify is not None:
            workload.verify(cpu)
        per_size = {}
        for k in args.block_sizes:
            per_size[k] = EncodingFlow(block_size=k).run(program, trace, name)
            assert per_size[k].decode_verified or not per_size[k].selected_blocks
        results[name] = per_size
        print(
            f"{name:5s}: {len(trace):>9d} fetches, "
            f"{len(per_size[args.block_sizes[0]].selected_blocks)} blocks "
            f"encoded, {time.time() - t0:5.1f}s"
        )

    print("\n=== Figure 6 (transition reduction results) ===")
    print(format_fig6(fig6_table(results, BENCHMARK_ORDER)))

    print("\n=== Figure 7 (percentage reduction comparison) ===")
    series = fig7_series(results, BENCHMARK_ORDER)
    print(format_fig7_ascii(series, BENCHMARK_ORDER))

    averages = summarize_results(results)
    print(
        "averages:",
        "  ".join(f"k={k}: {v:.1f}%" for k, v in sorted(averages.items())),
    )


if __name__ == "__main__":
    main()
