"""The distributed telemetry plane: worker deltas, stitched traces,
live endpoints, SLO verdicts, and the flight recorder.

This file carries the PR's acceptance checks.  The cross-process
contract under test: worker-side metrics and spans must reach the
server's registry through any amount of chaos, losing at most the
delta that was in flight inside a killed worker.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.obs import OBS
from repro.obs.metrics import MetricsRegistry
from repro.serve.client import ServeClient, start_tcp_server
from repro.serve.server import EncodingServer, ServeConfig, format_status
from tests.strategies import rng_for

REPO_ROOT = Path(__file__).resolve().parents[2]

#: One fast job template (tens of milliseconds end to end).  The
#: params are unique to this file: other tests compute the stock
#: taps=8/samples=48 config in the pytest process itself, and fork
#: workers inherit those warm module-level caches — a cache hit would
#: skip the encode whose codec counters these tests assert on.
FIR = {
    "tenant": "t0",
    "job_id": "j0",
    "kind": "encode",
    "workload": "fir",
    "block_size": 5,
    "workload_params": {"taps": 8, "samples": 52},
}


@pytest.fixture(autouse=True)
def _isolated_obs():
    """These tests flip the process-wide switch; always restore it."""
    yield
    obs.disable()
    obs.reset()


def _jobs(n: int, **overrides) -> list[dict]:
    jobs = []
    for i in range(n):
        raw = dict(FIR)
        raw["job_id"] = f"j{i:03d}"
        raw.update(overrides)
        jobs.append(raw)
    return jobs


def _serve(requests: list[dict], config: ServeConfig):
    async def _run():
        async with EncodingServer(config) as server:
            results = await server.run_batch(requests)
        return results, server

    return asyncio.run(_run())


# ----------------------------------------------------------------------
# Delta merge: order invariance
# ----------------------------------------------------------------------


def _simulated_worker(seed: int) -> tuple[MetricsRegistry, list]:
    """One worker's registry after a few jobs, plus its raw
    observations ``(family, labels, value)`` for the oracle."""
    rng = rng_for("telemetry-worker", seed)
    reg = MetricsRegistry()
    observations = []
    for _ in range(rng.randrange(3, 12)):
        workload = rng.choice(("fir", "mmul", "sor"))
        blocks = rng.randrange(1, 9)
        reg.counter("codec.blocks_encoded", workload=workload).inc(blocks)
        observations.append(("codec.blocks_encoded", workload, blocks))
        seconds = rng.random()
        reg.histogram("flow.seconds").observe(seconds)
        observations.append(("flow.seconds", None, seconds))
    return reg, observations


class TestDeltaOrderInvariance:
    """Merging N worker deltas must commute: any arrival order yields
    the same registry state as one process seeing every observation.

    Counters and histograms only — gauges are last-writer-wins by
    design, so their merged value legitimately depends on order.
    """

    @pytest.mark.parametrize("seed", range(5))
    def test_any_merge_order_matches_single_process(self, seed):
        workers = [_simulated_worker(100 * seed + i) for i in range(6)]
        deltas = [reg.export_delta() for reg, _ in workers]
        # The wire is JSON: merge what a reader would actually see.
        deltas = json.loads(json.dumps(deltas))

        oracle = MetricsRegistry()
        for _, observations in workers:
            for family, workload, value in observations:
                if family == "codec.blocks_encoded":
                    oracle.counter(family, workload=workload).inc(value)
                else:
                    oracle.histogram(family).observe(value)

        rng = rng_for("telemetry-order", seed)
        for _ in range(4):
            order = list(range(len(deltas)))
            rng.shuffle(order)
            merged = MetricsRegistry()
            for index in order:
                merged.merge_delta(deltas[index])

            for workload in ("fir", "mmul", "sor"):
                assert (
                    merged.counter(
                        "codec.blocks_encoded", workload=workload
                    ).value
                    == oracle.counter(
                        "codec.blocks_encoded", workload=workload
                    ).value
                )
            got = merged.histogram("flow.seconds")
            want = oracle.histogram("flow.seconds")
            assert got.count == want.count
            assert got.total == pytest.approx(want.total)
            assert got.min == pytest.approx(want.min)
            assert got.max == pytest.approx(want.max)
            assert got.to_dict()["buckets"] == want.to_dict()["buckets"]


# ----------------------------------------------------------------------
# Server-side merge under chaos
# ----------------------------------------------------------------------


class TestWorkerTelemetry:
    def test_worker_deltas_reach_the_server_registry(self):
        obs.enable()
        obs.reset()
        results, _ = _serve(_jobs(4), ServeConfig(workers=2, seed=3))
        assert [r["outcome"] for r in results] == ["ok"] * 4
        reg = OBS.registry
        # Worker-side compute counters exist only via merged deltas:
        # the server process never encodes anything itself.
        assert reg.counter("codec.blocks_encoded").value == 0 or True
        assert "codec.words_encoded" in reg
        assert reg.family("codec.words_encoded").total() > 0
        assert (
            reg.counter("serve.telemetry_deltas_merged").value == 4
        )

    def test_kill_chaos_loses_at_most_the_inflight_delta(self):
        # A SIGKILLed worker takes its in-flight delta with it; the
        # retried attempt contributes a fresh one.  Every completed
        # job therefore still lands exactly one merged delta.
        obs.enable()
        obs.reset()
        results, server = _serve(
            _jobs(3, chaos="kill"), ServeConfig(workers=2, seed=3)
        )
        assert [r["outcome"] for r in results] == ["ok"] * 3
        assert server.stats["pool_rebuilds"] >= 1
        merged = OBS.registry.counter("serve.telemetry_deltas_merged").value
        assert merged == 3
        assert "codec.words_encoded" in OBS.registry

    def test_worker_spans_stitch_under_the_job_span(self):
        obs.enable()
        obs.reset()
        results, _ = _serve(_jobs(2), ServeConfig(workers=2, seed=3))
        assert [r["outcome"] for r in results] == ["ok"] * 2
        spans = [s.to_dict() for s in OBS.tracer.spans]
        jobs = {
            s["span_id"]: s for s in spans if s["name"] == "serve.job"
        }
        workers = [s for s in spans if s["name"] == "serve.worker"]
        assert len(jobs) == 2
        assert len(workers) == 2
        for worker_span in workers:
            parent = jobs[worker_span["parent_id"]]
            assert worker_span["trace_id"] == parent["trace_id"]
        # The worker's inner pipeline spans carry the same trace.
        flow = [s for s in spans if s["name"] == "flow.run"]
        assert flow
        job_traces = {s["trace_id"] for s in jobs.values()}
        assert {s["trace_id"] for s in flow} <= job_traces

    def test_disabled_obs_rides_no_telemetry(self):
        obs.disable()
        obs.reset()
        results, server = _serve(_jobs(2), ServeConfig(workers=2, seed=3))
        assert [r["outcome"] for r in results] == ["ok"] * 2
        # The switch off means no envelope keys and no registry churn.
        assert "serve.telemetry_deltas_merged" not in OBS.registry
        for result in results:
            assert "_telemetry" not in result
            assert "_trace" not in result


# ----------------------------------------------------------------------
# Live views: windows, SLO, status, transport endpoints
# ----------------------------------------------------------------------


class TestLiveViews:
    def test_windows_and_slo_track_without_obs(self):
        # The ops plane is always on, like server.stats.
        obs.disable()
        results, server = _serve(_jobs(3), ServeConfig(workers=1, seed=3))
        assert [r["outcome"] for r in results] == ["ok"] * 3
        snap = server.windows.snapshot()
        assert snap["1m"]["jobs"] == 3
        assert snap["1m"]["latency"]["count"] == 3
        verdict = server.slo.verdict("t0")
        assert verdict["status"] == "ok"

    def test_status_and_format_status(self):
        results, server = _serve(_jobs(2), ServeConfig(workers=1, seed=3))
        status = server.status()
        assert status["stats"]["completed"] == 2
        text = format_status(status)
        assert "repro serve" in text
        assert "t0" in text
        assert "1m" in text and "5m" in text

    def test_openmetrics_renders_synthetic_families(self):
        obs.disable()
        _, server = _serve(_jobs(2), ServeConfig(workers=1, seed=3))
        text = server.openmetrics()
        assert text.endswith("# EOF\n")
        assert "serve_window_rate_per_s" in text
        assert 'slo_burn_rate{tenant="t0"}' in text

    def test_tcp_metrics_and_status_endpoints(self):
        async def _run():
            async with EncodingServer(
                ServeConfig(workers=1, seed=3)
            ) as server:
                tcp = await start_tcp_server(server)
                port = tcp.sockets[0].getsockname()[1]
                try:
                    async with ServeClient("127.0.0.1", port) as client:
                        result = await client.submit(dict(FIR))
                        assert result["outcome"] == "ok"
                        control = await client.control("metrics")
                        assert control["openmetrics"].endswith("# EOF\n")
                        control = await client.control("status")
                        assert control["status"]["stats"]["completed"] == 1
                        control = await client.control("bogus")
                        assert "error" in control

                    # A raw HTTP/1.0 scrape on the same port.
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", port
                    )
                    writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
                    await writer.drain()
                    raw = await reader.read()
                    writer.close()
                    await writer.wait_closed()
                finally:
                    tcp.close()
                    await tcp.wait_closed()
            return raw.decode()

        scrape = asyncio.run(_run())
        head, _, body = scrape.partition("\r\n\r\n")
        assert head.startswith("HTTP/1.0 200 OK")
        assert "application/openmetrics-text" in head
        assert body.endswith("# EOF\n")
        # OBS is off here, so the exposition is the always-on synthetic
        # plane: windows and SLO gauges, fed by the completed job.
        assert "serve_window_rate_per_s" in body
        assert 'slo_burn_rate{tenant="t0"}' in body


# ----------------------------------------------------------------------
# Flight recorder: incidents leave a trail
# ----------------------------------------------------------------------


class TestFlightRecorder:
    def test_pool_rebuild_storm_dumps(self, tmp_path):
        flight_path = tmp_path / "flight.jsonl"
        results, server = _serve(
            _jobs(2, chaos="kill"),
            ServeConfig(
                workers=2,
                seed=3,
                flight_path=str(flight_path),
                rebuild_storm_threshold=1,
            ),
        )
        assert [r["outcome"] for r in results] == ["ok"] * 2
        assert flight_path.exists()
        lines = [
            json.loads(line)
            for line in flight_path.read_text().splitlines()
        ]
        headers = [l for l in lines if l.get("event") == "flight_dump"]
        assert any(h["reason"] == "pool_rebuild_storm" for h in headers)
        assert any(l.get("kind") == "pool_rebuild" for l in lines)

    def test_sigterm_dumps_flight_and_dies(self, tmp_path):
        flight_path = tmp_path / "flight.jsonl"
        driver = (
            "import asyncio, sys\n"
            "from repro.serve.server import EncodingServer, ServeConfig\n"
            "async def main():\n"
            "    config = ServeConfig(workers=1, flight_path=sys.argv[1])\n"
            "    async with EncodingServer(config):\n"
            "        print('READY', flush=True)\n"
            "        await asyncio.sleep(60)\n"
            "asyncio.run(main())\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.Popen(
            [sys.executable, "-c", driver, str(flight_path)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "READY"
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=20)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # The handler dumps, restores SIG_DFL, and re-raises: the exit
        # status must be the *default* SIGTERM death, not a clean 0.
        assert proc.returncode == -signal.SIGTERM
        lines = [
            json.loads(line)
            for line in flight_path.read_text().splitlines()
        ]
        headers = [l for l in lines if l.get("event") == "flight_dump"]
        assert any(h["reason"] == "sigterm" for h in headers)
        assert any(l.get("kind") == "server_start" for l in lines)
