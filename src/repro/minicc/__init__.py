"""minicc — a small C-like kernel compiler targeting the repro ISA.

The paper evaluated *compiled* C benchmarks (SimpleScalar's gcc); our
Figure-6 workloads are hand-written assembly, which is more regular
vertically and therefore encodes a little better.  minicc closes that
methodological gap: the same kernels can be compiled by a deliberately
naive compiler (global variables, load/store per access, stack-style
expression evaluation, no register allocation across statements) and
pushed through the identical encoding flow, quantifying how much of
the reduction depends on code-generation style.

Language (see ``docs/minicc.md``):

* declarations: ``int x;  double y;  double A[64];  double M[8][8];``
* statements: assignment, ``for (init; cond; step)``, ``while``,
  ``if``/``else``, blocks;
* expressions: ``+ - * / %``, comparisons, ``&& || !``, unary minus,
  array indexing, int literals, float literals; ints promote to
  double in mixed arithmetic;
* no functions, no pointers, no I/O — kernels communicate through
  their global arrays, which the host reads back from simulated
  memory (and may pre-initialise).

Entry point: :func:`compile_kernel`.
"""

from repro.minicc.compiler import CompiledKernel, CompileError, compile_kernel

__all__ = ["CompiledKernel", "CompileError", "compile_kernel"]
