"""Throughput acceptance harness for the compiled codebook fast path.

Runs :func:`repro.pipeline.benchmark.run_codec_benchmarks` on the same
workloads as ``test_perf_components.py`` (5000-bit stream, 64-word
block, seed 1234), writes ``BENCH_codec.json`` at the repo root, and
asserts the headline speedups.  The harness itself cross-checks fast
and reference outputs for bit-identity before timing, so a passing run
certifies both correctness and throughput.

The acceptance floor is 5x on both the encode and the decode paths;
measured speedups on the development machine are 20-50x encode and
11-36x decode (bitplane scan), so the margin absorbs noisy CI runners.
"""

from pathlib import Path

from repro.pipeline.benchmark import run_codec_benchmarks

REPO_ROOT = Path(__file__).resolve().parent.parent
SPEEDUP_FLOOR = 5.0

#: Every decode row must clear the same committed floor as encode —
#: the CI decode smoke (`repro bench --decode-floor`) enforces it too.
DECODE_CASES = (
    "stream_decode_plan",
    "block_decode",
    "stream_decode_table",
    "stream_decode_serial",
    "trace_decode",
)


def test_codec_throughput_report():
    report = run_codec_benchmarks(repeats=3)
    print()
    print(report.format_table())

    path = report.write(REPO_ROOT / "BENCH_codec.json")
    assert path.exists()

    expected = {
        "stream_encode_greedy",
        "stream_encode_optimal",
        "stream_encode_disjoint",
        "block_encode_greedy",
        *DECODE_CASES,
    }
    assert {case.name for case in report.cases} == expected

    for name in (
        "stream_encode_greedy",
        "stream_encode_optimal",
        "block_encode_greedy",
        *DECODE_CASES,
    ):
        case = report.case(name)
        assert case.speedup >= SPEEDUP_FLOOR, (
            f"{name}: {case.speedup:.1f}x < required {SPEEDUP_FLOOR}x"
        )
    assert report.geomean_speedup >= SPEEDUP_FLOOR
