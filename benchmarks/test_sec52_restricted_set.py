"""Section 5.2 claim: a fixed small transformation set achieves the
unrestricted optimum for every block size up to seven.

The paper states the subset has exactly eight members and is unique.
Our search confirms the operative claim (the 8-set loses nothing) and
sharpens it: only 7 functions are ever chosen, and the unique minimal
hitting set has 6 ({x, ~x, xor, xnor, nor, nand}).
"""

import itertools

from repro.core.block_solver import BlockSolver
from repro.core.codebook import build_codebook
from repro.core.transformations import (
    ALL_TRANSFORMATIONS,
    OPTIMAL_SET,
    find_minimal_optimal_sets,
    is_closed_under_duality,
)


def _verify_equivalence(max_size: int) -> int:
    """Count words where the 8-set matches the full-16 optimum
    (must be all of them)."""
    full = BlockSolver(ALL_TRANSFORMATIONS)
    restricted = BlockSolver(OPTIMAL_SET)
    matches = 0
    for size in range(2, max_size + 1):
        for word in itertools.product((0, 1), repeat=size):
            a = full.solve_anchored(list(word))
            b = restricted.solve_anchored(list(word))
            assert a.encoded_transitions == b.encoded_transitions, word
            matches += 1
    return matches


def test_sec52_restricted_set(benchmark, record_result):
    matches = benchmark(_verify_equivalence, 7)
    assert matches == sum(1 << size for size in range(2, 8))  # 252 words

    # The paper's set is closed under the global-inversion duality.
    assert is_closed_under_duality(OPTIMAL_SET)

    # Which functions do the optimal codebooks actually use?
    used = set()
    for size in range(2, 8):
        for solution in build_codebook(size, ALL_TRANSFORMATIONS).solutions:
            used.add(solution.transformation.name)
    assert used <= {t.name for t in OPTIMAL_SET}

    # Minimal hitting set: 6 functions, unique, inside the 8-set.
    minimal_sets = find_minimal_optimal_sets(7)
    assert len(minimal_sets) == 1
    minimal_names = {t.name for t in minimal_sets[0]}
    assert minimal_names == {"x", "~x", "xor", "xnor", "nor", "nand"}

    lines = [
        "Section 5.2 — restricted transformation sets (block sizes 2..7)",
        f"words checked, 8-set == full-16 optimum everywhere: {matches}",
        f"functions used by optimal codebooks ({len(used)}): {sorted(used)}",
        f"unique minimal sufficient set ({len(minimal_names)}): "
        f"{sorted(minimal_names)}",
        "paper's 8-set (3-bit selector space, duality-closed): "
        f"{sorted(t.name for t in OPTIMAL_SET)}",
    ]
    record_result("sec52_restricted_set", "\n".join(lines))
