"""EncodingServer behaviour: admission, degradation, WAL replay.

Everything here runs real (tiny) encode jobs — the service's promise
is about *results*, so the tests check results, not mocks.
"""

import asyncio

import pytest

from repro.pipeline.cache import BundleCache
from repro.serve.jobs import deterministic_result, parse_request
from repro.serve.server import EncodingServer, ServeConfig
from repro.serve.worker import _compute

#: One fast job template (tens of milliseconds end to end).
FIR = {
    "tenant": "t0",
    "job_id": "j0",
    "kind": "encode",
    "workload": "fir",
    "block_size": 5,
    "workload_params": {"taps": 8, "samples": 48},
}


def _jobs(n: int, **overrides) -> list[dict]:
    jobs = []
    for i in range(n):
        raw = dict(FIR)
        raw["job_id"] = f"j{i:03d}"
        raw.update(overrides)
        jobs.append(raw)
    return jobs


def _serve(requests: list[dict], config: ServeConfig):
    async def _run():
        async with EncodingServer(config) as server:
            results = await server.run_batch(requests)
        return results, server

    return asyncio.run(_run())


class TestBatchResults:
    def test_results_match_serial_recompute(self):
        requests = _jobs(4) + [
            {**FIR, "job_id": "d0", "kind": "deploy"},
            {**FIR, "job_id": "v0", "kind": "decode_verify"},
        ]
        results, server = _serve(requests, ServeConfig(workers=2))
        assert [r["outcome"] for r in results] == ["ok"] * len(requests)
        assert server.stats["accepted"] == len(requests)
        oracle_cache = BundleCache(capacity=8, cache_dir=None)
        for raw, result in zip(requests, results):
            want = _compute(parse_request(raw), oracle_cache)
            assert result["payload"] == want
        verified = results[-1]["payload"]
        assert verified["verified"] is True

    def test_results_come_back_in_input_order(self):
        requests = _jobs(6)
        results, _ = _serve(requests, ServeConfig(workers=2))
        assert [r["job_id"] for r in results] == [
            r["job_id"] for r in requests
        ]

    def test_malformed_is_an_answer_not_an_exception(self):
        requests = [dict(FIR), {**FIR, "job_id": "bad", "kind": "transcode"}]
        results, server = _serve(requests, ServeConfig(workers=1))
        assert results[0]["outcome"] == "ok"
        assert results[1]["outcome"] == "malformed"
        assert "kind" in results[1]["error"]
        assert server.stats["malformed"] == 1


class TestAdmissionControl:
    def test_full_queue_sheds_with_retry_after(self):
        async def _run():
            config = ServeConfig(workers=1, queue_depth=1)
            async with EncodingServer(config) as server:
                # Stall the only dispatcher with a slow-chaos job, fill
                # the depth-1 queue behind it, then watch the next
                # submission bounce.
                stall = {
                    **FIR,
                    "job_id": "stall",
                    "chaos": "slow",
                    "deadline_s": 0.4,
                }
                first = asyncio.ensure_future(server.submit(stall))
                await asyncio.sleep(0.3)  # dispatcher now inside the stall
                second = asyncio.ensure_future(
                    server.submit({**FIR, "job_id": "queued"})
                )
                await asyncio.sleep(0.05)
                shed = await server.submit({**FIR, "job_id": "bounced"})
                assert shed["outcome"] == "shed"
                assert shed["retry_after_s"] > 0
                assert server.stats["shed"] == 1
                results = await asyncio.gather(first, second)
            return results, server

        results, server = asyncio.run(_run())
        # The shed was a response, not a result: the admitted jobs
        # still completed normally.
        assert results[0]["outcome"] == "deadline_exceeded"
        assert results[1]["outcome"] == "ok"

    def test_shed_never_enters_the_wal(self, tmp_path):
        async def _run():
            wal = tmp_path / "serve.wal"
            config = ServeConfig(
                workers=1, queue_depth=1, wal_path=str(wal), batch_key="shed"
            )
            async with EncodingServer(config) as server:
                stall = {
                    **FIR,
                    "job_id": "stall",
                    "chaos": "slow",
                    "deadline_s": 0.4,
                }
                first = asyncio.ensure_future(server.submit(stall))
                await asyncio.sleep(0.3)
                second = asyncio.ensure_future(
                    server.submit({**FIR, "job_id": "queued"})
                )
                await asyncio.sleep(0.05)
                shed = await server.submit({**FIR, "job_id": "bounced"})
                assert shed["outcome"] == "shed"
                await asyncio.gather(first, second)
            return wal

        wal = asyncio.run(_run())
        assert "bounced" not in wal.read_text()


class TestChaosPaths:
    def test_killed_worker_job_retries_to_ok(self):
        requests = _jobs(2, chaos="kill")
        results, server = _serve(
            requests, ServeConfig(workers=2, seed=3)
        )
        assert [r["outcome"] for r in results] == ["ok", "ok"]
        # The first attempt died with the worker; the result took >1.
        assert all(r["attempts"] >= 2 for r in results)
        assert server.stats["pool_rebuilds"] >= 1
        assert server.stats["retried"] >= 1

    def test_slow_job_exceeds_its_deadline_cleanly(self):
        requests = _jobs(1, chaos="slow", deadline_s=0.4)
        results, server = _serve(requests, ServeConfig(workers=1))
        (result,) = results
        assert result["outcome"] == "deadline_exceeded"
        assert "exceeded its 0.4s deadline" in result["error"]
        assert server.stats["deadline_exceeded"] == 1

    def test_serial_fallback_still_produces_correct_results(self):
        # pool_break_retries=0 forces every job onto the degraded
        # serial path from the first attempt.
        requests = _jobs(2)
        results, server = _serve(
            requests, ServeConfig(workers=1, pool_break_retries=0)
        )
        assert [r["outcome"] for r in results] == ["ok", "ok"]
        assert server.stats["serial_fallbacks"] >= 2
        oracle = _compute(
            parse_request(requests[0]), BundleCache(capacity=2)
        )
        assert results[0]["payload"] == oracle

    def test_kill_chaos_is_disarmed_on_the_serial_path(self):
        # A kill-chaos job on the in-process path must not kill the
        # server: chaos only fires inside pool workers.
        requests = _jobs(1, chaos="kill")
        results, server = _serve(
            requests, ServeConfig(workers=1, pool_break_retries=0)
        )
        assert results[0]["outcome"] == "ok"
        assert server.stats["pool_rebuilds"] == 0


class TestWalReplay:
    def test_resume_answers_from_the_wal_without_recompute(self, tmp_path):
        wal = tmp_path / "serve.wal"
        requests = _jobs(3) + [
            {**FIR, "job_id": "bad", "kind": "transcode"}
        ]
        config = ServeConfig(
            workers=2, wal_path=str(wal), batch_key="batch-a"
        )
        first, _ = _serve(requests, config)

        # Resume with a broken worker budget: any recompute would be
        # visible as a serial fallback, so zero fallbacks proves every
        # answer came from the journal.
        resumed_config = ServeConfig(
            workers=1,
            pool_break_retries=0,
            wal_path=str(wal),
            resume=True,
            batch_key="batch-a",
        )
        second, server = _serve(requests, resumed_config)
        assert server.stats["replayed"] == len(requests)
        assert server.stats["serial_fallbacks"] == 0
        assert second == [deterministic_result(r) for r in first]

    def test_resume_recomputes_changed_parameters(self, tmp_path):
        wal = tmp_path / "serve.wal"
        config = ServeConfig(workers=1, wal_path=str(wal), batch_key="b")
        _serve(_jobs(1), config)
        changed = _jobs(1, block_size=4)
        resumed, server = _serve(
            changed,
            ServeConfig(
                workers=1, wal_path=str(wal), resume=True, batch_key="b"
            ),
        )
        # Same tenant/job_id, different semantics: the key differs,
        # so the WAL must not vouch for it.
        assert server.stats["replayed"] == 0
        assert resumed[0]["outcome"] == "ok"
        assert resumed[0]["payload"]["block_size"] == 4


class TestRunKey:
    def test_execution_knobs_stay_out_of_the_run_key(self):
        a = ServeConfig(seed=1, batch_key="x", workers=2, queue_depth=32)
        b = ServeConfig(
            seed=1,
            batch_key="x",
            workers=8,
            queue_depth=4,
            retry_attempts=1,
            breaker_threshold=2,
        )
        assert a.run_key() == b.run_key()

    def test_seed_and_batch_enter_the_run_key(self):
        base = ServeConfig(seed=1, batch_key="x")
        assert base.run_key() != ServeConfig(seed=2, batch_key="x").run_key()
        assert base.run_key() != ServeConfig(seed=1, batch_key="y").run_key()

    @pytest.mark.parametrize("workers,queue_depth", [(0, 8), (2, 0)])
    def test_nonsense_sizing_is_rejected(self, workers, queue_depth):
        with pytest.raises(ValueError):
            EncodingServer(
                ServeConfig(workers=workers, queue_depth=queue_depth)
            )
