"""Firmware bundles: the deployable artefact of the flow.

The paper's deployment story (Section 7.1): the *encoded* program
image goes to the instruction memory, and the transformation
information goes to the processor "either when loading the program or
by software prior to entering the application hot spot".  A
:class:`EncodingBundle` captures exactly that shippable pair —
encoded words plus TT/BBIT programming — as JSON, with integrity
checksums, so a build machine can encode once and a loader (or the
generated software-reload prologue) can apply it later.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import BundleFormatError
from repro.hw.bbit import BasicBlockIdentificationTable, BBITEntry
from repro.hw.tt import TransformationTable, TTEntry
from repro.obs import OBS

FORMAT_VERSION = 1

_NUM_SELECTORS = 8  # 3-bit selector space, fixed by OPTIMAL_SET


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BundleFormatError(message)


def _int_field(mapping: dict, key: str, where: str) -> int:
    try:
        value = mapping[key]
    except (KeyError, TypeError):
        raise BundleFormatError(f"{where}: missing field {key!r}") from None
    if isinstance(value, bool) or not isinstance(value, int):
        raise BundleFormatError(
            f"{where}: field {key!r} must be an integer, got "
            f"{type(value).__name__}"
        )
    return value


def _digest(words: Sequence[int]) -> str:
    payload = b"".join(w.to_bytes(4, "little") for w in words)
    return hashlib.sha256(payload).hexdigest()


@dataclass
class EncodingBundle:
    """Everything a loader needs to deploy one encoded program."""

    name: str
    block_size: int
    text_base: int
    encoded_words: list[int]
    original_digest: str  # sha256 of the pre-encoding image
    tt_entries: list[dict] = field(default_factory=list)
    bbit_entries: list[dict] = field(default_factory=list)
    #: Mixed-scheme metadata from the per-region selector (optional —
    #: absent/empty for classic single-scheme bundles, keeping the
    #: format backward compatible).  One entry per hot region:
    #: ``{"header": pc, "scheme": tag, "config": {...},
    #: "config_digest": sha256, "blocks": [{"pc", "num_instructions"}]}``.
    #: ``scheme`` is ``"ttbbit"`` (table path), ``"raw"`` (left
    #: unencoded), or a registered encoder-zoo scheme whose ``config``
    #: rebuilds the fitted encoder.
    regions: list[dict] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_flow_result(cls, program, result) -> "EncodingBundle":
        """Build a bundle from a :class:`~repro.pipeline.flow.FlowResult`.

        Re-derives the table programming from the result's selected
        blocks (the flow's own TT/BBIT are transient).
        """
        from repro.cfg.graph import ControlFlowGraph
        from repro.core.program_codec import encode_basic_block

        with OBS.tracer.span(
            "bundle.build",
            workload=result.name,
            blocks=len(result.selected_blocks),
        ):
            cfg = ControlFlowGraph.build(program)
            bundle = cls(
                name=result.name,
                block_size=result.block_size,
                text_base=program.text_base,
                encoded_words=list(result.encoded_image),
                original_digest=_digest(program.words),
            )
            tt_index = 0
            for start in result.selected_blocks:
                block = cfg.blocks[start]
                length = (
                    result.plan.encoded_length(start, len(block))
                    if result.plan is not None
                    else len(block)
                )
                encoding = encode_basic_block(
                    block.words[:length], result.block_size
                )
                bounds = encoding.bounds
                base_index = tt_index
                for row, (seg_start, seg_len) in zip(
                    encoding.selectors(), bounds
                ):
                    is_tail = seg_start + seg_len >= length
                    bundle.tt_entries.append(
                        {
                            "selectors": list(row),
                            "end": is_tail,
                            "count": (
                                (seg_len if seg_start == 0 else seg_len - 1)
                                if is_tail
                                else 0
                            ),
                        }
                    )
                    tt_index += 1
                bundle.bbit_entries.append(
                    {
                        "pc": start,
                        "tt_index": base_index,
                        "num_instructions": length,
                    }
                )
        if OBS.enabled:
            OBS.registry.counter(
                "bundle.builds", "firmware bundles materialised", workload=result.name
            ).inc()
        return bundle

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "format_version": FORMAT_VERSION,
            "name": self.name,
            "block_size": self.block_size,
            "text_base": self.text_base,
            "original_digest": self.original_digest,
            "encoded_digest": _digest(self.encoded_words),
            "encoded_words": [f"{w:08x}" for w in self.encoded_words],
            "tt": self.tt_entries,
            "bbit": self.bbit_entries,
        }
        if self.regions:
            payload["regions"] = self.regions
        return json.dumps(payload, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "EncodingBundle":
        """Parse and fully validate a serialised bundle.

        Every failure — truncated or garbled JSON, a wrong field type,
        a digest mismatch, a dangling BBIT->TT reference — raises
        :class:`~repro.errors.BundleFormatError` naming the offending
        field, *before* anything could be installed into hardware
        tables."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise BundleFormatError(
                f"bundle is not valid JSON: {err}"
            ) from err
        _require(isinstance(data, dict), "bundle JSON root must be an object")
        if data.get("format_version") != FORMAT_VERSION:
            raise BundleFormatError(
                f"unsupported bundle format {data.get('format_version')!r}"
            )
        for key in (
            "name",
            "block_size",
            "text_base",
            "original_digest",
            "encoded_digest",
            "encoded_words",
            "tt",
            "bbit",
        ):
            _require(key in data, f"bundle missing required field {key!r}")
        raw_words = data["encoded_words"]
        _require(
            isinstance(raw_words, list),
            "field 'encoded_words' must be a list of 8-digit hex strings",
        )
        words = []
        for i, raw in enumerate(raw_words):
            try:
                word = int(raw, 16)
            except (TypeError, ValueError):
                raise BundleFormatError(
                    f"encoded_words[{i}]: {raw!r} is not a hex word"
                ) from None
            _require(
                0 <= word < 1 << 32,
                f"encoded_words[{i}]: {raw!r} does not fit in 32 bits",
            )
            words.append(word)
        _require(
            isinstance(data["encoded_digest"], str),
            "field 'encoded_digest' must be a hex string",
        )
        if _digest(words) != data["encoded_digest"]:
            raise BundleFormatError(
                "bundle corrupt: encoded image digest mismatch"
            )
        _require(
            isinstance(data["original_digest"], str)
            and len(data["original_digest"]) == 64,
            "field 'original_digest' must be a sha256 hex string",
        )
        _require(isinstance(data["name"], str), "field 'name' must be a string")
        _require(
            isinstance(data["tt"], list), "field 'tt' must be a list of entries"
        )
        _require(
            isinstance(data["bbit"], list),
            "field 'bbit' must be a list of entries",
        )
        regions = data.get("regions", [])
        _require(
            isinstance(regions, list),
            "field 'regions' must be a list of region entries",
        )
        bundle = cls(
            name=data["name"],
            block_size=data["block_size"],
            text_base=data["text_base"],
            encoded_words=words,
            original_digest=data["original_digest"],
            tt_entries=data["tt"],
            bbit_entries=data["bbit"],
            regions=regions,
        )
        bundle.validate()
        return bundle

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def segments_for(self, num_instructions: int) -> int:
        """TT entries one basic block of that length walks through
        (position ``i >= 1`` reads segment ``(i - 1) // (k - 1)``)."""
        if num_instructions <= 1:
            return 1
        return (num_instructions - 2) // (self.block_size - 1) + 1

    def validate(self) -> None:
        """Structural validation of the deployable pair: field types
        and ranges, TT selector ranges, BBIT word ranges against the
        image, and every BBIT->TT cross-reference (no dangling base
        index, the walk must terminate on an E-bit entry)."""
        with OBS.tracer.span("bundle.validate", workload=self.name):
            self._validate()
        if OBS.enabled:
            OBS.registry.counter(
                "bundle.validations", "bundle structural validations passed"
            ).inc()

    def _validate(self) -> None:
        _require(
            isinstance(self.block_size, int)
            and not isinstance(self.block_size, bool)
            and self.block_size >= 2,
            f"block_size must be an integer >= 2, got {self.block_size!r}",
        )
        _require(
            isinstance(self.text_base, int)
            and not isinstance(self.text_base, bool)
            and self.text_base >= 0
            and self.text_base % 4 == 0,
            f"text_base must be a non-negative word-aligned address, "
            f"got {self.text_base!r}",
        )
        width = None
        for i, entry in enumerate(self.tt_entries):
            where = f"tt[{i}]"
            _require(
                isinstance(entry, dict), f"{where}: entry must be an object"
            )
            selectors = entry.get("selectors")
            _require(
                isinstance(selectors, list) and selectors,
                f"{where}: 'selectors' must be a non-empty list",
            )
            for line, selector in enumerate(selectors):
                _require(
                    isinstance(selector, int)
                    and not isinstance(selector, bool)
                    and 0 <= selector < _NUM_SELECTORS,
                    f"{where}: selector for line {line} out of range "
                    f"0..{_NUM_SELECTORS - 1}: {selector!r}",
                )
            if width is None:
                width = len(selectors)
            else:
                _require(
                    len(selectors) == width,
                    f"{where}: width {len(selectors)} != first entry's {width}",
                )
            _require(
                isinstance(entry.get("end"), bool),
                f"{where}: 'end' must be a boolean",
            )
            count = _int_field(entry, "count", where)
            _require(count >= 0, f"{where}: 'count' must be >= 0, got {count}")
        image_end = self.text_base + 4 * len(self.encoded_words)
        seen_pcs: set[int] = set()
        for i, entry in enumerate(self.bbit_entries):
            where = f"bbit[{i}]"
            _require(
                isinstance(entry, dict), f"{where}: entry must be an object"
            )
            pc = _int_field(entry, "pc", where)
            tt_index = _int_field(entry, "tt_index", where)
            num_instructions = _int_field(entry, "num_instructions", where)
            _require(
                pc % 4 == 0, f"{where}: pc {pc:#x} is not word-aligned"
            )
            _require(
                pc not in seen_pcs, f"{where}: duplicate entry for pc {pc:#x}"
            )
            seen_pcs.add(pc)
            _require(
                num_instructions >= 1,
                f"{where}: num_instructions must be >= 1, "
                f"got {num_instructions}",
            )
            _require(
                self.text_base <= pc
                and pc + 4 * num_instructions <= image_end,
                f"{where}: block [{pc:#x}, {pc + 4 * num_instructions:#x}) "
                f"falls outside the image "
                f"[{self.text_base:#x}, {image_end:#x})",
            )
            segments = self.segments_for(num_instructions)
            _require(
                0 <= tt_index
                and tt_index + segments <= len(self.tt_entries),
                f"{where}: dangling BBIT->TT reference: needs TT entries "
                f"[{tt_index}, {tt_index + segments}) but the bundle has "
                f"{len(self.tt_entries)}",
            )
            tail = self.tt_entries[tt_index + segments - 1]
            _require(
                bool(tail.get("end")),
                f"{where}: TT walk from {tt_index} over {segments} "
                "segment(s) does not terminate on an E-bit entry",
            )
        self._validate_regions(image_end)

    def _validate_regions(self, image_end: int) -> None:
        """Validate the optional mixed-scheme region metadata: every
        tag must name the table path, ``raw``, or a registered encoder
        backend whose declared ``config_digest`` matches the digest
        recomputed from the shipped config (so a tampered codebook is
        caught at load time, before the decoder trusts it)."""
        if not self.regions:
            return
        from repro.baselines.protocol import ENCODER_REGISTRY, encoder_from_config

        seen_pcs: set[int] = set()
        for i, region in enumerate(self.regions):
            where = f"regions[{i}]"
            _require(
                isinstance(region, dict), f"{where}: entry must be an object"
            )
            header = _int_field(region, "header", where)
            _require(
                header % 4 == 0,
                f"{where}: header {header:#x} is not word-aligned",
            )
            scheme = region.get("scheme")
            _require(
                isinstance(scheme, str) and bool(scheme),
                f"{where}: 'scheme' must be a non-empty string",
            )
            blocks = region.get("blocks")
            _require(
                isinstance(blocks, list) and blocks,
                f"{where}: 'blocks' must be a non-empty list",
            )
            for j, block in enumerate(blocks):
                bwhere = f"{where}.blocks[{j}]"
                _require(
                    isinstance(block, dict),
                    f"{bwhere}: entry must be an object",
                )
                pc = _int_field(block, "pc", bwhere)
                count = _int_field(block, "num_instructions", bwhere)
                _require(
                    pc % 4 == 0, f"{bwhere}: pc {pc:#x} is not word-aligned"
                )
                _require(
                    count >= 1,
                    f"{bwhere}: num_instructions must be >= 1, got {count}",
                )
                _require(
                    self.text_base <= pc and pc + 4 * count <= image_end,
                    f"{bwhere}: block [{pc:#x}, {pc + 4 * count:#x}) falls "
                    f"outside the image [{self.text_base:#x}, {image_end:#x})",
                )
                for addr in range(pc, pc + 4 * count, 4):
                    _require(
                        addr not in seen_pcs,
                        f"{bwhere}: address {addr:#x} tagged by two regions",
                    )
                    seen_pcs.add(addr)
            if scheme in ("ttbbit", "raw"):
                continue
            _require(
                scheme in ENCODER_REGISTRY,
                f"{where}: unknown scheme tag {scheme!r}",
            )
            config = region.get("config")
            _require(
                isinstance(config, dict),
                f"{where}: scheme {scheme!r} needs a 'config' object",
            )
            declared = region.get("config_digest")
            _require(
                isinstance(declared, str) and len(declared) == 64,
                f"{where}: 'config_digest' must be a sha256 hex string",
            )
            try:
                encoder = encoder_from_config(scheme, config)
            except Exception as err:
                raise BundleFormatError(
                    f"{where}: config for scheme {scheme!r} does not "
                    f"rebuild: {err}"
                ) from err
            _require(
                encoder.config_digest() == declared,
                f"{where}: config digest mismatch for scheme {scheme!r}",
            )

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def build_tables(
        self,
        tt_capacity: int = 16,
        bbit_capacity: int = 16,
        parity: bool = False,
    ) -> tuple[TransformationTable, BasicBlockIdentificationTable]:
        """Materialise hardware tables from the bundle (the "load with
        the program" alternative of Section 7.1).  The bundle is fully
        re-validated first, so nothing is installed from a malformed
        bundle; ``parity=True`` arms the tables' per-row parity words."""
        self.validate()
        tt = TransformationTable(
            max(tt_capacity, len(self.tt_entries)), parity=parity
        )
        for entry in self.tt_entries:
            tt.install(
                TTEntry(
                    selectors=tuple(entry["selectors"]),
                    end=bool(entry["end"]),
                    count=int(entry["count"]),
                )
            )
        bbit = BasicBlockIdentificationTable(
            max(bbit_capacity, len(self.bbit_entries) or 1), parity=parity
        )
        for entry in self.bbit_entries:
            bbit.install(
                BBITEntry(
                    pc=int(entry["pc"]),
                    tt_index=int(entry["tt_index"]),
                    num_instructions=int(entry["num_instructions"]),
                )
            )
        return tt, bbit

    def encoded_pc_region(self) -> set[int]:
        """Addresses covered by encoded basic blocks (for the
        decoder's mid-block-entry protocol check)."""
        region: set[int] = set()
        for entry in self.bbit_entries:
            pc = int(entry["pc"])
            region.update(
                range(pc, pc + 4 * int(entry["num_instructions"]), 4)
            )
        return region

    def region_scheme_map(self) -> dict[int, str]:
        """``pc -> scheme tag`` for every address inside a tagged
        region (empty for classic single-scheme bundles)."""
        schemes: dict[int, str] = {}
        for region in self.regions:
            tag = str(region["scheme"])
            for block in region["blocks"]:
                pc = int(block["pc"])
                count = int(block["num_instructions"])
                for addr in range(pc, pc + 4 * count, 4):
                    schemes[addr] = tag
        return schemes

    def scheme_word_decoders(self) -> dict[str, object]:
        """Per-word decode callables for the fetch path, rebuilt from
        each region's shipped encoder config.  Deployable recoders map
        to their ``decode_word``; bus codecs (and ``raw`` regions) map
        to ``None`` — their stored words pass through unchanged."""
        from repro.baselines.protocol import encoder_from_config

        decoders: dict[str, object] = {}
        for region in self.regions:
            tag = str(region["scheme"])
            if tag in decoders or tag == "ttbbit":
                continue
            if tag == "raw":
                decoders[tag] = None
                continue
            encoder = encoder_from_config(tag, region.get("config", {}))
            decoders[tag] = encoder.decode_word if encoder.deployable else None
        return decoders

    def verify_against(self, program) -> bool:
        """Check this bundle belongs to ``program`` (pre-encoding
        image digest match)."""
        return _digest(program.words) == self.original_digest

    def deploy_and_check(self, program, trace: Sequence[int]) -> bool:
        """Full loader path: validate, rebuild tables, decode the
        trace through the hardware model, compare with the original
        program.  Mixed-scheme bundles additionally arm the decoder
        with the per-region scheme tags and their word decoders."""
        from repro.hw.fetch_decoder import FetchDecoder

        if not self.verify_against(program):
            raise BundleFormatError(
                f"bundle {self.name!r} does not match this program image"
            )
        tt, bbit = self.build_tables()
        decoder = FetchDecoder(
            tt,
            bbit,
            self.block_size,
            encoded_region=self.encoded_pc_region(),
            region_schemes=self.region_scheme_map() or None,
            scheme_word_decoders=self.scheme_word_decoders() or None,
        )
        base = self.text_base
        decoded = decoder.decode_trace(
            list(trace), lambda pc: self.encoded_words[(pc - base) >> 2]
        )
        original = [program.words[(pc - base) >> 2] for pc in trace]
        return decoded == original
