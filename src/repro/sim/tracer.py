"""Fetch-trace capture and summarisation."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.isa.assembler import Program


@dataclass
class FetchTrace:
    """A recorded instruction fetch stream.

    Wraps the raw PC list with the bookkeeping the profiler and the
    bus model need: per-address fetch counts and adjacency pairs.
    """

    program: Program
    addresses: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.addresses)

    def fetch_counts(self) -> Counter:
        """Times each text address was fetched."""
        return Counter(self.addresses)

    def words(self) -> list[int]:
        """The instruction words as seen on the bus, in fetch order."""
        base = self.program.text_base
        words = self.program.words
        return [words[(a - base) >> 2] for a in self.addresses]

    def edge_counts(self) -> Counter:
        """Counts of consecutive (from, to) fetch address pairs."""
        pairs = zip(self.addresses, self.addresses[1:])
        return Counter(pairs)

    def coverage(self) -> float:
        """Fraction of static instructions fetched at least once."""
        if not self.program.words:
            return 0.0
        return len(set(self.addresses)) / len(self.program.words)

    @classmethod
    def record(cls, program: Program, max_steps: int = 100_000_000) -> "FetchTrace":
        """Run the program and capture its fetch trace."""
        from repro.sim.cpu import Cpu

        cpu = Cpu(program)
        addresses: list[int] = []
        cpu.run(max_steps=max_steps, trace=addresses)
        trace = cls(program=program, addresses=addresses)
        trace.cpu = cpu  # type: ignore[attr-defined] - handy for tests
        return trace


def window(addresses: Sequence[int], start: int, length: int) -> Iterable[int]:
    """A slice helper for inspecting trace regions in examples."""
    return addresses[start : start + length]
