"""Per-tenant SLO tracking: latency/error budgets and burn rates.

An SLO here is the operational contract the serve path offers each
tenant: *"at least ``latency_objective`` of your jobs finish under
``latency_target_s``, and at most ``error_budget`` of them fail"*.
The tracker grades recent traffic (the rolling windows from
:mod:`repro.obs.window`) against that contract and reports **burn
rate** — the classic SRE ratio of observed badness to budgeted
badness, where 1.0 means the budget is being consumed exactly as fast
as it accrues:

* ``error_burn  = error_rate / error_budget``
* ``latency_burn = slow_rate / (1 - latency_objective)``
* ``burn_rate   = max`` of the two, worst window wins.

Verdicts: ``idle`` (no traffic in any window), ``ok`` (burn below
``warn_burn``), ``warn``, and ``breach`` (burn at or above
``breach_burn``).  These surface in ``repro top``, the OpenMetrics
endpoint (``slo.burn_rate`` gauges), and ``BENCH_serve.json`` v2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.obs.window import WINDOW_SPECS, RollingCounter, RollingHistogram

__all__ = ["SLOPolicy", "SLOTracker"]

#: Tenant label applied to jobs that did not declare one.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class SLOPolicy:
    """The budgets one tenant's traffic is graded against."""

    #: A job slower than this is "slow" for the latency objective.
    latency_target_s: float = 2.0
    #: Fraction of jobs that must beat the latency target.
    latency_objective: float = 0.95
    #: Fraction of jobs allowed to fail outright.
    error_budget: float = 0.05
    #: Burn thresholds for the warn / breach verdicts.
    warn_burn: float = 0.5
    breach_burn: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.latency_objective < 1.0:
            raise ValueError("latency_objective must be in (0, 1)")
        if not 0.0 < self.error_budget < 1.0:
            raise ValueError("error_budget must be in (0, 1)")
        if self.latency_target_s <= 0:
            raise ValueError("latency_target_s must be positive")

    def to_dict(self) -> dict:
        return {
            "latency_target_s": self.latency_target_s,
            "latency_objective": self.latency_objective,
            "error_budget": self.error_budget,
            "warn_burn": self.warn_burn,
            "breach_burn": self.breach_burn,
        }


class _TenantState:
    __slots__ = ("jobs", "bad", "slow", "latency")

    def __init__(self, clock: Callable[[], float]) -> None:
        self.jobs = RollingCounter(clock=clock)
        self.bad = RollingCounter(clock=clock)
        self.slow = RollingCounter(clock=clock)
        self.latency = RollingHistogram(clock=clock)


class SLOTracker:
    """Grades per-tenant traffic against an :class:`SLOPolicy`.

    One policy for every tenant keeps the accounting simple (the serve
    path has no per-tenant contracts yet); the per-tenant *state* is
    where the isolation matters — one tenant's chaos jobs must not
    burn another's budget.
    """

    def __init__(
        self,
        policy: SLOPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or SLOPolicy()
        self._clock = clock
        self._tenants: dict[str, _TenantState] = {}

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantState(self._clock)
        return state

    def observe(self, tenant: str, latency_s: float, ok: bool) -> None:
        tenant = tenant or DEFAULT_TENANT
        state = self._state(tenant)
        state.jobs.inc()
        state.latency.observe(latency_s)
        if not ok:
            state.bad.inc()
        if latency_s > self.policy.latency_target_s:
            state.slow.inc()

    def tenants(self) -> list[str]:
        return sorted(self._tenants)

    def verdict(self, tenant: str) -> dict:
        """The graded view of one tenant: per-window burns plus the
        overall status (worst window wins)."""
        state = self._state(tenant)
        policy = self.policy
        windows: dict = {}
        worst_burn = 0.0
        any_traffic = False
        for label, seconds in WINDOW_SPECS:
            jobs = state.jobs.total(seconds)
            if not jobs:
                windows[label] = {
                    "jobs": 0.0,
                    "error_rate": 0.0,
                    "slow_rate": 0.0,
                    "error_burn": 0.0,
                    "latency_burn": 0.0,
                    "burn_rate": 0.0,
                }
                continue
            any_traffic = True
            error_rate = state.bad.total(seconds) / jobs
            slow_rate = state.slow.total(seconds) / jobs
            error_burn = error_rate / policy.error_budget
            latency_burn = slow_rate / (1.0 - policy.latency_objective)
            burn = max(error_burn, latency_burn)
            worst_burn = max(worst_burn, burn)
            p99 = state.latency.quantile(0.99, seconds)
            windows[label] = {
                "jobs": jobs,
                "error_rate": round(error_rate, 6),
                "slow_rate": round(slow_rate, 6),
                "error_burn": round(error_burn, 4),
                "latency_burn": round(latency_burn, 4),
                "burn_rate": round(burn, 4),
                "p99_ms": None if p99 is None else round(p99 * 1000.0, 3),
            }
        if not any_traffic:
            status = "idle"
        elif worst_burn >= policy.breach_burn:
            status = "breach"
        elif worst_burn >= policy.warn_burn:
            status = "warn"
        else:
            status = "ok"
        return {
            "tenant": tenant,
            "status": status,
            "burn_rate": round(worst_burn, 4),
            "windows": windows,
        }

    def verdicts(self) -> dict[str, dict]:
        """``{tenant: verdict}`` for every tenant seen so far."""
        return {tenant: self.verdict(tenant) for tenant in self.tenants()}

    def snapshot(self) -> dict:
        """JSON-ready policy + verdicts block for reports."""
        return {"policy": self.policy.to_dict(), "tenants": self.verdicts()}
