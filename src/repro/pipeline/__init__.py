"""End-to-end flow and reporting.

``flow`` wires the whole system together — run a workload on the
simulator, profile its trace, select hot loop blocks under TT
capacity, encode them, verify the hardware decode restores every
fetched instruction, and count bus transitions for the baseline and
encoded memory images.  ``report`` renders Figure-6/7 style tables and
chart series from the results.
"""

from repro.pipeline.flow import EncodingFlow, FlowResult
from repro.pipeline.report import (
    fig6_table,
    fig7_series,
    format_fig6,
    format_fig7_ascii,
)

__all__ = [
    "EncodingFlow",
    "FlowResult",
    "fig6_table",
    "fig7_series",
    "format_fig6",
    "format_fig7_ascii",
]
