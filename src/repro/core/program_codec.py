"""Vertical per-bus-line encoding of instruction words (Section 4).

A basic block of ``m`` instructions induces ``width`` vertical bit
streams (one per bus line, Figure 1b).  Every stream is chain-encoded
with the same block segmentation — a Transformation Table entry is one
segment: the 3-bit selectors for *all* bus lines plus the E/CT tail
bookkeeping (Figure 5a).  This module produces the encoded instruction
words (what is stored in program memory) and the per-segment selector
plans (what is loaded into the TT).

Encoding defaults to the compiled codebook fast path: columns are
extracted from the word list with shift/mask loops into Python ints
and each block is one table lookup (:mod:`repro.core.fastpath`).
``use_codebook=False`` selects the seed per-block solver; the two are
bit-identical.  :func:`encode_basic_blocks` batches independent basic
blocks and can fan them across a ``ProcessPoolExecutor`` for
whole-program encoding (``parallel=N``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core import bitplane
from repro.core.bitstream import (
    columns_to_words,
    total_word_transitions,
    word_column,
)
from repro.core.fastpath import (
    encode_disjoint_int,
    encode_greedy_int,
    encode_optimal_int,
    get_codebook,
)
from repro.core.stream_codec import (
    STRATEGIES,
    StreamEncoder,
    _segment_bounds_cached,
    decode_with_plan,
    segment_bounds,
)
from repro.core.transformations import OPTIMAL_SET, Transformation
from repro.obs import OBS


@dataclass(frozen=True)
class BlockEncoding:
    """The encoded form of one basic block.

    Attributes
    ----------
    original_words / encoded_words:
        Instruction words in fetch order, before and after encoding.
    block_size:
        The vertical block length ``k``.
    width:
        Bus width in bits (32 for our ISA).
    segment_plans:
        ``segment_plans[s][b]`` is the transformation applied by bus
        line ``b`` during segment ``s`` — exactly the payload of the
        ``s``-th Transformation Table entry for this basic block.
    """

    original_words: tuple[int, ...]
    encoded_words: tuple[int, ...]
    block_size: int
    width: int
    segment_plans: tuple[tuple[Transformation, ...], ...]

    def __len__(self) -> int:
        return len(self.original_words)

    @property
    def num_segments(self) -> int:
        """Transformation Table entries this basic block consumes."""
        return len(self.segment_plans)

    @property
    def bounds(self) -> list[tuple[int, int]]:
        """(start, length) of each segment in instruction indices."""
        return segment_bounds(len(self.original_words), self.block_size)

    @property
    def original_transitions(self) -> int:
        """Bus transitions fetching the original block start-to-end."""
        return total_word_transitions(self.original_words)

    @property
    def encoded_transitions(self) -> int:
        """Bus transitions fetching the encoded block start-to-end."""
        return total_word_transitions(self.encoded_words)

    @property
    def reduction_percent(self) -> float:
        total = self.original_transitions
        if total == 0:
            return 0.0
        return 100.0 * (total - self.encoded_transitions) / total

    def selectors(self) -> list[list[int]]:
        """3-bit TT selector codes, ``selectors()[segment][line]``.

        Raises if any planned transformation lies outside the optimal
        8-set (cannot happen when encoding used the default set).
        """
        table = []
        for plan in self.segment_plans:
            row = []
            for transformation in plan:
                if transformation.selector is None:
                    raise ValueError(
                        f"transformation {transformation.name!r} has no "
                        "hardware selector (outside the optimal 8-set)"
                    )
                row.append(transformation.selector)
            table.append(row)
        return table


def tt_entries_required(num_instructions: int, block_size: int) -> int:
    """Transformation Table entries a basic block of the given length
    consumes (used by the hot-spot selector's capacity accounting)."""
    return max(1, len(segment_bounds(num_instructions, block_size)))


def _encode_basic_block_fast(
    words: list[int],
    block_size: int,
    width: int,
    transformations: tuple[Transformation, ...],
    strategy: str,
) -> BlockEncoding:
    """Integer bit-parallel vertical encoding through the codebook."""
    book = get_codebook(block_size, transformations)
    length = len(words)
    overlapped = strategy != "disjoint"
    bounds = _segment_bounds_cached(length, block_size, overlapped)
    encoded_columns: list[int] = []
    per_line_taus: list[list[Transformation]] = []
    for line in range(width):
        column = 0
        for t, word in enumerate(words):
            column |= ((word >> line) & 1) << t
        if strategy == "greedy":
            encoded, taus = encode_greedy_int(book, column, bounds)
        elif strategy == "optimal":
            encoded, taus, _cost = encode_optimal_int(book, column, bounds)
        else:
            encoded, taus = encode_disjoint_int(book, column, bounds)
        encoded_columns.append(encoded)
        per_line_taus.append(taus)

    encoded_words = []
    for t in range(length):
        word = 0
        for line in range(width):
            word |= ((encoded_columns[line] >> t) & 1) << line
        encoded_words.append(word)

    segment_plans = tuple(
        tuple(per_line_taus[line][segment] for line in range(width))
        for segment in range(len(bounds))
    )
    return BlockEncoding(
        original_words=tuple(words),
        encoded_words=tuple(encoded_words),
        block_size=block_size,
        width=width,
        segment_plans=segment_plans,
    )


def encode_basic_block(
    words: Sequence[int],
    block_size: int,
    width: int = 32,
    transformations: Sequence[Transformation] = OPTIMAL_SET,
    strategy: str = "greedy",
    use_codebook: bool = True,
) -> BlockEncoding:
    """Encode a basic block's instruction words vertically.

    Every bus line is encoded independently (Section 4: "Each bit, or
    column ..., undergoes a distinct encoding analysis"), but all lines
    share the same segmentation so a TT entry can carry one selector
    per line.
    """
    words = [int(w) for w in words]
    for w in words:
        if w < 0 or w >= (1 << width):
            raise ValueError(f"word {w:#x} does not fit in {width} bits")
    if not words:
        return BlockEncoding((), (), block_size, width, ())
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    if OBS.enabled:
        path = "fast" if use_codebook and len(words) >= 2 else "reference"
        OBS.registry.counter(
            "codec.blocks_encoded",
            "basic blocks vertically encoded",
            path=path,
            strategy=strategy,
        ).inc()
        OBS.registry.counter(
            "codec.words_encoded",
            "instruction words vertically encoded",
            path=path,
        ).inc(len(words))
    if use_codebook and len(words) >= 2:
        return _encode_basic_block_fast(
            words, block_size, width, tuple(transformations), strategy
        )

    encoder = StreamEncoder(
        block_size, transformations, strategy, use_codebook=use_codebook
    )
    encoded_columns: list[list[int]] = []
    per_line_segments: list[list[Transformation]] = []
    for line in range(width):
        encoding = encoder.encode(word_column(words, line))
        encoded_columns.append(list(encoding.encoded))
        per_line_segments.append(encoding.transformations())

    num_segments = len(per_line_segments[0])
    segment_plans = tuple(
        tuple(per_line_segments[line][segment] for line in range(width))
        for segment in range(num_segments)
    )
    encoded_words = columns_to_words(encoded_columns)
    return BlockEncoding(
        original_words=tuple(words),
        encoded_words=tuple(encoded_words),
        block_size=block_size,
        width=width,
        segment_plans=segment_plans,
    )


def _encode_block_worker(
    args: tuple,
) -> BlockEncoding:
    """Top-level (picklable) worker for the process-pool path."""
    words, block_size, width, transformations, strategy, use_codebook = args
    return encode_basic_block(
        words,
        block_size,
        width=width,
        transformations=transformations,
        strategy=strategy,
        use_codebook=use_codebook,
    )


def encode_basic_blocks(
    word_lists: Sequence[Sequence[int]],
    block_size: int,
    width: int = 32,
    transformations: Sequence[Transformation] = OPTIMAL_SET,
    strategy: str = "greedy",
    use_codebook: bool = True,
    parallel: int | None = None,
) -> list[BlockEncoding]:
    """Encode many independent basic blocks, preserving order.

    ``parallel=N`` (N > 1) fans the blocks across a
    ``ProcessPoolExecutor`` with N workers — basic blocks are encoded
    independently (the paper's encoding never spans block boundaries),
    so whole-program encoding parallelises trivially.  ``None``/``1``
    encodes serially in-process.
    """
    transformations = tuple(transformations)
    if parallel is not None and parallel > 1 and len(word_lists) > 1:
        # Compile the codebook before forking so workers inherit it.
        if use_codebook:
            get_codebook(block_size, transformations)
        from concurrent.futures import ProcessPoolExecutor

        jobs = [
            (
                [int(w) for w in words],
                block_size,
                width,
                transformations,
                strategy,
                use_codebook,
            )
            for words in word_lists
        ]
        with ProcessPoolExecutor(max_workers=parallel) as pool:
            return list(pool.map(_encode_block_worker, jobs))
    return [
        encode_basic_block(
            words,
            block_size,
            width=width,
            transformations=transformations,
            strategy=strategy,
            use_codebook=use_codebook,
        )
        for words in word_lists
    ]


def decode_basic_block(
    encoding: BlockEncoding,
    use_tables: bool = True,
    use_bitplane: bool | None = None,
) -> list[int]:
    """Restore the original instruction words from a
    :class:`BlockEncoding` (software mirror of the fetch hardware).

    The default decodes all ``width`` vertical streams concurrently
    through the lane-packed bitplane scan; ``use_bitplane=False``
    selects the per-line scalar paths (suffix tables or the bit-serial
    reference, per ``use_tables``).  All paths are bit-identical.
    """
    if not encoding.encoded_words:
        return []
    if use_bitplane is None:
        use_bitplane = use_tables
    if use_bitplane:
        length = len(encoding.encoded_words)
        bounds = _segment_bounds_cached(length, encoding.block_size, True)
        if len(bounds) != len(encoding.segment_plans):
            raise ValueError(
                f"plan length {len(encoding.segment_plans)} does not match "
                f"{len(bounds)} blocks for a stream of {length} bits"
            )
        plans = tuple(
            tuple(transformation.func.truth_table for transformation in plan)
            for plan in encoding.segment_plans
        )
        return bitplane.decode_block_bitplane(
            encoding.encoded_words, bounds, plans, width=encoding.width
        )
    decoded_columns = []
    for line in range(encoding.width):
        stored = word_column(encoding.encoded_words, line)
        plan = [plan[line] for plan in encoding.segment_plans]
        decoded_columns.append(
            decode_with_plan(
                stored, encoding.block_size, plan, use_tables=use_tables
            )
        )
    return columns_to_words(decoded_columns)
