"""Tests for the extended (non-Figure-6) workloads."""

import pytest

from repro.pipeline.flow import EncodingFlow
from repro.workloads.registry import (
    BENCHMARK_ORDER,
    EXTENDED_WORKLOADS,
    build_workload,
)

SMALL = {
    "fir": {"taps": 8, "samples": 48},
    "iir": {"sections": 2, "samples": 64},
    "conv2d": {"n": 10},
}


@pytest.mark.parametrize("name", EXTENDED_WORKLOADS)
class TestExtendedWorkloads:
    def test_runs_and_verifies(self, name):
        workload = build_workload(name, **SMALL[name])
        cpu, trace = workload.run()
        assert cpu.steps == len(trace) > 0

    def test_encoding_flow_works(self, name):
        workload = build_workload(name, **SMALL[name])
        result = EncodingFlow(block_size=5).run_workload(workload)
        assert result.decode_verified
        assert result.reduction_percent > 10.0

    def test_registered(self, name):
        assert name not in BENCHMARK_ORDER  # Figure 6 stays the paper's six
        workload = build_workload(name, **SMALL[name])
        assert workload.name == name


class TestParameterValidation:
    def test_fir_bounds(self):
        with pytest.raises(ValueError):
            build_workload("fir", taps=0)
        with pytest.raises(ValueError):
            build_workload("fir", taps=16, samples=8)

    def test_iir_bounds(self):
        with pytest.raises(ValueError):
            build_workload("iir", sections=0)

    def test_conv2d_bounds(self):
        with pytest.raises(ValueError):
            build_workload("conv2d", n=2)


class TestStructuralContrast:
    def test_conv2d_has_long_hot_block(self):
        # The unrolled taps produce a long straight-line inner block —
        # the structural opposite of fft's bit-reversal blocks.
        from repro.cfg.graph import ControlFlowGraph
        from repro.cfg.profile import profile_trace
        from repro.sim.cpu import run_program

        workload = build_workload("conv2d", n=10)
        program = workload.assemble()
        cpu, trace = run_program(program)
        cfg = ControlFlowGraph.build(program)
        profile = profile_trace(cfg, trace)
        hottest = profile.hottest(1)[0]
        assert len(cfg.blocks[hottest]) > 30

    def test_long_blocks_encode_better_than_short(self):
        # Same data scale: conv2d (one fat block) must reach a higher
        # reduction at k=5 than a trace dominated by tiny blocks.
        conv = EncodingFlow(block_size=5).run_workload(
            build_workload("conv2d", n=12)
        )
        assert conv.reduction_percent > 30.0
