"""Tests for instruction word encoding and decoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instruction import DecodeError, Instruction, decode_word
from repro.isa.opcodes import SPECS_BY_NAME


def _max_field(role: str) -> int:
    return {
        "rd": 31,
        "rs": 31,
        "rt": 31,
        "fd": 31,
        "fs": 31,
        "ft": 31,
        "shamt": 31,
        "imm": 0xFFFF,
        "target": 0x3FFFFFF,
    }[role]


_FIELD_ROLES = {
    "rd": "rd",
    "rs": "rs",
    "rt": "rt",
    "fd": "fd",
    "fs": "fs",
    "ft": "ft",
    "shamt": "shamt",
    "imm": "imm",
    "branch": "imm",
    "mem": "imm",
    "target": "target",
}


class TestKnownEncodings:
    """Pin a few encodings against hand-computed MIPS words."""

    def test_addu(self):
        # addu $t0, $t1, $t2 -> 0x012A4021
        inst = Instruction(SPECS_BY_NAME["addu"], {"rd": 8, "rs": 9, "rt": 10})
        assert inst.encode() == 0x012A4021

    def test_addiu(self):
        # addiu $t0, $zero, 5 -> 0x24080005
        inst = Instruction(SPECS_BY_NAME["addiu"], {"rt": 8, "rs": 0, "imm": 5})
        assert inst.encode() == 0x24080005

    def test_lw(self):
        # lw $t4, 4($t3) -> 0x8D6C0004
        inst = Instruction(SPECS_BY_NAME["lw"], {"rt": 12, "rs": 11, "imm": 4})
        assert inst.encode() == 0x8D6C0004

    def test_j(self):
        # j 0x00400000 -> 0x08100000
        inst = Instruction(SPECS_BY_NAME["j"], {"target": 0x00400000 >> 2})
        assert inst.encode() == 0x08100000

    def test_sll(self):
        # sll $t3, $t1, 2 -> 0x00095880
        inst = Instruction(SPECS_BY_NAME["sll"], {"rd": 11, "rt": 9, "shamt": 2})
        assert inst.encode() == 0x00095880

    def test_syscall(self):
        inst = Instruction(SPECS_BY_NAME["syscall"], {})
        assert inst.encode() == 0x0000000C

    def test_add_d(self):
        # add.d $f4, $f2, $f6: COP1, fmt=0x11, ft=6, fs=2, fd=4
        inst = Instruction(SPECS_BY_NAME["add.d"], {"fd": 4, "fs": 2, "ft": 6})
        assert inst.encode() == (0x11 << 26) | (0x11 << 21) | (6 << 16) | (2 << 11) | (4 << 6)


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(SPECS_BY_NAME))
    def test_every_spec_roundtrips(self, name):
        spec = SPECS_BY_NAME[name]
        fields = {}
        for i, role in enumerate(spec.syntax):
            field = _FIELD_ROLES[role]
            fields[field] = (i * 3 + 1) % (_max_field(field) + 1)
            if role == "mem":
                fields["rs"] = 7
        inst = Instruction(spec, fields)
        decoded = decode_word(inst.encode())
        assert decoded.name == name
        for field, value in fields.items():
            assert decoded.get(field) == value, (name, field)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=300)
    def test_decode_never_misencodes(self, word):
        # Any word either raises DecodeError or re-encodes to itself,
        # except for don't-care fields the format ignores.
        try:
            inst = decode_word(word)
        except DecodeError:
            return
        reencoded = inst.encode()
        redecoded = decode_word(reencoded)
        assert redecoded.name == inst.name
        assert redecoded.fields == inst.fields


class TestImmediates:
    def test_simm_sign_extension(self):
        inst = Instruction(SPECS_BY_NAME["addiu"], {"rt": 1, "rs": 0, "imm": 0xFFFF})
        assert inst.simm == -1

    def test_simm_positive(self):
        inst = Instruction(SPECS_BY_NAME["addiu"], {"rt": 1, "rs": 0, "imm": 0x7FFF})
        assert inst.simm == 0x7FFF

    def test_field_overflow_rejected(self):
        with pytest.raises(ValueError):
            Instruction(SPECS_BY_NAME["addiu"], {"rt": 1, "rs": 0, "imm": 1 << 16}).encode()
        with pytest.raises(ValueError):
            Instruction(SPECS_BY_NAME["addu"], {"rd": 32, "rs": 0, "rt": 0}).encode()


class TestDecodeErrors:
    def test_unknown_funct(self):
        with pytest.raises(DecodeError):
            decode_word(0x0000003F)  # SPECIAL with unused funct

    def test_unknown_opcode(self):
        with pytest.raises(DecodeError):
            decode_word(0xFC000000)  # opcode 0x3F
