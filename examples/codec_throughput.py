"""Measure codec throughput: compiled fast path vs. reference solver.

Runs the same fast-vs-reference suite as ``repro bench`` /
``benchmarks/test_codec_throughput.py``: stream encoding under all
three strategies, vertical basic-block encoding, and both table-driven
decoders, each cross-checked for bit-identity before timing.  Writes
the machine-readable report to ``BENCH_codec.json``.

Run:  python examples/codec_throughput.py [--repeats N] [--parallel N]

``--parallel N`` additionally times a whole-program encode (the mmul
workload) serially and across N worker processes.
"""

import argparse
from pathlib import Path

from repro.pipeline.benchmark import (
    run_codec_benchmarks,
    workload_encode_benchmark,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--stream-length", type=int, default=5000)
    parser.add_argument("--words", type=int, default=64)
    parser.add_argument("-k", "--block-size", type=int, default=5)
    parser.add_argument(
        "--json",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_codec.json"),
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="also time a whole-program encode with N worker processes",
    )
    args = parser.parse_args()

    report = run_codec_benchmarks(
        stream_length=args.stream_length,
        num_words=args.words,
        block_size=args.block_size,
        repeats=args.repeats,
    )
    print(report.format_table())
    path = report.write(args.json)
    print(f"\nwrote {path}")

    if args.parallel:
        print("\nwhole-program encode (mmul workload):")
        timing = workload_encode_benchmark(
            block_size=args.block_size, parallel=args.parallel
        )
        print(f"  serial:              {timing['serial_seconds']:.3f} s")
        if "parallel_seconds" in timing:
            ratio = timing["serial_seconds"] / timing["parallel_seconds"]
            print(
                f"  {timing['parallel_workers']} workers:           "
                f"{timing['parallel_seconds']:.3f} s ({ratio:.2f}x)"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
