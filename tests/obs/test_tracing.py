"""Tracer semantics: nesting, JSONL emission, the no-op fast path."""

import json

from repro.obs.tracing import NOOP_SPAN, Tracer


class TestNesting:
    def test_parent_child_depth(self):
        tracer = Tracer(enabled=True)
        with tracer.span("flow.run", workload="fir") as outer:
            with tracer.span("flow.encode") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.depth == 0
        assert inner.depth == 1
        # Children finish first, so they appear first in the record.
        assert [s.name for s in tracer.spans] == ["flow.encode", "flow.run"]

    def test_durations_are_positive_and_nested(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        inner, outer = tracer.spans
        assert 0 < inner.duration <= outer.duration

    def test_late_attributes_via_set(self):
        tracer = Tracer(enabled=True)
        with tracer.span("sim.run") as span:
            span.set(steps=1234)
        assert tracer.spans[0].attrs == {"steps": 1234}

    def test_exception_marks_error_status(self):
        tracer = Tracer(enabled=True)
        try:
            with tracer.span("flow.encode"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        span = tracer.spans[0]
        assert span.status == "error"
        assert span.attrs["error"] == "RuntimeError"

    def test_span_cap_drops_oldest(self):
        tracer = Tracer(enabled=True, max_spans=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert tracer.spans_dropped == 2
        assert [s.name for s in tracer.spans] == ["s2", "s3", "s4"]
        assert tracer.snapshot()["spans_recorded"] == 5

    def test_aggregate_by_name(self):
        tracer = Tracer(enabled=True)
        for _ in range(3):
            with tracer.span("codec.encode"):
                pass
        table = tracer.aggregate()
        assert table["codec.encode"]["count"] == 3
        assert table["codec.encode"]["total_s"] >= (
            table["codec.encode"]["max_s"]
        )


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(enabled=True)
        tracer.open_jsonl(path)
        with tracer.span("flow.run", workload="fir"):
            with tracer.span("flow.encode"):
                pass
        tracer.close_jsonl()
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert [e["event"] for e in events] == ["run_start", "span", "span"]
        assert {e["run_id"] for e in events} == {tracer.run_id}
        by_name = {e["name"]: e for e in events[1:]}
        assert by_name["flow.encode"]["parent_id"] == (
            by_name["flow.run"]["span_id"]
        )
        assert by_name["flow.run"]["attrs"] == {"workload": "fir"}

    def test_append_across_opens(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            tracer = Tracer(enabled=True)
            tracer.open_jsonl(path)
            with tracer.span("s"):
                pass
            tracer.close_jsonl()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(events) == 4  # two (run_start, span) pairs
        assert len({e["run_id"] for e in events}) == 2


class TestNoop:
    def test_disabled_span_is_the_shared_singleton(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("flow.run", workload="fir")
        assert span is NOOP_SPAN
        assert tracer.span("anything") is span  # no allocation per call

    def test_noop_span_is_inert(self):
        tracer = Tracer(enabled=False)
        with tracer.span("flow.run") as span:
            span.set(steps=1)
        assert span.duration == 0.0
        assert tracer.spans == []
        assert tracer.snapshot()["spans_recorded"] == 0

    def test_disabled_overhead_is_small(self):
        """The no-op path must stay within a generous constant factor
        of a bare function call — the "single attribute check" claim.

        Generous bound (20x a no-op loop iteration) so CI noise cannot
        flake it; the property it guards is *constant* cost, i.e. no
        allocation or locking on the disabled path.
        """
        import time

        tracer = Tracer(enabled=False)
        n = 50_000

        start = time.perf_counter()
        for _ in range(n):
            pass
        baseline = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(n):
            tracer.span("x")
        disabled = time.perf_counter() - start

        assert disabled < max(20 * baseline, 0.25)


class TestTraceContext:
    def test_wire_roundtrip(self):
        from repro.obs.tracing import TraceContext

        ctx = TraceContext(
            trace_id="run01", span_id="s01", depth=2,
            tenant="t0", job_id="j0",
        )
        again = TraceContext.from_wire(ctx.to_wire())
        assert again == ctx

    def test_junk_wire_rejected(self):
        from repro.obs.tracing import TraceContext

        for junk in (None, 7, "x", [], {}, {"trace_id": "a"},
                     {"trace_id": "", "span_id": "s"},
                     {"trace_id": "a", "span_id": ""}):
            assert TraceContext.from_wire(junk) is None

    def test_context_rides_a_detached_span(self):
        tracer = Tracer(enabled=True)
        span = tracer.begin("serve.job", tenant="t0")
        ctx = tracer.context(span, tenant="t0", job_id="j0")
        assert ctx.span_id == span.span_id
        assert ctx.trace_id == span.trace_id
        tracer.end(span, status="ok")
        assert tracer.spans[-1].name == "serve.job"


class TestRemoteStitching:
    def test_remote_anchor_parents_local_spans(self):
        from repro.obs.tracing import TraceContext

        server = Tracer(enabled=True)
        job = server.begin("serve.job")
        ctx = server.context(job, tenant="t0", job_id="j0")

        worker = Tracer(enabled=True)
        anchor = worker.push_remote(ctx)
        with worker.span("serve.worker"):
            with worker.span("flow.run"):
                pass
        worker.pop_remote(anchor)

        exported = {s.name: s.to_dict() for s in worker.spans}
        assert exported["serve.worker"]["parent_id"] == job.span_id
        assert exported["serve.worker"]["trace_id"] == job.trace_id
        assert exported["flow.run"]["trace_id"] == job.trace_id
        assert (
            exported["flow.run"]["parent_id"]
            == exported["serve.worker"]["span_id"]
        )

    def test_adopt_spans_preserves_identity(self):
        donor = Tracer(enabled=True)
        with donor.span("flow.run", workload="fir"):
            pass
        host = Tracer(enabled=True)
        assert host.adopt_spans(donor.export_spans()) == 1
        adopted = host.spans[-1].to_dict()
        original = donor.spans[-1].to_dict()
        for key in ("span_id", "parent_id", "trace_id", "duration_s"):
            assert adopted[key] == original[key]

    def test_adopt_spans_skips_junk(self):
        host = Tracer(enabled=True)
        assert host.adopt_spans(None) == 0
        assert host.adopt_spans("nope") == 0
        assert host.adopt_spans([{"name": 3}, None, {}]) == 0

    def test_detached_spans_do_not_disturb_the_stack(self):
        # Dispatchers interleave jobs on one thread: a begin()/end()
        # pair must never become the implicit parent of other work.
        tracer = Tracer(enabled=True)
        detached = tracer.begin("serve.job")
        with tracer.span("unrelated"):
            pass
        tracer.end(detached)
        exported = {s.name: s.to_dict() for s in tracer.spans}
        assert exported["unrelated"]["parent_id"] is None
