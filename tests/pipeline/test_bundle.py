"""Tests for firmware bundle serialisation and deployment."""

import json

import pytest

from repro.pipeline.bundle import EncodingBundle
from repro.pipeline.flow import EncodingFlow
from repro.sim.cpu import run_program
from repro.workloads.registry import build_workload


@pytest.fixture(scope="module")
def built():
    workload = build_workload("lu", n=10)
    program = workload.assemble()
    cpu, trace = run_program(program)
    result = EncodingFlow(block_size=5).run(program, trace, "lu")
    bundle = EncodingBundle.from_flow_result(program, result)
    return program, trace, result, bundle


class TestConstruction:
    def test_metadata(self, built):
        program, trace, result, bundle = built
        assert bundle.name == "lu"
        assert bundle.block_size == 5
        assert bundle.text_base == program.text_base
        assert bundle.encoded_words == result.encoded_image

    def test_table_sizes_match_flow(self, built):
        program, trace, result, bundle = built
        assert len(bundle.tt_entries) == result.tt_entries_used
        assert len(bundle.bbit_entries) == len(result.selected_blocks)

    def test_verify_against(self, built):
        program, trace, result, bundle = built
        assert bundle.verify_against(program)
        other = build_workload("mmul", n=6).assemble()
        assert not bundle.verify_against(other)


class TestSerialisation:
    def test_roundtrip(self, built):
        program, trace, result, bundle = built
        text = bundle.to_json()
        loaded = EncodingBundle.from_json(text)
        assert loaded.encoded_words == bundle.encoded_words
        assert loaded.tt_entries == bundle.tt_entries
        assert loaded.bbit_entries == bundle.bbit_entries
        assert loaded.original_digest == bundle.original_digest

    def test_json_is_plain(self, built):
        program, trace, result, bundle = built
        data = json.loads(bundle.to_json())
        assert data["format_version"] == 1
        assert all(len(w) == 8 for w in data["encoded_words"])

    def test_corruption_detected(self, built):
        program, trace, result, bundle = built
        data = json.loads(bundle.to_json())
        data["encoded_words"][0] = "deadbeef"
        with pytest.raises(ValueError, match="digest mismatch"):
            EncodingBundle.from_json(json.dumps(data))

    def test_unknown_version_rejected(self, built):
        program, trace, result, bundle = built
        data = json.loads(bundle.to_json())
        data["format_version"] = 99
        with pytest.raises(ValueError, match="unsupported"):
            EncodingBundle.from_json(json.dumps(data))


class TestDeployment:
    def test_tables_rebuild(self, built):
        program, trace, result, bundle = built
        tt, bbit = bundle.build_tables()
        assert len(tt) == result.tt_entries_used
        assert len(bbit) == len(result.selected_blocks)

    def test_deploy_and_check(self, built):
        program, trace, result, bundle = built
        assert bundle.deploy_and_check(program, trace)

    def test_deploy_after_json_roundtrip(self, built):
        program, trace, result, bundle = built
        loaded = EncodingBundle.from_json(bundle.to_json())
        assert loaded.deploy_and_check(program, trace)

    def test_deploy_rejects_wrong_program(self, built):
        program, trace, result, bundle = built
        other = build_workload("mmul", n=6).assemble()
        with pytest.raises(ValueError, match="does not match"):
            bundle.deploy_and_check(other, [])

    def test_empty_selection_bundle(self):
        from repro.isa.assembler import assemble

        program = assemble(
            ".text\nmain: addu $t0, $t1, $t2\nli $v0, 10\nsyscall\n"
        )
        cpu, trace = run_program(program)
        result = EncodingFlow(block_size=5).run(program, trace, "straight")
        bundle = EncodingBundle.from_flow_result(program, result)
        assert bundle.tt_entries == []
        assert bundle.deploy_and_check(program, trace)
