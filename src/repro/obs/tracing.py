"""Span-based wall-clock tracing with JSONL emission.

A span measures one named region of work::

    with tracer.span("encode.block_solve", line=7):
        ...

Spans nest: each carries its parent's id and a depth, so the flow's
phase breakdown (``flow.run`` > ``flow.encode`` > ...) reconstructs as
a tree.  Every span records a monotonic start/duration pair plus an
epoch timestamp, and is tagged with the tracer's process-wide
``run_id`` so events from one run correlate across files.

Disabled tracers cost a single attribute check per call:
:meth:`Tracer.span` returns the shared :data:`NOOP_SPAN` singleton
without allocating anything.  ``tests/obs/test_tracing.py`` guards
this property.

With ``jsonl_path`` set, every finished span appends one JSON line
(``{"event": "span", ...}``) to the file — the machine-readable trace
log the ``repro trace`` subcommand and external tooling consume.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from dataclasses import dataclass
from typing import IO

__all__ = ["Span", "TraceContext", "Tracer", "NOOP_SPAN", "new_run_id"]

#: Retained finished spans per tracer; older spans beyond the cap are
#: dropped (counted in :attr:`Tracer.spans_dropped`) so week-long runs
#: cannot exhaust memory.
DEFAULT_MAX_SPANS = 65536


def new_run_id() -> str:
    """A short process-unique run identifier."""
    return uuid.uuid4().hex[:12]


class _NoopSpan:
    """Shared do-nothing context manager for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs) -> None:
        """Accept (and discard) late attributes."""

    @property
    def duration(self) -> float:
        return 0.0


NOOP_SPAN = _NoopSpan()


class Span:
    """One timed region; use as a context manager via :meth:`Tracer.span`."""

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "trace_id",
        "depth",
        "start_unix",
        "_tracer",
        "_start",
        "duration",
        "status",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: dict,
        parent_id: str | None,
        depth: int,
        trace_id: str | None = None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = uuid.uuid4().hex[:12]
        self.parent_id = parent_id
        self.trace_id = trace_id or tracer.run_id
        self.depth = depth
        self.start_unix = time.time()
        self.duration = 0.0
        self.status = "ok"
        self._start = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (counts, sizes)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._start
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self)
        return None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "depth": self.depth,
            "start_unix": self.start_unix,
            "duration_s": self.duration,
            "status": self.status,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, tracer: "Tracer", data: dict) -> "Span | None":
        """Rebuild a finished span from :meth:`to_dict` output,
        preserving its identity (ids, depth, timing) so a span that
        crossed a process boundary still stitches under its parent."""
        name = data.get("name")
        span_id = data.get("span_id")
        if not isinstance(name, str) or not isinstance(span_id, str):
            return None
        span = cls.__new__(cls)
        span._tracer = tracer
        span.name = name
        span.span_id = span_id
        parent = data.get("parent_id")
        span.parent_id = parent if isinstance(parent, str) else None
        trace = data.get("trace_id")
        span.trace_id = trace if isinstance(trace, str) else tracer.run_id
        depth = data.get("depth")
        span.depth = depth if isinstance(depth, int) and depth >= 0 else 0
        start = data.get("start_unix")
        span.start_unix = float(start) if isinstance(start, (int, float)) else 0.0
        duration = data.get("duration_s")
        span.duration = (
            float(duration) if isinstance(duration, (int, float)) else 0.0
        )
        status = data.get("status")
        span.status = status if isinstance(status, str) else "ok"
        attrs = data.get("attrs")
        span.attrs = dict(attrs) if isinstance(attrs, dict) else {}
        span._start = 0.0
        return span


@dataclass(frozen=True)
class TraceContext:
    """The serializable identity of an open span, carried across a
    process boundary so remote work stitches under it.

    ``to_wire``/``from_wire`` round-trip through plain JSON-safe dicts;
    ``from_wire`` answers ``None`` for anything malformed — a junk
    envelope must degrade to "no propagation", never to an exception
    on the serve path.
    """

    trace_id: str
    span_id: str
    depth: int = 0
    tenant: str = ""
    job_id: str = ""

    def to_wire(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "depth": self.depth,
            "tenant": self.tenant,
            "job_id": self.job_id,
        }

    @classmethod
    def from_wire(cls, wire: object) -> "TraceContext | None":
        if not isinstance(wire, dict):
            return None
        trace_id = wire.get("trace_id")
        span_id = wire.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        if not trace_id or not span_id:
            return None
        depth = wire.get("depth")
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            depth=depth if isinstance(depth, int) and depth >= 0 else 0,
            tenant=str(wire.get("tenant", "") or ""),
            job_id=str(wire.get("job_id", "") or ""),
        )


class _RemoteAnchor:
    """A stack placeholder impersonating a span that lives in another
    process: it has just enough surface (``span_id``, ``depth``,
    ``trace_id``) for :meth:`Tracer.span` to parent new spans under it."""

    __slots__ = ("span_id", "depth", "trace_id")

    def __init__(self, ctx: TraceContext) -> None:
        self.span_id = ctx.span_id
        self.depth = ctx.depth
        self.trace_id = ctx.trace_id


class Tracer:
    """Collects nested spans; one instance per process by default.

    The span stack is thread-local so concurrent threads each see
    their own nesting; the finished-span list and JSONL stream are
    shared (append is atomic under the GIL, and the JSONL file is
    written one complete line at a time).
    """

    def __init__(
        self,
        enabled: bool = False,
        max_spans: int = DEFAULT_MAX_SPANS,
        run_id: str | None = None,
    ) -> None:
        self.enabled = enabled
        self.run_id = run_id or new_run_id()
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.spans_dropped = 0
        self._local = threading.local()
        self._jsonl: IO[str] | None = None
        self._jsonl_lock = threading.Lock()

    # ------------------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs):
        """Open a span (or return :data:`NOOP_SPAN` when disabled)."""
        if not self.enabled:
            return NOOP_SPAN
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(
            self,
            name,
            attrs,
            parent.span_id if parent else None,
            parent.depth + 1 if parent else 0,
            parent.trace_id if parent else None,
        )
        stack.append(span)
        return span

    def begin(self, name: str, **attrs) -> Span | None:
        """Open a *detached* span: timed and recorded like any other,
        but never pushed on the thread-local stack.

        This is the span shape for cooperatively-scheduled work — an
        asyncio server interleaves many jobs on one thread, so stack
        nesting would attribute children to whichever job happens to
        be mid-await.  Close with :meth:`end`.  Returns ``None`` when
        disabled (callers guard, the same as a falsy check on
        :data:`NOOP_SPAN` would not be)."""
        if not self.enabled:
            return None
        span = Span(self, name, attrs, None, 0)
        span._start = time.perf_counter()
        return span

    def end(self, span: Span | None, status: str | None = None) -> None:
        """Finish a span opened with :meth:`begin`."""
        if span is None:
            return
        span.duration = time.perf_counter() - span._start
        if status is not None:
            span.status = status
        self._finish(span)

    def context(
        self, span: Span, tenant: str = "", job_id: str = ""
    ) -> TraceContext:
        """The wire-serializable :class:`TraceContext` for ``span``."""
        return TraceContext(
            trace_id=span.trace_id,
            span_id=span.span_id,
            depth=span.depth,
            tenant=tenant,
            job_id=job_id,
        )

    def push_remote(self, ctx: TraceContext) -> _RemoteAnchor:
        """Anchor this thread's span stack under a remote parent: until
        the matching :meth:`pop_remote`, new spans parent under
        ``ctx.span_id`` and inherit its trace id."""
        anchor = _RemoteAnchor(ctx)
        self._stack().append(anchor)
        return anchor

    def pop_remote(self, anchor: _RemoteAnchor) -> None:
        stack = self._stack()
        if anchor in stack:
            # Unwind to (and including) the anchor; anything above it
            # is an unclosed span abandoned by an error path.
            while stack:
                if stack.pop() is anchor:
                    break

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        if len(self.spans) >= self.max_spans:
            # Drop the *oldest* retained span: recent activity is what
            # reports and `repro trace` care about.
            self.spans.pop(0)
            self.spans_dropped += 1
        self.spans.append(span)
        if self._jsonl is not None:
            self._emit({"event": "span", "run_id": self.run_id, **span.to_dict()})

    # ------------------------------------------------------------------
    # JSONL stream
    # ------------------------------------------------------------------

    def _emit(self, event: dict) -> None:
        with self._jsonl_lock:
            if self._jsonl is None:
                return
            self._jsonl.write(json.dumps(event) + "\n")
            self._jsonl.flush()

    def open_jsonl(self, path) -> None:
        """Start appending span events to ``path`` (one JSON per line)."""
        self.close_jsonl()
        self._jsonl = open(path, "a")
        self._emit(
            {
                "event": "run_start",
                "run_id": self.run_id,
                "start_unix": time.time(),
            }
        )

    def close_jsonl(self) -> None:
        with self._jsonl_lock:
            if self._jsonl is not None:
                self._jsonl.close()
                self._jsonl = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def slowest(self, n: int = 10) -> list[Span]:
        return sorted(self.spans, key=lambda s: s.duration, reverse=True)[:n]

    def aggregate(self) -> dict[str, dict]:
        """Per-name totals: ``{name: {count, total_s, min_s, max_s}}``."""
        table: dict[str, dict] = {}
        for span in self.spans:
            row = table.get(span.name)
            if row is None:
                table[span.name] = {
                    "count": 1,
                    "total_s": span.duration,
                    "min_s": span.duration,
                    "max_s": span.duration,
                }
            else:
                row["count"] += 1
                row["total_s"] += span.duration
                row["min_s"] = min(row["min_s"], span.duration)
                row["max_s"] = max(row["max_s"], span.duration)
        return table

    def export_spans(self, limit: int = 128) -> list[dict]:
        """The last ``limit`` finished spans as JSON-ready dicts — the
        span half of a worker's telemetry delta."""
        return [span.to_dict() for span in self.spans[-limit:]]

    def adopt_spans(self, span_dicts: object) -> int:
        """Absorb spans exported by another process's tracer.

        Identities (span/parent/trace ids, depth, timing) are kept
        verbatim so the adopted spans stitch under whatever local span
        issued their :class:`TraceContext`.  Malformed entries are
        skipped; returns the number adopted."""
        if not isinstance(span_dicts, list):
            return 0
        adopted = 0
        for data in span_dicts:
            if not isinstance(data, dict):
                continue
            span = Span.from_dict(self, data)
            if span is None:
                continue
            self._finish(span)
            adopted += 1
        return adopted

    def snapshot(self) -> dict:
        """JSON-ready view: aggregates plus every retained span."""
        return {
            "run_id": self.run_id,
            "spans_recorded": len(self.spans) + self.spans_dropped,
            "spans_dropped": self.spans_dropped,
            "by_name": self.aggregate(),
            "spans": [span.to_dict() for span in self.spans],
        }

    def reset(self) -> None:
        """Drop retained spans and the nesting stack; keep the run id."""
        self.spans = []
        self.spans_dropped = 0
        self._local = threading.local()
