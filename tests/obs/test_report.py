"""RunReport: collection, serialisation, validation, provenance."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    EXPECTED_ENCODE_FAMILIES,
    REPORT_SCHEMA_VERSION,
    RunReport,
    load_run_report,
    missing_families,
    run_metadata,
    validate_run_report,
)
from repro.obs.tracing import Tracer


def _populated_state():
    registry = MetricsRegistry()
    registry.counter("codec.blocks_encoded", workload="fir").inc(3)
    registry.gauge("flow.hot_coverage", workload="fir").set(0.99)
    registry.histogram("faults.case_seconds", model="m").observe(0.01)
    tracer = Tracer(enabled=True)
    with tracer.span("flow.run", workload="fir"):
        with tracer.span("flow.encode"):
            pass
    return registry, tracer


class TestRunMetadata:
    def test_contains_provenance(self):
        meta = run_metadata(command="repro encode fir", seed=7)
        assert meta["command"] == "repro encode fir"
        assert meta["seed"] == 7
        assert meta["git_sha"]
        assert meta["platform"]
        assert meta["python"].count(".") >= 1
        assert meta["timestamp_unix"] > 0

    def test_git_sha_override(self, monkeypatch):
        from repro.obs import report

        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        report.git_revision.cache_clear()
        try:
            assert run_metadata()["git_sha"] == "cafebabe"
        finally:
            report.git_revision.cache_clear()


class TestRunReport:
    def test_collect_and_write_round_trip(self, tmp_path):
        registry, tracer = _populated_state()
        report = RunReport.collect(
            registry, tracer, command="repro encode fir", seed=1
        )
        path = report.write(tmp_path / "RUN_report.json")
        data = load_run_report(path)
        assert data["schema_version"] == REPORT_SCHEMA_VERSION
        assert data["meta"]["run_id"] == tracer.run_id
        assert data["meta"]["command"] == "repro encode fir"
        assert data["metrics"]["codec.blocks_encoded"]["series"][0] == {
            "labels": {"workload": "fir"},
            "value": 3,
        }
        assert {s["name"] for s in data["trace"]["spans"]} == {
            "flow.run",
            "flow.encode",
        }
        assert validate_run_report(data) == []

    def test_extra_block_survives(self, tmp_path):
        registry, tracer = _populated_state()
        report = RunReport.collect(
            registry, tracer, extra={"workload": "fir"}
        )
        data = json.loads(
            (report.write(tmp_path / "r.json")).read_text()
        )
        assert data["extra"] == {"workload": "fir"}


class TestValidation:
    def test_rejects_non_object(self):
        assert validate_run_report([]) == ["report must be a JSON object"]

    def test_flags_missing_sections(self):
        problems = validate_run_report({"schema_version": 1})
        assert any("meta" in p for p in problems)
        assert any("metrics" in p for p in problems)
        assert any("trace" in p for p in problems)

    def test_flags_newer_schema(self):
        registry, tracer = _populated_state()
        data = RunReport.collect(registry, tracer).to_dict()
        data["schema_version"] = REPORT_SCHEMA_VERSION + 1
        assert any("newer" in p for p in validate_run_report(data))

    def test_flags_bad_metric_family(self):
        registry, tracer = _populated_state()
        data = RunReport.collect(registry, tracer).to_dict()
        data["metrics"]["bad"] = {"type": "timer", "series": [{}]}
        problems = validate_run_report(data)
        assert any("unknown type 'timer'" in p for p in problems)
        assert any("labels" in p for p in problems)

    @pytest.mark.parametrize("key", ["name", "duration_s", "depth"])
    def test_flags_malformed_span(self, key):
        registry, tracer = _populated_state()
        data = RunReport.collect(registry, tracer).to_dict()
        del data["trace"]["spans"][0][key]
        assert any(key in p for p in validate_run_report(data))


class TestMissingFamilies:
    def test_all_missing_on_empty_report(self):
        data = {"metrics": {}}
        assert missing_families(data) == list(EXPECTED_ENCODE_FAMILIES)

    def test_none_missing_when_present(self):
        data = {
            "metrics": {
                name: {"type": "counter", "series": []}
                for name in EXPECTED_ENCODE_FAMILIES
            }
        }
        assert missing_families(data) == []
