"""Hot-spot selection under Transformation Table capacity.

The paper applies the encoding "only for the major application loops"
and sizes the TT at 16 entries (Section 8).  An encoded basic block of
``m`` instructions consumes ``ceil((m-1)/(k-1))`` TT entries (one per
code block, one-bit overlap), and each encoded basic block needs a
BBIT entry.  The selector ranks loop blocks by fetch volume and packs
them greedily into the two budgets; blocks left out stay unencoded
(the paper's identity treatment for infrequent blocks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cfg.loops import NaturalLoop, blocks_in_any_loop, find_natural_loops
from repro.cfg.profile import BlockProfile
from repro.core.program_codec import tt_entries_required

#: Paper's evaluated TT size ("a transformation table containing up to
#: 16 entries", Section 8).
DEFAULT_TT_ENTRIES = 16

#: "The number of the BBIT entries ... typically ... a very small
#: number in the range of 10" (Section 7.2); we default to 16 so the
#: two tables are symmetric.
DEFAULT_BBIT_ENTRIES = 16


@dataclass
class SelectionPlan:
    """The outcome of hot-spot selection."""

    block_size: int
    tt_capacity: int
    bbit_capacity: int
    selected: list[int] = field(default_factory=list)  # block start addrs
    tt_entries_used: int = 0
    skipped_capacity: list[int] = field(default_factory=list)
    skipped_small: list[int] = field(default_factory=list)
    #: For blocks encoded only partially (long block vs a nearly-full
    #: TT): start address -> number of leading instructions encoded.
    #: The hardware's E/CT tail mechanism ends decoding after the
    #: prefix; the remaining instructions stay plain in memory.
    prefix_lengths: dict[int, int] = field(default_factory=dict)

    def covers(self, block_start: int) -> bool:
        return block_start in self.selected

    def encoded_length(self, block_start: int, full_length: int) -> int:
        """Instructions of a selected block that are actually encoded."""
        return self.prefix_lengths.get(block_start, full_length)


def select_hot_blocks(
    profile: BlockProfile,
    block_size: int,
    tt_capacity: int = DEFAULT_TT_ENTRIES,
    bbit_capacity: int = DEFAULT_BBIT_ENTRIES,
    loops: Sequence[NaturalLoop] | None = None,
    loops_only: bool = True,
    min_block_instructions: int = 2,
    min_entry_count: int = 1,
    allow_partial: bool = True,
) -> SelectionPlan:
    """Choose basic blocks to power-encode.

    Candidates are (by default) blocks inside natural loops; they are
    ranked by fetch volume and packed greedily into the TT and BBIT
    budgets.  Blocks shorter than ``min_block_instructions`` or
    entered fewer than ``min_entry_count`` times are skipped, matching
    the paper's "extremely low execution frequency or extremely few
    instructions ... left intact" guidance.
    """
    if loops is None:
        loops = find_natural_loops(profile.cfg)
    plan = SelectionPlan(
        block_size=block_size,
        tt_capacity=tt_capacity,
        bbit_capacity=bbit_capacity,
    )
    loop_blocks = blocks_in_any_loop(list(loops))
    candidates = [
        start
        for start in profile.hottest()
        if (not loops_only or start in loop_blocks)
    ]
    for start in candidates:
        block = profile.cfg.blocks[start]
        if (
            len(block) < min_block_instructions
            or profile.entry_counts.get(start, 0) < min_entry_count
            or profile.weight(start) == 0
        ):
            plan.skipped_small.append(start)
            continue
        if len(plan.selected) >= bbit_capacity:
            plan.skipped_capacity.append(start)
            continue
        cost = tt_entries_required(len(block), block_size)
        free = tt_capacity - plan.tt_entries_used
        if cost > free:
            # A long block against a nearly-full TT: encode a prefix
            # (the E/CT tail mechanism ends decoding there and the
            # remaining instructions stay plain), if worthwhile.
            prefix = (
                block_size + (free - 1) * (block_size - 1) if free else 0
            )
            if (
                not allow_partial
                or free == 0
                or prefix < max(min_block_instructions, block_size)
            ):
                plan.skipped_capacity.append(start)
                continue
            prefix = min(prefix, len(block))
            plan.prefix_lengths[start] = prefix
            cost = tt_entries_required(prefix, block_size)
        plan.selected.append(start)
        plan.tt_entries_used += cost
    plan.selected.sort()
    return plan
