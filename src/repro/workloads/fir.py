"""FIR filter (``fir``) — extended workload.

Not one of the paper's six Figure-6 benchmarks, but the archetypal
DSP kernel its introduction motivates ("hand-held and wireless
devices").  A ``taps``-tap direct-form FIR over ``samples`` inputs:

    y[n] = sum_k h[k] * x[n-k]
"""

from __future__ import annotations

from repro.workloads.common import (
    Workload,
    assert_close,
    format_doubles,
    pseudo_values,
    read_doubles,
)

DEFAULT_TAPS = 16
DEFAULT_SAMPLES = 192


def _reference(coeffs: list[float], signal: list[float]) -> list[float]:
    taps = len(coeffs)
    out = [0.0] * len(signal)
    for n in range(taps - 1, len(signal)):
        out[n] = sum(coeffs[k] * signal[n - k] for k in range(taps))
    return out


def build(taps: int = DEFAULT_TAPS, samples: int = DEFAULT_SAMPLES) -> Workload:
    """Build the fir workload."""
    if taps < 1 or samples < taps:
        raise ValueError("need taps >= 1 and samples >= taps")
    coeffs = [v / 4.0 for v in pseudo_values(taps, seed=12)]
    signal = pseudo_values(samples, seed=13)
    expected = _reference(coeffs, signal)

    source = f"""
# fir: {taps}-tap direct form over {samples} samples
        .data
H:
{format_doubles(coeffs)}
X:
{format_doubles(signal)}
Y:
        .space {8 * samples}
        .text
main:
        li    $s0, {samples}
        li    $s1, {taps}
        la    $s5, H
        la    $s6, X
        la    $s7, Y
        li    $t0, {taps - 1}   # n
nloop:
        mtc1  $zero, $f4        # acc
        move  $t1, $s5          # &H[0]
        sll   $t2, $t0, 3
        addu  $t2, $s6, $t2     # &X[n]
        li    $t3, 0            # k
kloop:
        l.d   $f6, 0($t1)
        l.d   $f8, 0($t2)
        mul.d $f10, $f6, $f8
        add.d $f4, $f4, $f10
        addiu $t1, $t1, 8
        addiu $t2, $t2, -8
        addiu $t3, $t3, 1
        bne   $t3, $s1, kloop
        sll   $t4, $t0, 3
        addu  $t4, $s7, $t4
        s.d   $f4, 0($t4)
        addiu $t0, $t0, 1
        bne   $t0, $s0, nloop
        li    $v0, 10
        syscall
"""

    def verify(cpu) -> None:
        measured = read_doubles(cpu, "Y", samples)
        assert_close(measured, expected, tolerance=1e-9, what="fir y")

    return Workload(
        name="fir",
        description=f"{taps}-tap FIR filter over {samples} samples (extended workload, not in the paper's Figure 6)",
        source=source,
        params={"taps": taps, "samples": samples},
        verify=verify,
    )
