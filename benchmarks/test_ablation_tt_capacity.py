"""Ablation C: Transformation Table capacity.

The paper fixes the TT at 16 entries ("well beyond the total number of
instructions typically encountered in embedded application loops").
This bench sweeps the capacity on a real benchmark trace and shows the
diminishing returns that justify a small table."""

from repro.pipeline.flow import EncodingFlow
from repro.sim.cpu import run_program
from repro.workloads.registry import build_workload

CAPACITIES = (1, 2, 4, 8, 16, 32, 64)


def _sweep(program, trace):
    return {
        capacity: EncodingFlow(block_size=5, tt_capacity=capacity).run(
            program, trace, "mmul"
        )
        for capacity in CAPACITIES
    }


def test_ablation_tt_capacity(benchmark, record_result):
    workload = build_workload("mmul", n=16)
    program = workload.assemble()
    cpu, trace = run_program(program)
    workload.verify(cpu)

    results = benchmark.pedantic(
        _sweep, args=(program, trace), rounds=1, iterations=1
    )

    reductions = [results[c].reduction_percent for c in CAPACITIES]
    # Monotone non-decreasing in capacity.
    assert reductions == sorted(reductions)
    # Diminishing returns: 16 entries capture nearly everything a 64-
    # entry table would (the paper's sizing argument).
    assert results[16].reduction_percent >= 0.95 * results[64].reduction_percent
    # A 1-entry table is nearly useless on a multi-block loop nest.
    assert results[1].reduction_percent < results[16].reduction_percent

    lines = ["Ablation C — TT capacity sweep, mmul (n=16), k=5", ""]
    lines.append("entries  reduction%  entries-used  blocks-encoded")
    for capacity in CAPACITIES:
        r = results[capacity]
        lines.append(
            f"{capacity:7d}  {r.reduction_percent:9.2f}  "
            f"{r.tt_entries_used:12d}  {len(r.selected_blocks):14d}"
        )
    lines.append("")
    lines.append(
        "conclusion: reductions saturate by 16 entries — the paper's "
        "table size"
    )
    record_result("ablation_tt_capacity", "\n".join(lines))
