"""Hardware cost: the Section 7.2 storage/coverage arithmetic.

Regenerates the block-size trade-off table the paper argues over: TT
and BBIT storage bits, per-line decode gates, and the number of loop
instructions a 16-entry TT covers at each block size."""

from repro.hw.cost import cost_sweep, estimate_cost


def test_hw_cost_model(benchmark, record_result):
    sweep = benchmark(cost_sweep, (2, 3, 4, 5, 6, 7))

    by_k = {cost.block_size: cost for cost in sweep}

    # Coverage grows linearly with block size at ~constant storage.
    coverage = [by_k[k].max_instructions for k in (4, 5, 6, 7)]
    assert coverage == sorted(coverage)
    storage_spread = max(c.total_storage_bits for c in sweep) - min(
        c.total_storage_bits for c in sweep
    )
    assert storage_spread <= 32  # only the CT field width moves

    # Paper sizing example: k=7, 16 entries -> on the order of 100
    # instructions (their "7 * 16 = 112"; 97 with overlap accounting).
    assert by_k[7].max_instructions == 97

    # The whole support is a few hundred bytes of SRAM + a small gate
    # bank per line.
    cost5 = estimate_cost(5)
    assert cost5.total_storage_bits < 4096
    assert cost5.decode_gates < 2000

    lines = [
        "Hardware cost model — 32-bit bus, 16-entry TT, 16-entry BBIT",
        "",
        f"{'k':>2s} {'TT bits':>8s} {'BBIT bits':>9s} {'gates':>6s} "
        f"{'max loop instrs':>15s}",
    ]
    for cost in sweep:
        lines.append(
            f"{cost.block_size:2d} {cost.tt_bits:8d} {cost.bbit_bits:9d} "
            f"{cost.decode_gates:6d} {cost.max_instructions:15d}"
        )
    lines += [
        "",
        "per-line decode: 8 two-input gates + 8:1 selector + history "
        "flop ('a single bit logic gate' on the critical path)",
        "conclusion: longer blocks stretch TT coverage at essentially "
        "flat storage — the paper's block-size trade-off",
    ]
    record_result("hw_cost_model", "\n".join(lines))
