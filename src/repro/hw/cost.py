"""Hardware cost model for the decode support (Section 7.2).

The paper's cost argument is structural: the overhead is "the size of
the TT and BBIT arrays" plus, per bus line, the transformation logic —
eight two-input gates and an 8:1 selector driven by three control
bits (only one gate's output is ever used per block: "a frugal
functional transformation, reliant on a single bit logic gate").
This module turns those structures into storage-bit and gate-count
estimates, parameterised the same way the paper trades off block size
against table utilisation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Gate-equivalents (NAND2-normalised) for the per-line decode logic:
#: the 8 candidate two-input functions plus an 8:1 mux (~7 x 2:1 muxes,
#: ~3 gate equivalents each) plus the history flip-flop (~6).
GATES_PER_FUNCTION_BANK = 8
GATES_PER_MUX8 = 21
GATES_PER_FLOP = 6

#: SRAM bit cost expressed in gate equivalents (6T cell ~ 1.5 NAND2).
GATE_EQUIV_PER_SRAM_BIT = 1.5


@dataclass(frozen=True)
class HardwareCost:
    """Storage and logic cost of one decoder configuration."""

    block_size: int
    bus_width: int
    tt_entries: int
    bbit_entries: int
    tt_bits: int
    bbit_bits: int
    decode_gates: int

    @property
    def total_storage_bits(self) -> int:
        return self.tt_bits + self.bbit_bits

    @property
    def gate_equivalents(self) -> float:
        """Single-figure area proxy: logic + SRAM in NAND2 units."""
        return self.decode_gates + GATE_EQUIV_PER_SRAM_BIT * self.total_storage_bits

    @property
    def max_instructions(self) -> int:
        """Instructions coverable by a full TT (the paper's 7 * 16 =
        112 sizing argument, adjusted for the one-bit overlap: the
        first entry of a block covers k, later entries k - 1)."""
        return self.block_size + (self.tt_entries - 1) * (self.block_size - 1)


def ct_field_bits(block_size: int) -> int:
    """Bits for the CT counter: counts up to block_size instructions."""
    return max(1, math.ceil(math.log2(block_size + 1)))


def estimate_cost(
    block_size: int,
    bus_width: int = 32,
    tt_entries: int = 16,
    bbit_entries: int = 16,
    pc_tag_bits: int = 30,
) -> HardwareCost:
    """Cost of a decoder with the given table geometry."""
    if block_size < 2:
        raise ValueError("block size must be >= 2")
    selector_bits = 3 * bus_width
    tt_bits = tt_entries * (selector_bits + 1 + ct_field_bits(block_size))
    tt_index_bits = max(1, math.ceil(math.log2(tt_entries)))
    bbit_bits = bbit_entries * (pc_tag_bits + tt_index_bits)
    decode_gates = bus_width * (
        GATES_PER_FUNCTION_BANK + GATES_PER_MUX8 + GATES_PER_FLOP
    )
    return HardwareCost(
        block_size=block_size,
        bus_width=bus_width,
        tt_entries=tt_entries,
        bbit_entries=bbit_entries,
        tt_bits=tt_bits,
        bbit_bits=bbit_bits,
        decode_gates=decode_gates,
    )


def cost_sweep(
    block_sizes=(4, 5, 6, 7),
    tt_entries: int = 16,
    bus_width: int = 32,
) -> list[HardwareCost]:
    """The paper's block-size/area trade-off as a table: longer blocks
    cover more instructions per TT entry at slightly more CT bits."""
    return [
        estimate_cost(k, bus_width=bus_width, tt_entries=tt_entries)
        for k in block_sizes
    ]
