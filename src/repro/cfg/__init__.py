"""Control-flow analysis substrate.

The paper's flow analyses the application code, pinpoints the major
loops, and applies the power encoding per basic block (Sections 4, 6,
7).  This subpackage supplies the pieces: basic-block construction
from an assembled program, a CFG, dominator-based natural-loop
detection, trace-driven profiling, and the TT-capacity-aware hot-spot
selector.
"""

from repro.cfg.basic_blocks import BasicBlock, build_basic_blocks
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.dominators import immediate_dominators
from repro.cfg.loops import NaturalLoop, find_natural_loops
from repro.cfg.profile import BlockProfile, profile_trace
from repro.cfg.hotspot import SelectionPlan, select_hot_blocks

__all__ = [
    "BasicBlock",
    "build_basic_blocks",
    "ControlFlowGraph",
    "immediate_dominators",
    "NaturalLoop",
    "find_natural_loops",
    "BlockProfile",
    "profile_trace",
    "SelectionPlan",
    "select_hot_blocks",
]
