"""Tests for bit-stream utilities and transition counting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitstream import (
    columns_to_words,
    count_transitions,
    from_paper_string,
    hamming,
    int_to_stream,
    per_line_word_transitions,
    stream_to_int,
    to_paper_string,
    total_word_transitions,
    validate_bits,
    word_column,
)

bits = st.lists(st.integers(min_value=0, max_value=1), min_size=0, max_size=64)
words32 = st.lists(
    st.integers(min_value=0, max_value=(1 << 32) - 1), min_size=0, max_size=40
)


class TestTransitions:
    def test_empty_and_singleton(self):
        assert count_transitions([]) == 0
        assert count_transitions([1]) == 0

    def test_alternating(self):
        assert count_transitions([0, 1, 0, 1]) == 3

    def test_constant(self):
        assert count_transitions([1] * 10) == 0

    def test_paper_figure1_example(self):
        # Figure 1: the leftmost column 1010 has two transitions fewer
        # after being stored as 1000.
        original = from_paper_string("1010")
        stored = from_paper_string("1000")
        assert count_transitions(original) - count_transitions(stored) == 2

    @given(bits)
    def test_reversal_invariance(self, stream):
        assert count_transitions(stream) == count_transitions(stream[::-1])

    @given(bits)
    def test_complement_invariance(self, stream):
        assert count_transitions(stream) == count_transitions(
            [1 - b for b in stream]
        )


class TestValidation:
    def test_validate_accepts_bits(self):
        assert validate_bits((0, 1, 1)) == [0, 1, 1]

    def test_validate_rejects_non_bits(self):
        with pytest.raises(ValueError):
            validate_bits([0, 2])
        with pytest.raises(ValueError):
            validate_bits([0.5])


class TestPaperStrings:
    def test_paper_string_reverses_time(self):
        assert to_paper_string([0, 1, 0, 0]) == "0010"
        assert from_paper_string("0010") == [0, 1, 0, 0]

    @given(bits.filter(lambda s: len(s) > 0))
    def test_roundtrip(self, stream):
        assert from_paper_string(to_paper_string(stream)) == stream

    def test_bad_strings_rejected(self):
        with pytest.raises(ValueError):
            from_paper_string("")
        with pytest.raises(ValueError):
            from_paper_string("01a")


class TestIntConversion:
    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_roundtrip(self, value):
        assert stream_to_int(int_to_stream(value, 16)) == value

    def test_width_checks(self):
        with pytest.raises(ValueError):
            int_to_stream(4, 2)
        with pytest.raises(ValueError):
            int_to_stream(1, 0)


class TestWordColumns:
    def test_column_extraction(self):
        words = [0b01, 0b10, 0b11]
        assert word_column(words, 0) == [1, 0, 1]
        assert word_column(words, 1) == [0, 1, 1]

    @given(words32)
    def test_columns_roundtrip(self, words):
        columns = [word_column(words, b) for b in range(32)]
        assert columns_to_words(columns) == words or not words

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            columns_to_words([[0, 1], [0]])


class TestWordTransitions:
    def test_hamming(self):
        assert hamming(0b1010, 0b0101) == 4
        assert hamming(7, 7) == 0

    def test_total_matches_per_line(self):
        words = [0xDEADBEEF, 0x0, 0xFFFFFFFF, 0x12345678]
        assert total_word_transitions(words) == sum(
            per_line_word_transitions(words)
        )

    @given(words32)
    def test_total_equals_column_sums(self, words):
        expected = sum(
            count_transitions(word_column(words, b)) for b in range(32)
        )
        assert total_word_transitions(words) == expected
