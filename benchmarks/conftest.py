"""Shared helpers for the reproduction benchmarks.

Every bench regenerates one of the paper's tables or figures, prints
it (run with ``-s`` to see the output live) and records it under
``benchmarks/results/`` so EXPERIMENTS.md can cite the artefacts.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_result():
    """Write a reproduced table to benchmarks/results/<name>.txt."""

    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n--- {name} ---")
        print(text)

    return _record


@pytest.fixture(scope="session")
def figure6_results():
    """Run the full Figure 6 sweep once per session and share it
    between the Fig 6, Fig 7 and baseline-comparison benches.

    Data sizes are scaled relative to the paper (documented in
    DESIGN.md); shapes, not absolute counts, are the target.
    """
    from repro.pipeline.flow import EncodingFlow
    from repro.sim.cpu import run_program
    from repro.workloads.registry import BENCHMARK_ORDER, build_workload

    sizes = {
        "mmul": {"n": 20},
        "sor": {"n": 24, "sweeps": 5},
        "ej": {"n": 24, "sweeps": 5},
        "fft": {"n": 128},
        "tri": {"n": 96, "sweeps": 12},
        "lu": {"n": 24},
    }
    results = {}
    traces = {}
    for name in BENCHMARK_ORDER:
        workload = build_workload(name, **sizes[name])
        program = workload.assemble()
        cpu, trace = run_program(program)
        if workload.verify is not None:
            workload.verify(cpu)
        traces[name] = (program, trace)
        results[name] = {
            k: EncodingFlow(block_size=k).run(program, trace, name)
            for k in (4, 5, 6, 7)
        }
    return results, traces
