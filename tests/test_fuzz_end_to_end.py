"""End-to-end fuzzing: random branchy programs through the full stack.

For each seed: generate a random control-flow-heavy program (bounded
by a fuel counter so it always terminates), simulate it, run the
encoding flow at several block sizes, and check the system-level
invariants:

* the behavioural hardware decode restores every fetched instruction;
* encoded traces never blow past the baseline (the identity fallback
  bounds intra-block cost at zero; only unoptimised block-boundary
  transitions can move, by a bounded amount);
* the CFG/profile bookkeeping is self-consistent with the trace.
"""

import pytest

from tests.strategies import generate_program

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.profile import profile_trace
from repro.isa.assembler import assemble
from repro.pipeline.flow import EncodingFlow
from repro.sim.cpu import run_program


@pytest.mark.parametrize("seed", range(12))
def test_fuzz_random_programs(seed):
    source = generate_program(seed)
    program = assemble(source)
    cpu, trace = run_program(program, max_steps=500_000)
    assert not cpu.running  # exited via syscall, not the step guard
    assert len(trace) > 50

    cfg = ControlFlowGraph.build(program)
    profile = profile_trace(cfg, trace)
    assert profile.total_fetches == len(trace)
    assert sum(profile.fetch_counts.values()) == len(trace)

    for block_size in (4, 5, 7):
        flow = EncodingFlow(block_size=block_size, loops_only=False)
        result = flow.run(program, trace, f"fuzz{seed}")
        # Hardware decode must be bit-exact whenever anything was
        # encoded (flow.run raises otherwise; assert the flag too).
        if result.selected_blocks:
            assert result.decode_verified
        # Intra-block encoding never loses; only unoptimised block-
        # boundary transitions can move, bounded by bus-width per
        # boundary crossing — allow a small fraction of slack.
        assert (
            result.encoded_transitions
            <= result.baseline_transitions * 1.10 + 64
        ), (seed, block_size)


@pytest.mark.parametrize("seed", [0, 3, 7])
def test_fuzz_reductions_mostly_positive(seed):
    """On branchy but loop-heavy random code the encoding still wins
    overall (boundary losses stay second-order)."""
    source = generate_program(seed, num_blocks=4, fuel=600)
    program = assemble(source)
    cpu, trace = run_program(program, max_steps=500_000)
    result = EncodingFlow(block_size=4, loops_only=False).run(
        program, trace, f"fuzz{seed}"
    )
    assert result.reduction_percent > 0.0
