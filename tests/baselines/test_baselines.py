"""Tests for the related-work baseline encoders."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bus_invert import BusInvertCoder, bus_invert_transitions
from repro.baselines.frequency import FrequencyRemapper
from repro.baselines.gray import gray_decode, gray_encode, gray_transitions
from repro.baselines.t0 import T0Coder, raw_address_transitions, t0_transitions

words32 = st.lists(
    st.integers(min_value=0, max_value=(1 << 32) - 1), min_size=0, max_size=60
)


class TestBusInvert:
    def test_inversion_triggers_above_half(self):
        coder = BusInvertCoder(width=8)
        coder.reset(initial_word=0x00)
        driven, invert = coder.send(0xFF)  # distance 8 > 4 -> invert
        assert invert == 1
        assert driven == 0x00
        # 0 bus transitions + 1 invert-line transition
        assert coder.transitions == 1

    def test_no_inversion_below_half(self):
        coder = BusInvertCoder(width=8)
        coder.reset(initial_word=0x00)
        driven, invert = coder.send(0x03)
        assert invert == 0 and driven == 0x03
        assert coder.transitions == 2

    def test_decode_restores(self):
        coder = BusInvertCoder(width=8)
        rng = random.Random(1)
        words = [rng.getrandbits(8) for _ in range(100)]
        for word in words:
            driven, invert = coder.send(word)
            assert BusInvertCoder.decode(driven, invert, width=8) == word

    @given(words32)
    @settings(max_examples=100)
    def test_worst_case_bound(self, words):
        # Per transfer: at most width/2 line transitions + 1 invert.
        coder = BusInvertCoder(width=32)
        if not words:
            return
        coder.reset(initial_word=words[0])
        before = 0
        for word in words[1:]:
            coder.send(word)
            assert coder.transitions - before <= 17
            before = coder.transitions

    @given(words32)
    @settings(max_examples=100)
    def test_never_worse_than_raw_plus_signal(self, words):
        raw = sum(
            (a ^ b).bit_count() for a, b in zip(words, words[1:])
        )
        encoded = bus_invert_transitions(words)
        # The invert line can add at most one transition per transfer.
        assert encoded <= raw + max(0, len(words) - 1)

    def test_empty(self):
        assert bus_invert_transitions([]) == 0


class TestT0:
    def test_sequential_stream_freezes_bus(self):
        addresses = [0x400000 + 4 * i for i in range(100)]
        # Only the initial rise of the increment line toggles; the
        # address lines never move.
        assert t0_transitions(addresses) <= 1

    def test_branch_costs_transitions(self):
        addresses = [0x400000, 0x400004, 0x400100]
        assert t0_transitions(addresses) > 0

    def test_t0_beats_raw_on_sequential(self):
        addresses = [0x400000 + 4 * i for i in range(64)]
        assert t0_transitions(addresses) < raw_address_transitions(addresses)

    def test_frozen_counter(self):
        coder = T0Coder()
        coder.reset(0x100)
        coder.send(0x104)
        coder.send(0x108)
        coder.send(0x200)
        assert coder.frozen_transfers == 2

    def test_empty(self):
        assert t0_transitions([]) == 0


class TestGray:
    @given(st.integers(min_value=0, max_value=(1 << 30) - 1))
    def test_roundtrip(self, value):
        assert gray_decode(gray_encode(value)) == value

    @given(st.integers(min_value=0, max_value=(1 << 30) - 2))
    def test_adjacent_differ_in_one_bit(self, value):
        a, b = gray_encode(value), gray_encode(value + 1)
        assert (a ^ b).bit_count() == 1

    def test_sequential_stream_one_transition_per_fetch(self):
        addresses = [4 * i for i in range(100)]
        assert gray_transitions(addresses) == 99


class TestFrequencyRemapper:
    def test_fit_assigns_small_codes_to_frequent_words(self):
        words = [0xAAAAAAAA] * 100 + [0x55555555] * 50 + [0x12345678] * 10
        remapper = FrequencyRemapper().fit(words)
        code_a, escape_a = remapper.encode(0xAAAAAAAA)
        assert escape_a == 0
        assert code_a == 0  # most frequent gets the all-zero code

    def test_unknown_word_escapes(self):
        remapper = FrequencyRemapper().fit([1, 2, 3])
        word, escape = remapper.encode(0xDEAD)
        assert word == 0xDEAD and escape == 1

    def test_transitions_reduced_on_skewed_stream(self):
        rng = random.Random(2)
        hot = [rng.getrandbits(32) for _ in range(4)]
        words = [hot[rng.randrange(4)] for _ in range(2000)]
        remapper = FrequencyRemapper().fit(words)
        raw = sum((a ^ b).bit_count() for a, b in zip(words, words[1:]))
        assert remapper.transitions(words) < raw

    def test_dictionary_cost_reported(self):
        remapper = FrequencyRemapper(max_entries=8).fit(list(range(20)))
        assert remapper.dictionary_bits == 8 * 64

    def test_capacity_respected(self):
        remapper = FrequencyRemapper(max_entries=4).fit(list(range(100)))
        assert len(remapper.mapping) == 4
