"""Tests for the six benchmarks: each runs (at reduced size) and is
checked against an independent Python reference by its own verify
callback; these tests also pin structural expectations (loops exist,
traces are loop-dominated)."""

import pytest

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.loops import find_natural_loops
from repro.cfg.profile import profile_trace
from repro.sim.cpu import run_program
from repro.workloads.registry import (
    BENCHMARK_ORDER,
    WORKLOAD_BUILDERS,
    build_workload,
)

#: Reduced sizes so the whole file runs in a few seconds.
SMALL = {
    "mmul": {"n": 8},
    "sor": {"n": 10, "sweeps": 3},
    "ej": {"n": 10, "sweeps": 3},
    "fft": {"n": 32},
    "tri": {"n": 24, "sweeps": 3},
    "lu": {"n": 10},
}


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
class TestCorrectness:
    def test_runs_and_verifies(self, name):
        workload = build_workload(name, **SMALL[name])
        cpu, trace = workload.run()
        assert cpu.steps == len(trace) > 0

    def test_has_natural_loops(self, name):
        workload = build_workload(name, **SMALL[name])
        cfg = ControlFlowGraph.build(workload.assemble())
        assert find_natural_loops(cfg), f"{name} must contain loops"

    def test_trace_is_loop_dominated(self, name):
        workload = build_workload(name, **SMALL[name])
        program = workload.assemble()
        cpu, trace = run_program(program)
        cfg = ControlFlowGraph.build(program)
        profile = profile_trace(cfg, trace)
        loops = find_natural_loops(cfg)
        loop_blocks = set()
        for loop in loops:
            loop_blocks |= loop.body
        # Section 6: hot loops carry most of the fetch traffic.
        assert profile.coverage_of(sorted(loop_blocks)) > 0.8


class TestRegistry:
    def test_all_six_benchmarks_present(self):
        assert tuple(BENCHMARK_ORDER) == ("mmul", "sor", "ej", "fft", "tri", "lu")
        for name in BENCHMARK_ORDER:
            assert callable(WORKLOAD_BUILDERS[name])

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            build_workload("quicksort")

    def test_descriptions_mention_paper_scale(self):
        for name in BENCHMARK_ORDER:
            workload = build_workload(name, **SMALL[name])
            assert "paper" in workload.description


class TestParameterValidation:
    def test_mmul_rejects_bad_size(self):
        with pytest.raises(ValueError):
            build_workload("mmul", n=0)

    def test_fft_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            build_workload("fft", n=24)

    def test_sor_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            build_workload("sor", n=2)

    def test_lu_rejects_tiny_matrix(self):
        with pytest.raises(ValueError):
            build_workload("lu", n=1)

    def test_tri_rejects_tiny_system(self):
        with pytest.raises(ValueError):
            build_workload("tri", n=1)


class TestScaling:
    def test_mmul_work_grows_cubically(self):
        small = build_workload("mmul", n=4)
        large = build_workload("mmul", n=8)
        _, trace_small = small.run()
        _, trace_large = large.run()
        ratio = len(trace_large) / len(trace_small)
        assert 4.0 < ratio < 10.0  # ~8x for 2x size

    def test_fft_work_grows_n_log_n(self):
        small = build_workload("fft", n=16)
        large = build_workload("fft", n=64)
        _, trace_small = small.run()
        _, trace_large = large.run()
        ratio = len(trace_large) / len(trace_small)
        assert 4.0 < ratio < 8.0  # 64*6 / 16*4 = 6x
