"""Fetch-trace persistence.

Traces from multi-million-instruction runs are expensive to recreate;
this module stores them compactly (the SimpleScalar world solved the
same problem with EIO trace files).  Format: a small JSON header plus
a zlib-compressed stream of 4-byte little-endian *word deltas* —
instruction fetches are mostly sequential (+1 word), so the delta
stream compresses extremely well.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Sequence

MAGIC = b"RPTR"
FORMAT_VERSION = 1


@dataclass(frozen=True)
class TraceHeader:
    """Metadata stored alongside a trace."""

    name: str
    text_base: int
    length: int

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": FORMAT_VERSION,
                "name": self.name,
                "text_base": self.text_base,
                "length": self.length,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "TraceHeader":
        data = json.loads(text)
        if data.get("version") != FORMAT_VERSION:
            raise ValueError(f"unsupported trace version {data.get('version')!r}")
        return cls(
            name=data["name"],
            text_base=data["text_base"],
            length=data["length"],
        )


def dump_trace(
    addresses: Sequence[int],
    name: str = "trace",
    text_base: int = 0,
    level: int = 6,
) -> bytes:
    """Serialise a fetch trace to bytes."""
    header = TraceHeader(name=name, text_base=text_base, length=len(addresses))
    deltas = bytearray()
    previous = 0
    for address in addresses:
        if address % 4:
            raise ValueError(f"unaligned fetch address {address:#x}")
        delta = (address - previous) >> 2
        deltas += struct.pack("<i", delta)
        previous = address
    payload = zlib.compress(bytes(deltas), level)
    header_bytes = header.to_json().encode()
    return (
        MAGIC
        + struct.pack("<I", len(header_bytes))
        + header_bytes
        + payload
    )


def load_trace(blob: bytes) -> tuple[TraceHeader, list[int]]:
    """Deserialise a trace produced by :func:`dump_trace`."""
    if blob[:4] != MAGIC:
        raise ValueError("not a repro trace file (bad magic)")
    (header_len,) = struct.unpack_from("<I", blob, 4)
    header = TraceHeader.from_json(blob[8 : 8 + header_len].decode())
    deltas = zlib.decompress(blob[8 + header_len :])
    if len(deltas) != 4 * header.length:
        raise ValueError(
            f"trace corrupt: expected {header.length} entries, "
            f"got {len(deltas) // 4}"
        )
    addresses: list[int] = []
    previous = 0
    for (delta,) in struct.iter_unpack("<i", deltas):
        previous += delta << 2
        addresses.append(previous)
    return header, addresses


def save_trace_file(
    path, addresses: Sequence[int], name: str = "trace", text_base: int = 0
) -> int:
    """Write a trace to disk; returns the byte size on disk."""
    blob = dump_trace(addresses, name=name, text_base=text_base)
    with open(path, "wb") as handle:
        handle.write(blob)
    return len(blob)


def load_trace_file(path) -> tuple[TraceHeader, list[int]]:
    """Read a trace from disk."""
    with open(path, "rb") as handle:
        return load_trace(handle.read())
