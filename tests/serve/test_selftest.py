"""The chaos harness holds itself to its three standards."""

import json

import pytest

from repro.serve.selftest import (
    SelftestOptions,
    expected_outcome,
    generate_requests,
    run_selftest,
    verify_results,
)

#: Small enough for unit tests, big enough to hit every menu point,
#: kind, and chaos model at the default rates.
SMALL = dict(tenants=3, jobs_per_tenant=8, workers=2, queue_depth=8)


class TestGeneration:
    def test_batch_is_a_pure_function_of_the_options(self):
        a = generate_requests(SelftestOptions(seed=11, **SMALL))
        b = generate_requests(SelftestOptions(seed=11, **SMALL))
        assert a == b

    def test_seed_changes_the_chaos_plan(self):
        a = generate_requests(SelftestOptions(seed=11, **SMALL))
        b = generate_requests(SelftestOptions(seed=12, **SMALL))
        assert a != b

    def test_batch_key_ignores_execution_knobs(self):
        a = SelftestOptions(seed=1, **SMALL)
        b = SelftestOptions(seed=1, **{**SMALL, "workers": 7})
        assert a.batch_key() == b.batch_key()
        assert a.batch_key() != SelftestOptions(seed=2, **SMALL).batch_key()

    def test_expected_outcomes_cover_the_taxonomy(self):
        requests = generate_requests(
            SelftestOptions(seed=0, tenants=8, jobs_per_tenant=25)
        )
        expected = {expected_outcome(r) for r in requests}
        # At the default rates a full-size batch meets every model;
        # a killed worker's job must still be expected to end ok.
        assert expected == {"ok", "malformed", "deadline_exceeded"}
        assert any(r.get("chaos") == "kill" for r in requests)


class TestHarness:
    def test_chaos_run_has_zero_wrong_results(self, tmp_path):
        report_path = tmp_path / "SERVE_report.json"
        bench_path = tmp_path / "BENCH_serve.json"
        options = SelftestOptions(
            seed=5,
            report_path=str(report_path),
            bench_path=str(bench_path),
            **SMALL,
        )
        report, problems = run_selftest(options)
        assert problems == []
        assert report["summary"]["jobs"] == 3 * 8
        outcomes = report["summary"]["outcomes"]
        assert set(outcomes) <= {"ok", "malformed", "deadline_exceeded"}
        written = json.loads(report_path.read_text())
        assert written["summary"] == report["summary"]
        bench = json.loads(bench_path.read_text())
        assert bench["schema"] == "repro.serve.bench/2"
        # Every v1 field survives unchanged under the v2 schema...
        assert bench["jobs"] == 24
        assert bench["latency_ms"]["count"] > 0
        assert bench["latency_ms"]["p99"] >= bench["latency_ms"]["p50"]
        # ...and v2 appends the rolling-window / SLO / flight views.
        assert bench["windows"]["1m"]["jobs"] > 0
        assert bench["windows"]["1m"]["latency"]["p99_ms"] is not None
        assert "policy" in bench["slo"]
        for verdict in bench["slo"]["tenants"].values():
            assert verdict["status"] in ("idle", "ok", "warn", "breach")
        assert bench["flight"]["events_recorded"] > 0

    def test_tcp_transport_reaches_the_same_results(self):
        seed = 9
        inproc, problems_a = run_selftest(
            SelftestOptions(seed=seed, deterministic=True, **SMALL)
        )
        tcp, problems_b = run_selftest(
            SelftestOptions(
                seed=seed, deterministic=True, transport="tcp", **SMALL
            )
        )
        assert problems_a == problems_b == []
        # Transport is not allowed to change results, only plumbing.
        assert inproc["jobs"] == tcp["jobs"]

    def test_deterministic_report_is_seed_stable(self):
        options = SelftestOptions(seed=3, deterministic=True, **SMALL)
        first, _ = run_selftest(options)
        second, _ = run_selftest(options)
        assert "ops" not in first  # timing detail stays out
        assert first == second


class TestVerifier:
    @pytest.fixture(scope="class")
    def clean_pairs(self):
        options = SelftestOptions(seed=5, chaos=(), **SMALL)
        requests = generate_requests(options)
        report, problems = run_selftest(options)
        assert problems == []
        by_id = {(j["tenant"], j["job_id"]): j for j in report["jobs"]}
        results = [by_id[(r["tenant"], r["job_id"])] for r in requests]
        return requests, results

    def test_catches_a_tampered_payload(self, clean_pairs):
        requests, results = clean_pairs
        tampered = [dict(r) for r in results]
        victim = next(
            t for t in tampered if t["outcome"] == "ok" and t["payload"]
        )
        victim["payload"] = {**victim["payload"], "bundle_digest": "0" * 64}
        problems = verify_results(requests, tampered)
        assert len(problems) == 1
        assert "bundle_digest" in problems[0]

    def test_catches_a_taxonomy_violation(self, clean_pairs):
        requests, results = clean_pairs
        tampered = [dict(r) for r in results]
        tampered[0]["outcome"] = "error"
        problems = verify_results(requests, tampered)
        assert any("chaos predicts 'ok'" in p for p in problems)

    def test_passes_the_clean_run(self, clean_pairs):
        requests, results = clean_pairs
        assert verify_results(requests, results) == []
