"""Seeded input generators for the differential verification campaign.

Every generator is a pure function of a :class:`random.Random` handed
in by the caller, so a case is replayable from its seed string alone:
``random.Random(f"{seed}:{kind}:{case_id}")`` regenerates the exact
input that diverged.  The same functions back ``tests/strategies.py``
(the shared test-data module), so the test suite and the ``repro
verify`` campaign draw from one input distribution.

Three input families (the tentpole's generator axes):

* **bit streams** with tunable bias — the Section-6 stream codec's
  input space, where bias sweeps exercise different codebook regions
  (an all-zeros stream never leaves the identity entry; a 50% stream
  touches most of them);
* **synthetic basic blocks / programs over the ISA bus width** —
  lists of 32-bit instruction words, the program codec's input space;
* **deployments** — encoded blocks installed into real TT/BBIT
  tables (with SEC-DED armed), the fetch decoder's input space,
  including seeded table-corruption states.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.program_codec import (
    BlockEncoding,
    encode_basic_block,
    tt_entries_required,
)
from repro.hw.bbit import BasicBlockIdentificationTable, BBITEntry
from repro.hw.tt import TransformationTable


def biased_stream(rng: random.Random, length: int, bias: float = 0.5) -> list[int]:
    """A bit stream where each position is 1 with probability ``bias``."""
    if not 0.0 <= bias <= 1.0:
        raise ValueError(f"bias must be in [0, 1], got {bias}")
    return [1 if rng.random() < bias else 0 for _ in range(length)]


def burst_stream(rng: random.Random, length: int, flip: float = 0.1) -> list[int]:
    """A run-structured stream: each bit repeats the previous one
    except with probability ``flip`` — long runs stress the chained
    overlap coupling rather than per-bit noise."""
    bits: list[int] = []
    current = rng.randint(0, 1)
    for _ in range(length):
        if rng.random() < flip:
            current ^= 1
        bits.append(current)
    return bits


def block_words(
    rng: random.Random, count: int, width: int = 32, sparse: float | None = None
) -> list[int]:
    """``count`` instruction-bus words.  With ``sparse`` set, each bit
    is 1 with that probability (real instruction streams are far from
    uniform); otherwise words are uniform over ``width`` bits."""
    if sparse is None:
        return [rng.getrandbits(width) for _ in range(count)]
    words = []
    for _ in range(count):
        word = 0
        for bit in range(width):
            if rng.random() < sparse:
                word |= 1 << bit
        words.append(word)
    return words


def hot_word_stream(
    rng: random.Random,
    length: int,
    alphabet: int = 6,
    noise: float = 0.15,
    width: int = 32,
) -> list[int]:
    """An instruction-fetch-like word stream: draws mostly from a
    small hot alphabet (loop bodies revisit the same words) with
    ``noise``-probability uniform excursions.  This is the encoder
    zoo's input space — frequency/memoryless backends key off the
    alphabet skew, bus-invert/low-weight off the toggle structure."""
    hot = [rng.getrandbits(width) for _ in range(max(1, alphabet))]
    words: list[int] = []
    for _ in range(length):
        if rng.random() < noise:
            words.append(rng.getrandbits(width))
        else:
            words.append(rng.choice(hot))
    return words


def word_blocks(
    rng: random.Random,
    num_blocks: int,
    min_words: int = 2,
    max_words: int = 24,
    width: int = 32,
) -> list[list[int]]:
    """Independent basic blocks of seeded instruction words."""
    return [
        block_words(rng, rng.randint(min_words, max_words), width)
        for _ in range(num_blocks)
    ]


@dataclass
class Deployment:
    """Encoded basic blocks installed into live hardware tables.

    The ground truth (`blocks`: pc-ordered original word lists) rides
    along so every decode path can be differentially checked against
    it; ``golden_lookup`` serves degraded-mode fetches.
    """

    block_size: int
    tt: TransformationTable
    bbit: BasicBlockIdentificationTable
    image: dict[int, int]
    bases: list[int]
    blocks: list[list[int]] = field(default_factory=list)
    encodings: list[BlockEncoding] = field(default_factory=list)

    @property
    def encoded_region(self) -> set[int]:
        region: set[int] = set()
        for base, words in zip(self.bases, self.blocks):
            region.update(base + 4 * i for i in range(len(words)))
        return region

    def golden_lookup(self, pc: int) -> int:
        for base, words in zip(self.bases, self.blocks):
            index = (pc - base) >> 2
            if 0 <= index < len(words):
                return words[index]
        raise KeyError(f"pc {pc:#010x} outside every deployed block")

    def golden_words(self, which: int) -> list[int]:
        return list(self.blocks[which])

    def stored_words(self, which: int) -> list[int]:
        return list(self.encodings[which].encoded_words)

    def trace_for(self, which: int) -> list[int]:
        base = self.bases[which]
        return [base + 4 * i for i in range(len(self.blocks[which]))]


def make_deployment(
    blocks: list[list[int]],
    block_size: int,
    parity: bool = True,
    base: int = 0x400000,
    stride: int = 0x1000,
) -> Deployment:
    """Encode ``blocks`` and install them into fresh TT/BBIT tables.

    Capacity is computed from the blocks themselves (the exact
    ``tt_entries_required`` sum), so no configuration can silently
    run the table out of entries mid-install — the failure mode
    behind the PR 3 TT-capacity flake.
    """
    tt_needed = sum(
        tt_entries_required(len(words), block_size) for words in blocks
    )
    tt = TransformationTable(capacity=max(1, tt_needed), parity=parity)
    bbit = BasicBlockIdentificationTable(
        capacity=max(1, len(blocks)), parity=parity
    )
    image: dict[int, int] = {}
    bases: list[int] = []
    encodings: list[BlockEncoding] = []
    for i, words in enumerate(blocks):
        block_base = base + stride * i
        encoding = encode_basic_block(words, block_size)
        index = tt.allocate(encoding)
        bbit.install(
            BBITEntry(
                pc=block_base, tt_index=index, num_instructions=len(words)
            )
        )
        for offset, word in enumerate(encoding.encoded_words):
            image[block_base + 4 * offset] = word
        bases.append(block_base)
        encodings.append(encoding)
    return Deployment(
        block_size=block_size,
        tt=tt,
        bbit=bbit,
        image=image,
        bases=bases,
        blocks=[list(words) for words in blocks],
        encodings=encodings,
    )


def random_deployment(
    rng: random.Random,
    block_size: int,
    num_blocks: int = 3,
    min_words: int = 2,
    max_words: int = 18,
    parity: bool = True,
) -> Deployment:
    """A seeded multi-block deployment (tables armed with SEC-DED)."""
    return make_deployment(
        word_blocks(rng, num_blocks, min_words, max_words),
        block_size,
        parity=parity,
    )
