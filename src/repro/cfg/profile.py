"""Trace-driven execution profiling.

Turns a fetch trace into per-block execution and fetch-volume counts —
the information the paper's flow uses to pinpoint "the major
application loops, which contribute most of the program execution
time and constitute a significantly small fraction from the total
program code" (Section 6).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.cfg.graph import ControlFlowGraph


@dataclass
class BlockProfile:
    """Per-basic-block dynamic statistics."""

    cfg: ControlFlowGraph
    entry_counts: dict[int, int]  # times each block was entered
    fetch_counts: dict[int, int]  # instruction fetches inside each block
    total_fetches: int

    def weight(self, block_start: int) -> int:
        """Fetch volume of a block (its share of bus traffic)."""
        return self.fetch_counts.get(block_start, 0)

    def hottest(self, limit: int | None = None) -> list[int]:
        """Block addresses by descending fetch volume."""
        ranked = sorted(
            self.fetch_counts, key=self.fetch_counts.get, reverse=True
        )
        return ranked[:limit] if limit is not None else ranked

    def coverage_of(self, block_starts: Sequence[int]) -> float:
        """Fraction of all fetches that fall inside the given blocks."""
        if self.total_fetches == 0:
            return 0.0
        covered = sum(self.fetch_counts.get(b, 0) for b in block_starts)
        return covered / self.total_fetches

    def loop_weight(self, loop) -> int:
        """Total fetch volume of a loop body."""
        return sum(self.fetch_counts.get(b, 0) for b in loop.body)


def profile_trace(
    cfg: ControlFlowGraph, addresses: Sequence[int]
) -> BlockProfile:
    """Build a :class:`BlockProfile` from a fetch trace."""
    per_address = Counter(addresses)
    entry_counts: dict[int, int] = {}
    fetch_counts: dict[int, int] = {}
    for start, block in cfg.blocks.items():
        entry_counts[start] = per_address.get(start, 0)
        fetch_counts[start] = sum(
            per_address.get(a, 0) for a in block.addresses
        )
    return BlockProfile(
        cfg=cfg,
        entry_counts=entry_counts,
        fetch_counts=fetch_counts,
        total_fetches=len(addresses),
    )
