"""Figure 7: the percentage-reduction comparison chart.

Same data as Figure 6, rendered as grouped per-benchmark series (the
paper's bar chart).  The bench regenerates the series and an ASCII
rendering, and asserts the chart-level reading: shorter blocks give
taller bars, and no bar is negative.
"""

from repro.pipeline.report import fig7_series, format_fig7_ascii
from repro.workloads.registry import BENCHMARK_ORDER


def test_fig7_reduction_chart(benchmark, figure6_results, record_result):
    results, _ = figure6_results

    series = benchmark.pedantic(
        fig7_series, args=(results, BENCHMARK_ORDER), rounds=1, iterations=1
    )

    assert set(series) == {4, 5, 6, 7}
    for k, row in series.items():
        assert len(row) == len(BENCHMARK_ORDER)
        assert all(0.0 <= value <= 100.0 for value in row)

    # Chart-level reading: averaged across benchmarks, the k=4 bars are
    # the tallest and the k=6/7 bars the shortest.
    means = {k: sum(row) / len(row) for k, row in series.items()}
    assert means[4] == max(means.values())
    assert min(means[6], means[7]) == min(means.values())

    chart = format_fig7_ascii(series, BENCHMARK_ORDER)
    for name in BENCHMARK_ORDER:
        assert name in chart
    record_result("fig7_reduction_chart", chart)
