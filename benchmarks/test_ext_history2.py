"""Extension: two-bit-history transformations (the paper's stated
generalisation, Section 5.1, left unexplored there).

Quantifies what ``x_n = tau(x~_n, x_{n-1}, x_{n-2})`` would buy over
the paper's one-bit history, and what it costs:

* theory (uniform inputs): RTN per block size for h=1 vs h=2;
* hardware: the function space grows 16 -> 256 (selector bits 3 -> up
  to 8 per block-line before restriction) and the per-line decode
  gate becomes a 3-input LUT with a second history flop.

Headline result: h=2 *loses* at k=3 (it must anchor two bits per
block), ties at k=4 and only starts winning at k>=5 — evidence that
the paper's h=1 choice is the right engineering point for the short
blocks its TT sizing wants.
"""

from repro.core.multihistory import theory_rtn, used_functions
from repro.core.theory import expected_total_transitions, theory_row

BLOCK_SIZES = (3, 4, 5, 6, 7)


def _sweep():
    rows = []
    for k in BLOCK_SIZES:
        ttn = expected_total_transitions(k)
        h1 = theory_rtn(k, 1)
        h2 = theory_rtn(k, 2)
        rows.append((k, ttn, h1, h2))
    return rows


def test_ext_history2(benchmark, record_result):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    by_k = {k: (ttn, h1, h2) for k, ttn, h1, h2 in rows}
    # h=1 agrees with the Figure 3 reproduction.
    for k in BLOCK_SIZES:
        assert by_k[k][1] == theory_row(k).reduced_transitions
    # The crossover structure: h=2 worse at 3, equal at 4, better at 5+.
    assert by_k[3][2] > by_k[3][1]
    assert by_k[4][2] == by_k[4][1]
    for k in (5, 6, 7):
        assert by_k[k][2] < by_k[k][1]

    # Cost side: the optimal h=2 codebooks draw on more functions than
    # a 3-bit selector can address.
    used_h2 = used_functions(6, 2)
    assert len(used_h2) > 8

    lines = [
        "Extension — history length h=2 vs the paper's h=1 (uniform theory)",
        "",
        f"{'k':>2s} {'TTN':>5s} {'h=1 RTN':>8s} {'h=1 Impr':>9s} "
        f"{'h=2 RTN':>8s} {'h=2 Impr':>9s}",
    ]
    for k, ttn, h1, h2 in rows:
        lines.append(
            f"{k:2d} {ttn:5d} {h1:8d} {100 * (ttn - h1) / ttn:8.1f}% "
            f"{h2:8d} {100 * (ttn - h2) / ttn:8.1f}%"
        )
    lines += [
        "",
        f"functions used by optimal h=2 codebooks at k=6: {len(used_h2)} "
        "(of 256) -> needs >3 selector bits per block-line",
        "conclusion: h=2 anchors two bits per block, losing at the "
        "short block sizes the 16-entry TT favours; the paper's h=1 "
        "is the right operating point",
    ]
    record_result("ext_history2", "\n".join(lines))
