"""Per-task wall-clock deadlines that cover the serial path too.

The process pool already bounds a case with ``future.result(timeout)``
— but when the pool downgrades to serial execution that bound used to
vanish, and one hung case could stall the whole campaign (the exact
bug this module exists to fix).

:func:`run_with_deadline` enforces a deadline on a plain function
call.  On a Unix main thread it uses ``SIGALRM``/``setitimer`` — a
genuine asynchronous interrupt that can break out of a hung pure-Python
loop.  Anywhere else (worker threads, non-Unix platforms) it falls
back to running the call in a daemon thread and abandoning it on
timeout; the abandoned thread cannot be killed, but the campaign moves
on, which is the property that matters.

:class:`DeadlineExceeded` deliberately inherits from
:class:`BaseException`, *not* :class:`Exception` (and not
:class:`~repro.errors.ReproError`): campaign case runners classify
``ReproError`` as a *detected* fault and ``Exception`` as a *crash* —
a timeout must not masquerade as either, it has to fly past those
handlers to the harness that knows it is a timeout.
"""

from __future__ import annotations

import signal
import threading


class DeadlineExceeded(BaseException):
    """A deadline-guarded call ran out of wall-clock budget.

    BaseException on purpose — see the module docstring."""

    def __init__(self, seconds: float, what: str = "call"):
        super().__init__(f"{what} exceeded its {seconds:g}s deadline")
        self.seconds = seconds


def _sigalrm_usable() -> bool:
    return hasattr(signal, "setitimer") and (
        threading.current_thread() is threading.main_thread()
    )


def _run_with_sigalrm(fn, seconds: float, what: str):
    def _on_alarm(signum, frame):
        raise DeadlineExceeded(seconds, what)

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _run_with_watchdog(fn, seconds: float, what: str):
    outcome: dict = {}

    def _target():
        try:
            outcome["value"] = fn()
        except BaseException as err:  # propagate into the caller
            outcome["error"] = err

    worker = threading.Thread(target=_target, daemon=True)
    worker.start()
    worker.join(seconds)
    if worker.is_alive():
        # The thread is abandoned (daemonic); the campaign moves on.
        raise DeadlineExceeded(seconds, what)
    if "error" in outcome:
        raise outcome["error"]
    return outcome.get("value")


def run_with_deadline(fn, seconds: float | None, what: str = "call"):
    """Run ``fn()`` with at most ``seconds`` of wall clock.

    ``seconds=None`` (or <= 0) means no deadline.  Raises
    :class:`DeadlineExceeded` on expiry."""
    if seconds is None or seconds <= 0:
        return fn()
    if _sigalrm_usable():
        return _run_with_sigalrm(fn, seconds, what)
    return _run_with_watchdog(fn, seconds, what)
