"""Kill/resume determinism for the serve queue: a server SIGKILLed
mid-batch and resumed from its WAL must write a SERVE_report.json
byte-identical to an uninterrupted run's."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve.selftest import SelftestOptions, run_selftest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Harness options shared by the killed run, the resumed run, and the
#: uninterrupted reference.  No slow chaos: the batch must stay quick
#: enough that three runs of it fit in a unit test.
OPTIONS = dict(
    seed=17,
    tenants=3,
    jobs_per_tenant=8,
    workers=2,
    chaos=("kill", "malformed"),
    deterministic=True,
)

_DRIVER = """
import sys
from repro.serve.selftest import SelftestOptions, run_selftest

run_selftest(
    SelftestOptions(
        wal_path=sys.argv[1], report_path=sys.argv[2], **{options!r}
    )
)
"""


def _wal_data_lines(path: Path) -> int:
    if not path.exists():
        return 0
    lines = [l for l in path.read_text().splitlines() if l.strip()]
    return max(0, len(lines) - 1)  # minus the run_key header


def _spawn_driver(wal: Path, report: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO_ROOT / 'src'}:{REPO_ROOT}"
    return subprocess.Popen(
        [
            sys.executable,
            "-c",
            _DRIVER.format(options=OPTIONS),
            str(wal),
            str(report),
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class TestServeKillResume:
    def test_sigkilled_server_resumes_byte_identical(self, tmp_path):
        total_jobs = OPTIONS["tenants"] * OPTIONS["jobs_per_tenant"]
        kill_after = 5
        wal = tmp_path / "serve.wal"
        killed_report = tmp_path / "SERVE_killed.json"

        driver = _spawn_driver(wal, killed_report)
        deadline = time.monotonic() + 120.0
        try:
            while _wal_data_lines(wal) < kill_after:
                if driver.poll() is not None:
                    pytest.fail(
                        "driver finished before it could be killed "
                        f"(rc={driver.returncode})"
                    )
                if time.monotonic() > deadline:
                    pytest.fail("driver never reached the kill point")
                time.sleep(0.01)
            driver.send_signal(signal.SIGKILL)
            driver.wait(timeout=30.0)
        finally:
            if driver.poll() is None:  # pragma: no cover - cleanup
                driver.kill()
                driver.wait()

        journaled = _wal_data_lines(wal)
        assert kill_after <= journaled < total_jobs

        resumed_report = tmp_path / "SERVE_resumed.json"
        report, problems = run_selftest(
            SelftestOptions(
                wal_path=str(wal),
                resume=True,
                report_path=str(resumed_report),
                **OPTIONS,
            )
        )
        assert problems == []
        assert report["summary"]["jobs"] == total_jobs

        reference_report = tmp_path / "SERVE_reference.json"
        _, reference_problems = run_selftest(
            SelftestOptions(report_path=str(reference_report), **OPTIONS)
        )
        assert reference_problems == []
        assert (
            resumed_report.read_bytes() == reference_report.read_bytes()
        )

    def test_resume_against_a_different_batch_refuses(self, tmp_path):
        from repro.runtime.checkpoint import CheckpointMismatchError

        wal = tmp_path / "serve.wal"
        run_selftest(SelftestOptions(wal_path=str(wal), **OPTIONS))
        changed = dict(OPTIONS, seed=OPTIONS["seed"] + 1)
        with pytest.raises(CheckpointMismatchError):
            run_selftest(
                SelftestOptions(wal_path=str(wal), resume=True, **changed)
            )
