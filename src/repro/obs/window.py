"""Rolling time-window aggregation: recent-rate counters and quantiles.

The cumulative :mod:`repro.obs.metrics` registry answers "what happened
since the process started"; a live server needs "what is happening
*now*".  This module adds the windowed half: a ring of fixed-duration
buckets over a monotonic clock, giving 1m/5m rates and rolling latency
quantiles without ever storing more than the ring.

Design points:

* **Monotonic, injectable clock.**  Every class takes ``clock=`` (a
  zero-argument callable, default :func:`time.monotonic`), so tests
  drive time forward deterministically and wall-clock jumps (NTP,
  suspend) cannot corrupt rates.
* **Lazy slot expiry.**  Each ring slot remembers the bucket *epoch*
  (``int(now // bucket_s)``) it was last written in; a slot whose epoch
  is stale is reset on touch.  No background timer, no churn when idle.
* **Bounded.**  A :class:`RollingHistogram` keeps at most
  ``per_slot_cap`` samples per bucket; overflow is counted, not stored,
  so quantiles stay approximate-but-honest under load.

:class:`TelemetryWindows` bundles the request-level trio (throughput,
errors, latency) the serve path and the SLO layer both consume; its
:data:`WINDOW_SPECS` (1m/5m) are the horizons exported on the
OpenMetrics endpoint and embedded in ``BENCH_serve.json`` v2.
"""

from __future__ import annotations

import math
import time
from typing import Callable

__all__ = [
    "WINDOW_SPECS",
    "RollingCounter",
    "RollingHistogram",
    "TelemetryWindows",
]

#: The reporting horizons every windowed snapshot exposes, as
#: ``(label, seconds)`` pairs.  Both must fit inside the default ring
#: span below.
WINDOW_SPECS: tuple[tuple[str, float], ...] = (("1m", 60.0), ("5m", 300.0))

#: Default ring geometry: 60 buckets of 5 s = a 300 s span, so one ring
#: serves both the 1m and the 5m window.
DEFAULT_SPAN_S = 300.0
DEFAULT_RESOLUTION = 60

#: Per-bucket retained-sample bound for rolling histograms.
DEFAULT_PER_SLOT_CAP = 128


class _Ring:
    """Shared epoch-slot machinery for the rolling aggregates."""

    __slots__ = ("bucket_s", "resolution", "_clock", "_epochs")

    def __init__(
        self,
        span_s: float,
        resolution: int,
        clock: Callable[[], float],
    ) -> None:
        if span_s <= 0 or resolution <= 0:
            raise ValueError("window span and resolution must be positive")
        self.bucket_s = span_s / resolution
        self.resolution = resolution
        self._clock = clock
        self._epochs = [-1] * resolution

    def _touch(self) -> int:
        """The current slot index, with its stale state reset."""
        epoch = int(self._clock() // self.bucket_s)
        i = epoch % self.resolution
        if self._epochs[i] != epoch:
            self._reset_slot(i)
            self._epochs[i] = epoch
        return i

    def _live_slots(self, window_s: float | None) -> list[int]:
        """Indices of slots still inside ``window_s`` (default: the
        full ring span), *excluding* expired epochs."""
        now_epoch = int(self._clock() // self.bucket_s)
        if window_s is None:
            n = self.resolution
        else:
            n = min(self.resolution, max(1, int(round(window_s / self.bucket_s))))
        floor = now_epoch - n + 1
        return [
            i
            for i, epoch in enumerate(self._epochs)
            if floor <= epoch <= now_epoch
        ]

    def _reset_slot(self, i: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class RollingCounter(_Ring):
    """A counter whose value decays bucket-by-bucket out of the window."""

    __slots__ = ("_values",)

    def __init__(
        self,
        span_s: float = DEFAULT_SPAN_S,
        resolution: int = DEFAULT_RESOLUTION,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__(span_s, resolution, clock)
        self._values = [0.0] * resolution

    def _reset_slot(self, i: int) -> None:
        self._values[i] = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self._values[self._touch()] += amount

    def total(self, window_s: float | None = None) -> float:
        return sum(self._values[i] for i in self._live_slots(window_s))

    def rate(self, window_s: float) -> float:
        """Events per second over the trailing ``window_s``."""
        return self.total(window_s) / window_s


class RollingHistogram(_Ring):
    """Bounded per-bucket samples giving rolling quantiles and means."""

    __slots__ = ("per_slot_cap", "_counts", "_sums", "_samples", "dropped")

    def __init__(
        self,
        span_s: float = DEFAULT_SPAN_S,
        resolution: int = DEFAULT_RESOLUTION,
        clock: Callable[[], float] = time.monotonic,
        per_slot_cap: int = DEFAULT_PER_SLOT_CAP,
    ) -> None:
        super().__init__(span_s, resolution, clock)
        self.per_slot_cap = per_slot_cap
        self._counts = [0] * resolution
        self._sums = [0.0] * resolution
        self._samples: list[list[float]] = [[] for _ in range(resolution)]
        self.dropped = 0

    def _reset_slot(self, i: int) -> None:
        self._counts[i] = 0
        self._sums[i] = 0.0
        self._samples[i] = []

    def observe(self, value: float) -> None:
        value = float(value)
        i = self._touch()
        self._counts[i] += 1
        self._sums[i] += value
        if len(self._samples[i]) < self.per_slot_cap:
            self._samples[i].append(value)
        else:
            self.dropped += 1

    def count(self, window_s: float | None = None) -> int:
        return sum(self._counts[i] for i in self._live_slots(window_s))

    def mean(self, window_s: float | None = None) -> float | None:
        live = self._live_slots(window_s)
        count = sum(self._counts[i] for i in live)
        if not count:
            return None
        return sum(self._sums[i] for i in live) / count

    def quantile(self, q: float, window_s: float | None = None) -> float | None:
        """Nearest-rank quantile over the window's retained samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        merged: list[float] = []
        for i in self._live_slots(window_s):
            merged.extend(self._samples[i])
        if not merged:
            return None
        merged.sort()
        if q == 0.0:
            return merged[0]
        if q == 1.0:
            return merged[-1]
        rank = max(1, min(len(merged), math.ceil(q * len(merged))))
        return merged[rank - 1]


class TelemetryWindows:
    """The serve path's live view: throughput, errors, latency, per
    window horizon in :data:`WINDOW_SPECS`."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self.jobs = RollingCounter(clock=clock)
        self.errors = RollingCounter(clock=clock)
        self.latency = RollingHistogram(clock=clock)

    def observe(self, latency_s: float, ok: bool = True) -> None:
        self.jobs.inc()
        if not ok:
            self.errors.inc()
        self.latency.observe(latency_s)

    def snapshot(self) -> dict:
        """JSON-ready ``{window label: rates + latency rollup}``."""
        out: dict = {}
        for label, seconds in WINDOW_SPECS:
            jobs = self.jobs.total(seconds)
            errors = self.errors.total(seconds)
            quantiles = {
                name: (
                    None
                    if value is None
                    else round(value * 1000.0, 3)
                )
                for name, value in (
                    ("p50_ms", self.latency.quantile(0.5, seconds)),
                    ("p90_ms", self.latency.quantile(0.9, seconds)),
                    ("p99_ms", self.latency.quantile(0.99, seconds)),
                )
            }
            mean = self.latency.mean(seconds)
            out[label] = {
                "jobs": jobs,
                "errors": errors,
                "rate_per_s": round(jobs / seconds, 6),
                "error_rate": round(errors / jobs, 6) if jobs else 0.0,
                "latency": {
                    "count": self.latency.count(seconds),
                    "mean_ms": None if mean is None else round(mean * 1000.0, 3),
                    **quantiles,
                },
            }
        return out
