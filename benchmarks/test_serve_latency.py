"""Chaos/load acceptance bench for the encoding service.

Drives the full ``repro serve --selftest`` harness — hundreds of jobs
from concurrent tenants over TCP with kill/slow/malformed chaos armed
— and writes ``BENCH_serve.json`` at the repo root with the tail-
latency histogram and failure-handling counters CI uploads.

The acceptance here is *behavioural*, not a latency floor (shared CI
runners make absolute milliseconds meaningless): zero wrong results,
a closed failure taxonomy, and every injected fault visibly handled
(retries, pool rebuilds, sheds all accounted for).
"""

import json
from pathlib import Path

from repro.serve.selftest import (
    SelftestOptions,
    expected_outcome,
    generate_requests,
    run_selftest,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The CI load shape: 8 tenants x 25 jobs over one TCP connection
#: each, 3 pool workers behind a depth-16 queue, all chaos models on.
OPTIONS = SelftestOptions(
    seed=42,
    tenants=8,
    jobs_per_tenant=25,
    workers=3,
    queue_depth=16,
    transport="tcp",
    bench_path=str(REPO_ROOT / "BENCH_serve.json"),
)


def test_serve_latency_under_chaos(record_result):
    report, problems = run_selftest(OPTIONS)

    assert problems == [], problems[:5]
    assert report["summary"]["jobs"] == 200

    # The taxonomy is exactly what the seeded chaos plan predicts.
    requests = generate_requests(OPTIONS)
    predicted: dict[str, int] = {}
    for raw in requests:
        outcome = expected_outcome(raw)
        predicted[outcome] = predicted.get(outcome, 0) + 1
    assert report["summary"]["outcomes"] == dict(sorted(predicted.items()))

    bench_path = Path(OPTIONS.bench_path)
    assert bench_path.exists()
    bench = json.loads(bench_path.read_text())
    assert bench["schema"] == "repro.serve.bench/1"
    assert bench["jobs"] == 200

    latency = bench["latency_ms"]
    assert latency["count"] == report["summary"]["outcomes"].get(
        "ok", 0
    ) + report["summary"]["outcomes"].get("deadline_exceeded", 0)
    assert 0 < latency["p50"] <= latency["p90"] <= latency["p99"]

    stats = bench["stats"]
    # The seeded plan injects kills: the service must have visibly
    # survived them (rebuilt pools, retried the victims to `ok`).
    assert any(r.get("chaos") == "kill" for r in requests)
    assert stats["pool_rebuilds"] >= 1
    assert stats["retried"] >= 1
    assert stats["errors"] == 0

    record_result(
        "serve_latency",
        "\n".join(
            [
                f"jobs: {bench['jobs']} over {OPTIONS.tenants} TCP tenants, "
                f"{OPTIONS.workers} workers, queue depth "
                f"{OPTIONS.queue_depth}",
                f"outcomes: {report['summary']['outcomes']}",
                f"wall: {bench['wall_s']}s "
                f"({bench['throughput_jobs_per_s']} jobs/s)",
                f"latency ms: p50={latency['p50']} p90={latency['p90']} "
                f"p99={latency['p99']} max={latency['max']}",
                f"handled: {stats['shed']} shed, {stats['retried']} retried, "
                f"{stats['pool_rebuilds']} pool rebuilds, "
                f"{stats['breaker_opens']} breaker opens",
            ]
        ),
    )
