"""Per-region scheme selector: never-worse guarantee, bundle
integrity, budget filtering.

The full nine-workload sweep lives in the experiment pipeline (and the
CI encoder-matrix job); here two registry workloads with different
traffic shapes keep the suite fast while still exercising multi-region
selection end to end.
"""

import json

import pytest

from repro.baselines.protocol import registered_schemes
from repro.errors import EncodingError
from repro.pipeline.bundle import EncodingBundle
from repro.pipeline.selector import (
    SCHEME_RAW,
    SCHEME_TTBBIT,
    SchemeSelector,
    SelectorBudget,
    select_for_workload,
)
from repro.workloads.registry import build_workload

WORKLOADS = ("fir", "fft")


@pytest.fixture(scope="module", params=WORKLOADS)
def selection(request):
    """One SelectorResult per workload, shared across this module
    (selector runs cost ~1s each)."""
    return select_for_workload(request.param, block_size=5)


class TestNeverWorse:
    def test_mixed_never_worse_than_any_single_scheme(self, selection):
        """The acceptance criterion: the mixed bundle beats (or ties)
        every single-scheme configuration, including TT/BBIT and raw."""
        mixed = selection.mixed_transitions
        for scheme in (SCHEME_TTBBIT, SCHEME_RAW, *registered_schemes()):
            single = selection.single_scheme_transitions(scheme)
            assert mixed <= single, (selection.name, scheme, mixed, single)

    def test_mixed_never_worse_than_baseline(self, selection):
        assert selection.mixed_transitions <= selection.baseline_transitions

    def test_every_region_choice_is_its_candidate_minimum(self, selection):
        for choice in selection.choices:
            costs = [c for c in choice.candidates.values() if c is not None]
            assert choice.transitions == min(costs)
            assert choice.candidates[choice.scheme] == choice.transitions

    def test_accounting_is_exact(self, selection):
        """Residual + per-region raw costs must reassemble the
        baseline: every transition is attributed exactly once."""
        assert selection.baseline_transitions == (
            selection.residual_transitions
            + sum(c.raw_transitions for c in selection.choices)
        )


class TestBundleIntegrity:
    def test_regions_tagged_and_decodable(self, selection):
        bundle = selection.bundle
        assert bundle.regions
        tags = {region["scheme"] for region in bundle.regions}
        legal = {SCHEME_TTBBIT, SCHEME_RAW, *registered_schemes()}
        assert tags <= legal
        wl = build_workload(selection.name)
        program = wl.assemble()
        _, trace = wl.run()
        assert bundle.deploy_and_check(program, trace)

    def test_bundle_json_roundtrip_preserves_regions(self, selection, tmp_path):
        path = tmp_path / "mixed.json"
        path.write_text(selection.bundle.to_json())
        restored = EncodingBundle.from_json(path.read_text())
        # JSON has no tuples, so compare through a JSON normalisation.
        assert restored.regions == json.loads(
            json.dumps(selection.bundle.regions)
        )
        assert restored.region_scheme_map() == (
            selection.bundle.region_scheme_map()
        )
        restored.validate()

    def test_scheme_word_decoders_cover_all_tagged_schemes(self, selection):
        decoders = selection.bundle.scheme_word_decoders()
        for region in selection.bundle.regions:
            tag = region["scheme"]
            if tag == SCHEME_TTBBIT:
                continue  # decoded by the TT/BBIT fetch path, not per word
            assert tag in decoders


class TestBudgetFiltering:
    def test_zero_budget_disqualifies_table_backends(self):
        """With no table bits and no extra lines, every zoo backend
        that needs hardware is marked over budget (None) and the
        selector still produces a valid bundle from TT/BBIT + raw."""
        wl = build_workload("fir")
        program = wl.assemble()
        _, trace = wl.run()
        selector = SchemeSelector(
            block_size=5,
            budget=SelectorBudget(max_table_bits=0, max_extra_lines=0),
        )
        result = selector.run(program, trace, "fir-zero-budget")
        for choice in result.choices:
            assert choice.scheme in (SCHEME_TTBBIT, SCHEME_RAW)
            for scheme in registered_schemes():
                cost = choice.candidates.get(scheme)
                if cost is not None:
                    # A scheme surviving a zero budget must truly need
                    # no hardware at all.
                    from repro.baselines.protocol import make_encoder

                    assert make_encoder(scheme).budget().fits(0, 0)

    def test_scheme_subset_restricts_candidates(self):
        wl = build_workload("fir")
        program = wl.assemble()
        _, trace = wl.run()
        selector = SchemeSelector(block_size=5, schemes=("gray",))
        result = selector.run(program, trace, "fir-gray-only")
        for choice in result.choices:
            zoo = set(choice.candidates) - {SCHEME_TTBBIT, SCHEME_RAW}
            assert zoo == {"gray"}

    def test_unknown_scheme_rejected(self):
        with pytest.raises(EncodingError):
            SchemeSelector(block_size=5, schemes=("nope",))


class TestChoiceReporting:
    def test_savings_and_fetches_populated(self, selection):
        for choice in selection.choices:
            assert choice.savings == (
                choice.raw_transitions - choice.transitions
            )
            assert choice.savings >= 0
            assert choice.fetches > 0

    def test_non_raw_choices_carry_config_digest(self, selection):
        for choice in selection.choices:
            if choice.scheme in (SCHEME_RAW, SCHEME_TTBBIT):
                continue
            assert choice.config
            assert len(choice.config_digest) == 64
