"""Write-ahead checkpointing and atomic artifact writes.

Two failure modes killed long campaigns before this module existed:

* a mid-run SIGKILL threw away every completed case, and
* a crash *during* ``Path.write_text`` of a report left a truncated
  JSON file that downstream tooling then choked on.

:func:`atomic_write_text` fixes the second: the content goes to a
temporary file in the destination directory, is flushed and fsynced,
and only then renamed over the target with ``os.replace`` — so the
artifact is always either the complete old version or the complete
new one.

:class:`CheckpointLog` fixes the first with the standard
write-ahead-log shape: one JSON line per completed unit of work,
fsynced on append.  On resume the log is replayed (tolerating a
truncated final line, the expected artifact of dying mid-append) and
completed keys are skipped.  The log is keyed by a ``run_key`` derived
from the campaign configuration, so a resume with a *different*
configuration refuses to mix results.
"""

from __future__ import annotations

import json
import os
import tempfile
import weakref
from pathlib import Path

from repro.errors import ReproError
from repro.obs import OBS

try:  # Unix only; Windows falls back to unlocked appends.
    import fcntl
except ImportError:  # pragma: no cover - non-Unix platforms
    fcntl = None  # type: ignore[assignment]


class CheckpointMismatchError(ReproError):
    """Resume attempted against a WAL from a different run config."""


class CheckpointLockError(ReproError):
    """A second writer tried to append to an already-locked WAL.

    Two writers interleaving records on one log would corrupt the
    replay silently (each believes every record is its own), so the
    first append takes an exclusive advisory lock on the file and any
    other opener fails loudly instead."""


def atomic_write_text(path: Path | str, content: str) -> None:
    """Crash-safe replacement for ``Path.write_text``.

    Writes to a temp file in the same directory (same filesystem, so
    the rename is atomic), fsyncs it, then ``os.replace``\\ s it over
    ``path``.  Readers never observe a partial file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(content)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class CheckpointLog:
    """JSONL write-ahead log of completed work units.

    Record shape: the first line is a header ``{"run_key": ...}``;
    every subsequent line is ``{"key": <case key>, "result": <dict>}``.
    Appends are fsynced so a completed case survives any subsequent
    kill; a half-written trailing line (the signature of dying
    mid-append) is ignored on load.
    """

    def __init__(self, path: Path | str, run_key: str):
        self.path = Path(path)
        self.run_key = run_key
        self.completed: dict[str, dict] = {}
        self._handle = None

    # -- loading -------------------------------------------------------

    def load(self) -> dict[str, dict]:
        """Replay the log (if it exists) into :attr:`completed`.

        Raises :class:`CheckpointMismatchError` when the log belongs
        to a different run configuration."""
        self.completed = {}
        if not self.path.exists():
            return self.completed
        # Bytes, not text: a torn tail can end mid-way through a
        # multi-byte UTF-8 character, which a text-mode read would
        # refuse to decode at all.
        lines = self.path.read_bytes().split(b"\n")
        header_seen = False
        for raw in lines:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Truncated or torn line — the tail of a killed append.
                continue
            if not isinstance(record, dict):
                # Valid JSON but not a record (torn bytes that happen
                # to parse, e.g. a bare number): not ours, skip it.
                continue
            if not header_seen:
                header_seen = True
                logged_key = record.get("run_key")
                if logged_key != self.run_key:
                    raise CheckpointMismatchError(
                        f"checkpoint log {self.path} belongs to run "
                        f"{logged_key!r}, not {self.run_key!r}; refusing "
                        "to mix results (delete it to start over)"
                    )
                continue
            key = record.get("key")
            if isinstance(key, str):
                self.completed[key] = record.get("result", {})
        if OBS.enabled and self.completed:
            OBS.registry.counter(
                "runtime.checkpoint_replayed",
                "completed cases skipped thanks to a WAL replay",
            ).inc(len(self.completed))
        return self.completed

    # -- appending -----------------------------------------------------

    def open_for_append(self) -> None:
        """Eagerly take the WAL lock (normally taken lazily by the
        first :meth:`record`), so a process that must not share the
        log — a resumed server — fails fast at startup instead of
        mid-dispatch."""
        self._ensure_open()

    def _ensure_open(self) -> None:
        if self._handle is not None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # The lock must be taken *before* the torn-tail repair below:
        # two writers racing that repair could each append a newline.
        # flock is per open file description, so a second CheckpointLog
        # in the same process conflicts just like one in another
        # process (exactly what the contention test exercises).
        lock_handle = self.path.open("a", encoding="utf-8")
        if fcntl is not None:
            try:
                fcntl.flock(lock_handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                lock_handle.close()
                raise CheckpointLockError(
                    f"checkpoint log {self.path} is already locked by "
                    "another writer; two writers on one WAL would "
                    "interleave records (resume the existing run or "
                    "point this one at its own --wal path)"
                ) from None
        fresh = self.path.stat().st_size == 0
        if not fresh:
            # A torn tail means the file doesn't end in a newline; a
            # plain append would glue the next record onto the torn
            # bytes and lose it on replay.  Terminate the line first.
            with self.path.open("rb") as existing:
                existing.seek(-1, os.SEEK_END)
                ends_clean = existing.read(1) == b"\n"
            if not ends_clean:
                with self.path.open("ab") as repair:
                    repair.write(b"\n")
                    repair.flush()
                    os.fsync(repair.fileno())
        # The locked handle doubles as the append handle (append mode
        # positions every write at EOF, so the repair above is seen).
        self._handle = lock_handle
        _OPEN_LOGS.add(self)
        if fresh:
            self._append_line({"run_key": self.run_key})

    def _append_line(self, record: dict) -> None:
        # Key order is preserved (no sort_keys): a replayed result must
        # serialize byte-identically to the freshly computed one, and
        # the caller's dicts are already built in deterministic order.
        self._handle.write(
            json.dumps(record, separators=(",", ":")) + "\n"
        )
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record(self, key: str, result: dict) -> None:
        """Durably mark one work unit complete."""
        self._ensure_open()
        self._append_line({"key": key, "result": result})
        self.completed[key] = result
        if OBS.enabled:
            OBS.registry.counter(
                "runtime.checkpoint_appends", "WAL records written"
            ).inc()

    def __contains__(self, key: str) -> bool:
        return key in self.completed

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        _OPEN_LOGS.discard(self)

    def __enter__(self) -> "CheckpointLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Logs currently holding the append lock, so fork children can be
#: scrubbed of them (weak: a dropped log must not be kept alive).
_OPEN_LOGS: "weakref.WeakSet[CheckpointLog]" = weakref.WeakSet()


def _release_inherited_locks() -> None:
    """Drop WAL handles in a freshly forked child.

    ``flock`` belongs to the open file *description*, which fork
    children share — a pool worker that inherits a locked WAL keeps it
    locked even after the parent is SIGKILLed (orphaned workers made a
    resumed server hang on ``CheckpointLockError`` forever).  Closing
    the child's copy leaves the parent as the description's only
    holder, so the lock dies exactly when the parent does."""
    for log in list(_OPEN_LOGS):
        handle, log._handle = log._handle, None
        _OPEN_LOGS.discard(log)
        if handle is not None:
            try:
                handle.close()
            except OSError:  # pragma: no cover - best-effort scrub
                pass


if hasattr(os, "register_at_fork"):  # Unix; a no-op elsewhere
    os.register_at_fork(after_in_child=_release_inherited_locks)
