"""Ablation A: transformation-set size on realistic streams.

DESIGN.md calls out the 8-vs-16 design choice.  The paper proves the
sets tie on anchored blocks; with the one-bit overlap the full set can
occasionally save one extra transition (12 of 504 constrained cases).
This bench quantifies the end-to-end gap on bit streams — small (on
the order of 1% of original transitions), which is why 3 selector bits
suffice — and the cost of going the other way (fewer than 8
functions)."""

import itertools

from repro.core.analysis import random_streams
from repro.core.block_solver import BlockSolver
from repro.core.stream_codec import encode_stream
from repro.core.transformations import (
    ALL_TRANSFORMATIONS,
    OPTIMAL_SET,
    by_name,
)

IDENTITY_ONLY = (by_name("x"),)
FOUR_SET = tuple(by_name(n) for n in ("x", "~x", "xor", "xnor"))


def _stream_totals(transformations, streams, block_size=5):
    total = 0
    for stream in streams:
        total += encode_stream(
            stream, block_size, transformations
        ).encoded_transitions
    return total


def test_ablation_tau_sets(benchmark, record_result):
    streams = random_streams(count=20, length=1000, seed=52)
    baseline = _stream_totals(IDENTITY_ONLY, streams)  # = original

    eight = benchmark.pedantic(
        _stream_totals, args=(OPTIMAL_SET, streams), rounds=1, iterations=1
    )
    sixteen = _stream_totals(ALL_TRANSFORMATIONS, streams)
    four = _stream_totals(FOUR_SET, streams)

    # 16 >= 8 by construction.  Measured gap on uniform random
    # streams: ~1.5% of the original transitions (the overlap makes
    # x|~y / x&~y useful more often than the anchored analysis
    # suggests) — small enough that the 3-bit selector remains the
    # right hardware trade, but not zero; recorded in EXPERIMENTS.md.
    assert sixteen <= eight
    gap_percent = 100.0 * (eight - sixteen) / baseline
    assert gap_percent < 2.0

    # Halving the set to 4 functions costs real reductions.
    assert four > eight
    four_loss = 100.0 * (four - eight) / baseline

    # Constrained-case census (the mechanism behind the tiny gap).
    full_solver = BlockSolver(ALL_TRANSFORMATIONS)
    eight_solver = BlockSolver(OPTIMAL_SET)
    losses = 0
    for size in range(2, 8):
        for word in itertools.product((0, 1), repeat=size):
            for fixed in (0, 1):
                a = full_solver.solve_constrained(list(word), fixed)
                b = eight_solver.solve_constrained(list(word), fixed)
                losses += b.encoded_transitions > a.encoded_transitions
    assert losses == 12

    lines = [
        "Ablation A — transformation-set size, 20x1000-bit streams, k=5",
        f"original transitions:        {baseline}",
        f"4-set  {{x,~x,xor,xnor}}:      {four}  "
        f"(+{four_loss:.2f}% of original vs 8-set)",
        f"8-set  (paper):              {eight}",
        f"16-set (all functions):      {sixteen}  "
        f"(gap {gap_percent:.3f}% of original)",
        f"overlap-constrained cases where 16 beats 8: {losses}/504",
        "conclusion: the paper's 8-function / 3-selector-bit choice "
        "costs ~1.5% of original transitions vs all 16 functions on "
        "uniform streams (less on real code) while halving the "
        "selector storage and decode mux",
    ]
    record_result("ablation_tau_sets", "\n".join(lines))
