"""Tests for leader detection and basic-block construction."""

import pytest

from repro.cfg.basic_blocks import build_basic_blocks, find_leaders
from repro.isa.assembler import TEXT_BASE, assemble


def blocks_of(source: str):
    program = assemble(source)
    return program, build_basic_blocks(program)


class TestLeaders:
    def test_straight_line_single_block(self):
        program, blocks = blocks_of(
            ".text\nmain: addu $t0, $t1, $t2\naddu $t3, $t4, $t5\n"
            "li $v0, 10\nsyscall\n"
        )
        assert len(blocks) == 1
        (block,) = blocks.values()
        assert len(block) == 4

    def test_branch_splits_blocks(self):
        program, blocks = blocks_of(
            """
            .text
            main: li $t0, 3
            loop: addiu $t0, $t0, -1
            bnez $t0, loop
            li $v0, 10
            syscall
            """
        )
        loop = program.address_of("loop")
        assert loop in blocks
        assert set(blocks) == {TEXT_BASE, loop, loop + 8}

    def test_jump_target_is_leader(self):
        program, blocks = blocks_of(
            ".text\nmain: j skip\nnop\nskip: li $v0, 10\nsyscall\n"
        )
        assert program.address_of("skip") in blocks

    def test_leaders_within_text_only(self):
        program = assemble(".text\nmain: nop\nli $v0, 10\nsyscall\n")
        leaders = find_leaders(program)
        assert all(
            program.text_base <= a < program.text_end for a in leaders
        )


class TestSuccessors:
    def test_conditional_branch_two_successors(self):
        program, blocks = blocks_of(
            """
            .text
            main: bnez $t0, out
            addiu $t1, $t1, 1
            out: li $v0, 10
            syscall
            """
        )
        entry = blocks[TEXT_BASE]
        out = program.address_of("out")
        assert set(entry.successors) == {out, TEXT_BASE + 4}

    def test_unconditional_jump_one_successor(self):
        program, blocks = blocks_of(
            ".text\nmain: j end\nmid: nop\nend: li $v0, 10\nsyscall\n"
        )
        entry = blocks[TEXT_BASE]
        assert entry.successors == [program.address_of("end")]

    def test_fallthrough_successor(self):
        program, blocks = blocks_of(
            ".text\nmain: nop\ntarget: li $v0, 10\nsyscall\nj target\n"
        )
        entry = blocks[TEXT_BASE]
        assert entry.successors == [program.address_of("target")]

    def test_jr_has_indirect_flag(self):
        program, blocks = blocks_of(".text\nmain: jr $ra\n")
        assert blocks[TEXT_BASE].has_indirect_successor
        assert blocks[TEXT_BASE].successors == []

    def test_jal_links_call_and_return_site(self):
        program, blocks = blocks_of(
            """
            .text
            main: jal func
            li $v0, 10
            syscall
            func: jr $ra
            """
        )
        entry = blocks[TEXT_BASE]
        assert set(entry.successors) == {
            program.address_of("func"),
            TEXT_BASE + 4,
        }


class TestBlockProperties:
    def test_blocks_partition_text(self):
        program, blocks = blocks_of(
            """
            .text
            main: li $t0, 5
            a: bnez $t0, b
            addiu $t0, $t0, -1
            j a
            b: li $v0, 10
            syscall
            """
        )
        covered = []
        for block in blocks.values():
            covered.extend(block.addresses)
        expected = list(range(program.text_base, program.text_end, 4))
        assert sorted(covered) == expected

    def test_words_match_program(self):
        program, blocks = blocks_of(
            ".text\nmain: li $t0, 1\nli $v0, 10\nsyscall\n"
        )
        for block in blocks.values():
            for address, word in zip(block.addresses, block.words):
                assert program.word_at(address) == word

    def test_terminator(self):
        program, blocks = blocks_of(
            ".text\nmain: nop\nj main\n"
        )
        assert blocks[TEXT_BASE].terminator.name == "j"
