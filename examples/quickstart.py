"""Quickstart: the paper's encoding in five minutes.

Runs through the core ideas bottom-up:

1. the sixteen two-input transformations and the optimal 8-set;
2. encoding a single block word (Figure 2's walkthrough example);
3. chain-encoding a long bit stream with one-bit block overlap;
4. vertically encoding a basic block of instruction words and
   restoring it exactly.

Run:  python examples/quickstart.py
"""

from repro.core.bitstream import from_paper_string, to_paper_string
from repro.core.block_solver import BlockSolver
from repro.core.codebook import build_codebook
from repro.core.program_codec import decode_basic_block, encode_basic_block
from repro.core.stream_codec import decode_stream, encode_stream
from repro.core.transformations import OPTIMAL_SET


def main() -> None:
    print("=== 1. The transformation set ===")
    print("The decoder computes x_n = tau(stored_bit, previous_bit) with")
    print("tau one of eight two-input functions (3 selector bits):")
    for t in OPTIMAL_SET:
        print(f"  selector {t.selector}: {t.name}")
    print()

    print("=== 2. One block word (the paper's Section 5.1 example) ===")
    solver = BlockSolver(OPTIMAL_SET)
    word = from_paper_string("010")  # 2 transitions
    solution = solver.solve_anchored(word)
    print(f"block word X = 010 has {solution.original_transitions} transitions")
    print(
        f"optimal code word X~ = {to_paper_string(solution.code)} via "
        f"tau = {solution.transformation.name} "
        f"({solution.encoded_transitions} transitions)"
    )
    print()

    print("=== 3. The full k=3 codebook (paper Figure 2) ===")
    print(build_codebook(3).format_table())
    print()

    print("=== 4. Chained stream encoding (Section 6) ===")
    stream = [0, 1, 0, 1, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1, 0, 1, 1, 0, 1]
    encoding = encode_stream(stream, block_size=5)
    print(f"original: {stream}  ({encoding.original_transitions} transitions)")
    print(
        f"encoded:  {list(encoding.encoded)}  "
        f"({encoding.encoded_transitions} transitions, "
        f"{encoding.reduction_percent:.0f}% saved)"
    )
    print(
        "block plan:",
        ", ".join(
            f"[{s.start}:{s.end}]={s.transformation.name}"
            for s in encoding.segments
        ),
    )
    assert decode_stream(encoding) == stream
    print("decode round-trip: OK")
    print()

    print("=== 5. A basic block of instruction words (Figure 1) ===")
    loop_body = [0x8C880000 | (i << 16) | (4 * i) for i in range(10)]
    block = encode_basic_block(loop_body, block_size=5)
    print("fetch  stored (encoded)   original")
    for i, (enc, orig) in enumerate(
        zip(block.encoded_words, block.original_words)
    ):
        print(f"  {i:2d}   {enc:08x}          {orig:08x}")
    print(
        f"bus transitions {block.original_transitions} -> "
        f"{block.encoded_transitions} "
        f"({block.reduction_percent:.1f}% saved), "
        f"{block.num_segments} Transformation Table entries"
    )
    assert decode_basic_block(block) == list(loop_body)
    print("decode round-trip: OK")


if __name__ == "__main__":
    main()
