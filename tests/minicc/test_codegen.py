"""Differential tests: compiled kernels vs the reference interpreter."""

import pytest

from repro.minicc import CompileError, compile_kernel
from tests.minicc.test_interp_reference import interpret

# Each corpus entry: (name, source, data, variables to compare).
CORPUS = [
    (
        "arith",
        """
        int a; int b; int c; int d; int e;
        a = 7; b = 3;
        c = a * b - a / b + a % b;
        d = (a + b) * (a - b);
        e = -a + b * -1;
        """,
        None,
        ["c", "d", "e"],
    ),
    (
        "comparisons",
        """
        int r[10]; int a; int b;
        a = 3; b = 5;
        r[0] = a < b;  r[1] = a > b;  r[2] = a <= b; r[3] = a >= b;
        r[4] = a == b; r[5] = a != b; r[6] = a == 3; r[7] = !a;
        r[8] = a < b && b < 10;  r[9] = a > b || b == 5;
        """,
        None,
        ["r"],
    ),
    (
        "double_compare",
        """
        double x; double y; int r[6];
        x = 1.5; y = 2.5;
        r[0] = x < y;  r[1] = x > y;  r[2] = x <= y;
        r[3] = x >= y; r[4] = x == y; r[5] = x != y;
        """,
        None,
        ["r"],
    ),
    (
        "control_flow",
        """
        int i; int evens; int odds;
        for (i = 0; i < 20; i = i + 1) {
            if (i % 2 == 0) evens = evens + i;
            else odds = odds + i;
        }
        """,
        None,
        ["evens", "odds"],
    ),
    (
        "while_loop",
        """
        int n; int steps;
        n = 27;
        while (n != 1) {
            if (n % 2 == 0) n = n / 2;
            else n = 3 * n + 1;
            steps = steps + 1;
        }
        """,
        None,
        ["steps"],
    ),
    (
        "dot_product",
        """
        double a[16]; double b[16]; double s;
        int i;
        s = 0.0;
        for (i = 0; i < 16; i = i + 1) s = s + a[i] * b[i];
        """,
        {
            "a": [0.5 * i - 3 for i in range(16)],
            "b": [0.25 * i + 1 for i in range(16)],
        },
        ["s"],
    ),
    (
        "matrix_multiply",
        """
        double A[5][5]; double B[5][5]; double C[5][5];
        int i; int j; int k; double s;
        for (i = 0; i < 5; i = i + 1)
            for (j = 0; j < 5; j = j + 1) {
                s = 0.0;
                for (k = 0; k < 5; k = k + 1)
                    s = s + A[i][k] * B[k][j];
                C[i][j] = s;
            }
        """,
        {
            "A": [((i * 3 + 1) % 7) - 3 + 0.5 for i in range(25)],
            "B": [((i * 5 + 2) % 9) - 4 - 0.25 for i in range(25)],
        },
        ["C"],
    ),
    (
        "mixed_promotion",
        """
        int i; double acc; int trunc;
        acc = 0.0;
        for (i = 1; i <= 10; i = i + 1) acc = acc + 1 / (i * 1.0);
        trunc = acc * 100;
        """,
        None,
        ["acc", "trunc"],
    ),
    (
        "stencil",
        """
        double u[8][8]; double v[8][8];
        int i; int j;
        for (i = 1; i < 7; i = i + 1)
            for (j = 1; j < 7; j = j + 1)
                v[i][j] = 0.25 * (u[i-1][j] + u[i+1][j] + u[i][j-1] + u[i][j+1]);
        """,
        {"u": [((i * 11 + 3) % 13) - 6.0 for i in range(64)]},
        ["v"],
    ),
]


@pytest.mark.parametrize("name,source,data,outputs", CORPUS, ids=[c[0] for c in CORPUS])
def test_compiled_matches_reference(name, source, data, outputs):
    compiled = compile_kernel(source, data=data, name=name)
    cpu, trace = compiled.run()
    expected_env = interpret(source, data)
    for var in outputs:
        measured = compiled.read(cpu, var)
        expected = expected_env[var]
        if not isinstance(measured, list):
            measured = [measured]
        assert len(measured) == len(expected), var
        for i, (m, e) in enumerate(zip(measured, expected)):
            if isinstance(e, float):
                assert m == pytest.approx(e, rel=1e-12, abs=1e-12), (var, i)
            else:
                assert m == e, (var, i)


class TestCompilerErrors:
    def test_undeclared_variable(self):
        with pytest.raises(CompileError, match="undeclared"):
            compile_kernel("int x; x = y;")

    def test_wrong_index_count(self):
        with pytest.raises(CompileError, match="indices"):
            compile_kernel("int A[4]; int x; x = A;")

    def test_modulo_on_doubles(self):
        with pytest.raises(CompileError, match="integer operands"):
            compile_kernel("double a; a = 1.0 % 2.0;")

    def test_double_condition_rejected(self):
        with pytest.raises(CompileError, match="integer"):
            compile_kernel("double d; int x; if (d) x = 1;")

    def test_data_for_unknown_variable(self):
        with pytest.raises(CompileError, match="undeclared"):
            compile_kernel("int x; x = 1;", data={"bogus": [1]})

    def test_wrong_data_length(self):
        with pytest.raises(CompileError, match="initial values"):
            compile_kernel("double A[4]; A[0] = 1.0;", data={"A": [1.0]})

    def test_float_index_rejected(self):
        with pytest.raises(CompileError, match="integers"):
            compile_kernel("double A[4]; double d; A[d] = 1.0;")


class TestGeneratedCode:
    def test_assembly_is_reassemblable(self):
        compiled = compile_kernel("int x; x = 1 + 2;")
        program = compiled.assemble()
        assert len(program.words) > 3

    def test_float_constants_pooled(self):
        compiled = compile_kernel("double a; double b; a = 2.5; b = 2.5;")
        assert compiled.assembly.count("2.5") == 1  # single pool entry

    def test_register_pools_balanced(self):
        # After a deep-but-legal expression the pools must be back to
        # full (checked implicitly by compiling many statements).
        source = "int x;\n" + "\n".join(
            f"x = ((1 + 2) * (3 + 4)) - ((5 + 6) * (7 + {i}));"
            for i in range(20)
        )
        compiled = compile_kernel(source)
        cpu, _ = compiled.run()

    def test_expression_too_deep(self):
        expr = "1"
        for i in range(12):
            expr = f"({expr} + (1 + ({expr} * 2)))"
        with pytest.raises(CompileError, match="too deep"):
            compile_kernel(f"int x; x = {expr};")
