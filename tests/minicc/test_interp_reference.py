"""Reference AST interpreter for differential testing of minicc.

`interpret` executes a parsed kernel with Python semantics matching
the language definition (32-bit wrap-around ints, C-style truncating
division, doubles as floats).  The codegen tests compare simulated
results against it on a corpus of kernels.
"""

from __future__ import annotations

import math

from repro.minicc.ast_nodes import (
    DOUBLE,
    INT,
    Assign,
    Binary,
    Block,
    FloatLit,
    For,
    If,
    IntLit,
    Kernel,
    Unary,
    VarRef,
    While,
)
from repro.minicc.parser import parse

MASK32 = 0xFFFFFFFF


def _wrap(value: int) -> int:
    value &= MASK32
    return value - 0x100000000 if value & 0x80000000 else value


class ReferenceInterpreter:
    def __init__(self, kernel: Kernel, data=None):
        self.kernel = kernel
        self.env: dict[str, list] = {}
        data = dict(data or {})
        for decl in kernel.decls:
            initial = data.get(decl.name)
            zero = 0.0 if decl.base_type == DOUBLE else 0
            values = [zero] * decl.element_count
            if initial is not None:
                seq = [initial] if not decl.dims else list(initial)
                cast = float if decl.base_type == DOUBLE else int
                values = [cast(v) for v in seq]
            self.env[decl.name] = values

    # ------------------------------------------------------------------

    def _flat_index(self, ref: VarRef) -> int:
        decl = self.kernel.decl_by_name[ref.name]
        if not ref.indices:
            return 0
        indices = [self.eval(e) for e in ref.indices]
        if len(indices) == 1:
            return indices[0]
        return indices[0] * decl.dims[1] + indices[1]

    def eval(self, expr):
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, FloatLit):
            return expr.value
        if isinstance(expr, VarRef):
            return self.env[expr.name][self._flat_index(expr)]
        if isinstance(expr, Unary):
            value = self.eval(expr.operand)
            if expr.op == "-":
                return _wrap(-value) if isinstance(value, int) else -value
            return 1 if value == 0 else 0
        if isinstance(expr, Binary):
            if expr.op == "&&":
                return 1 if self.eval(expr.left) and self.eval(expr.right) else 0
            if expr.op == "||":
                return 1 if self.eval(expr.left) or self.eval(expr.right) else 0
            a = self.eval(expr.left)
            b = self.eval(expr.right)
            if expr.op in ("<", "<=", ">", ">=", "==", "!="):
                result = {
                    "<": a < b,
                    "<=": a <= b,
                    ">": a > b,
                    ">=": a >= b,
                    "==": a == b,
                    "!=": a != b,
                }[expr.op]
                return 1 if result else 0
            both_int = isinstance(a, int) and isinstance(b, int)
            if expr.op == "+":
                return _wrap(a + b) if both_int else float(a) + float(b)
            if expr.op == "-":
                return _wrap(a - b) if both_int else float(a) - float(b)
            if expr.op == "*":
                return _wrap(a * b) if both_int else float(a) * float(b)
            if expr.op == "/":
                if both_int:
                    return _wrap(math.trunc(a / b)) if b else 0
                return float(a) / float(b)
            if expr.op == "%":
                if b == 0:
                    return 0
                return _wrap(a - math.trunc(a / b) * b)
        raise AssertionError(f"cannot eval {expr!r}")

    def execute(self, stmt) -> None:
        if isinstance(stmt, Assign):
            decl = self.kernel.decl_by_name[stmt.target.name]
            value = self.eval(stmt.value)
            if decl.base_type == DOUBLE:
                value = float(value)
            else:
                value = _wrap(math.trunc(value))
            self.env[stmt.target.name][self._flat_index(stmt.target)] = value
        elif isinstance(stmt, Block):
            for inner in stmt.statements:
                self.execute(inner)
        elif isinstance(stmt, If):
            if self.eval(stmt.condition):
                self.execute(stmt.then_body)
            elif stmt.else_body is not None:
                self.execute(stmt.else_body)
        elif isinstance(stmt, While):
            while self.eval(stmt.condition):
                self.execute(stmt.body)
        elif isinstance(stmt, For):
            self.execute(stmt.init)
            while self.eval(stmt.condition):
                self.execute(stmt.body)
                self.execute(stmt.step)
        else:
            raise AssertionError(f"cannot execute {stmt!r}")

    def run(self) -> dict[str, list]:
        for stmt in self.kernel.body:
            self.execute(stmt)
        return self.env


def interpret(source: str, data=None) -> dict[str, list]:
    """Parse and interpret; returns the final variable environment."""
    interpreter = ReferenceInterpreter(parse(source), data)
    return interpreter.run()


class TestReferenceInterpreter:
    """Sanity tests for the reference itself."""

    def test_arithmetic(self):
        env = interpret("int x; x = 2 + 3 * 4;")
        assert env["x"] == [14]

    def test_loop(self):
        env = interpret("int i; int s; for (i = 1; i <= 5; i = i + 1) s = s + i;")
        assert env["s"] == [15]

    def test_truncating_division(self):
        env = interpret("int a; int b; a = -7 / 2; b = -7 % 2;")
        assert env["a"] == [-3]
        assert env["b"] == [-1]

    def test_double_promotion(self):
        env = interpret("double d; d = 1 / 2 + 1.0 / 2;")
        assert env["d"] == [0.5]

    def test_wrap_around(self):
        env = interpret("int x; x = 2000000000 + 2000000000;")
        assert env["x"] == [_wrap(4000000000)]
