"""Tests for chained overlapped-block stream encoding (Section 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import random_streams
from repro.core.bitstream import count_transitions
from repro.core.stream_codec import (
    StreamEncoder,
    decode_stream,
    decode_with_plan,
    encode_stream,
    segment_bounds,
)
from repro.core.transformations import ALL_TRANSFORMATIONS, OPTIMAL_SET

streams = st.lists(st.integers(min_value=0, max_value=1), min_size=0, max_size=80)
block_sizes = st.integers(min_value=2, max_value=7)


class TestSegmentBounds:
    def test_single_block(self):
        assert segment_bounds(5, 5) == [(0, 5)]

    def test_one_bit_overlap(self):
        # Section 6's own example: size-4 blocks share one bit.
        bounds = segment_bounds(7, 4)
        assert bounds == [(0, 4), (3, 4)]

    def test_tail_block_shorter(self):
        assert segment_bounds(6, 5) == [(0, 5), (4, 2)]

    def test_disjoint_mode(self):
        assert segment_bounds(10, 5, overlapped=False) == [(0, 5), (5, 5)]
        assert segment_bounds(11, 5, overlapped=False) == [
            (0, 5),
            (5, 5),
            (10, 1),
        ]

    def test_degenerate_lengths(self):
        assert segment_bounds(0, 5) == []
        assert segment_bounds(1, 5) == [(0, 1)]

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            segment_bounds(10, 1)

    @given(
        st.integers(min_value=1, max_value=200),
        block_sizes,
    )
    def test_overlapped_coverage(self, length, block_size):
        bounds = segment_bounds(length, block_size)
        covered = set()
        for start, seg_len in bounds:
            covered.update(range(start, start + seg_len))
        assert covered == set(range(length))
        # Consecutive blocks overlap in exactly one position.
        for (s1, l1), (s2, _) in zip(bounds, bounds[1:]):
            assert s1 + l1 - 1 == s2


class TestRoundTrip:
    @given(streams, block_sizes)
    @settings(max_examples=300)
    def test_greedy_roundtrip(self, stream, block_size):
        encoding = encode_stream(stream, block_size, strategy="greedy")
        assert decode_stream(encoding) == stream

    @given(streams, block_sizes)
    @settings(max_examples=150)
    def test_optimal_roundtrip(self, stream, block_size):
        encoding = encode_stream(stream, block_size, strategy="optimal")
        assert decode_stream(encoding) == stream

    @given(streams, block_sizes)
    @settings(max_examples=150)
    def test_disjoint_roundtrip(self, stream, block_size):
        encoding = encode_stream(stream, block_size, strategy="disjoint")
        assert decode_stream(encoding) == stream

    @given(streams, block_sizes)
    @settings(max_examples=150)
    def test_plan_decode_matches(self, stream, block_size):
        # Decoding from raw TT materials (stored bits + tau plan) must
        # agree with the structured decoder.
        encoding = encode_stream(stream, block_size)
        decoded = decode_with_plan(
            list(encoding.encoded), block_size, encoding.transformations()
        )
        assert decoded == stream


class TestNeverWorse:
    @given(streams, block_sizes)
    @settings(max_examples=300)
    def test_greedy_never_increases_transitions(self, stream, block_size):
        encoding = encode_stream(stream, block_size)
        assert encoding.encoded_transitions <= encoding.original_transitions

    @given(streams, block_sizes)
    @settings(max_examples=150)
    def test_optimal_never_worse_than_greedy(self, stream, block_size):
        greedy = encode_stream(stream, block_size, strategy="greedy")
        optimal = encode_stream(stream, block_size, strategy="optimal")
        assert optimal.encoded_transitions <= greedy.encoded_transitions


class TestPaperNumbers:
    def test_section6_fifty_percent_claim(self):
        # "in all the cases the total reduction in bit transitions was
        # within 1% of the expected value of 50% for codes with block
        # size of five bits" (length-1000 random sequences).
        pooled_original = 0
        pooled_encoded = 0
        for stream in random_streams(count=30, length=1000, seed=42):
            encoding = encode_stream(stream, 5)
            pooled_original += encoding.original_transitions
            pooled_encoded += encoding.encoded_transitions
        reduction = 100.0 * (pooled_original - pooled_encoded) / pooled_original
        assert reduction == pytest.approx(50.0, abs=1.5)

    def test_greedy_matches_global_optimum_on_random_streams(self):
        # Section 6: "the iterative approach leads in practice to
        # optimal results."
        for stream in random_streams(count=5, length=200, seed=7):
            greedy = encode_stream(stream, 5, strategy="greedy")
            optimal = encode_stream(stream, 5, strategy="optimal")
            assert greedy.encoded_transitions == optimal.encoded_transitions

    @pytest.mark.parametrize(
        "block_size,expected",
        [(4, 58.3), (5, 50.0), (6, 43.8), (7, 38.5)],
    )
    def test_random_stream_reduction_tracks_figure3(self, block_size, expected):
        pooled_original = 0
        pooled_encoded = 0
        for stream in random_streams(count=20, length=1000, seed=block_size):
            encoding = encode_stream(stream, block_size)
            pooled_original += encoding.original_transitions
            pooled_encoded += encoding.encoded_transitions
        reduction = 100.0 * (pooled_original - pooled_encoded) / pooled_original
        assert reduction == pytest.approx(expected, abs=2.0)


class TestOverlapMatters:
    def test_overlap_beats_disjoint_on_random_streams(self):
        # The paper dismisses disjoint blocks: boundary transitions are
        # uncontrolled.  Overlapped encoding must strictly win overall.
        total_overlap = 0
        total_disjoint = 0
        for stream in random_streams(count=10, length=500, seed=13):
            total_overlap += encode_stream(
                stream, 5, strategy="greedy"
            ).encoded_transitions
            total_disjoint += encode_stream(
                stream, 5, strategy="disjoint"
            ).encoded_transitions
        assert total_overlap < total_disjoint


class TestEncodingObject:
    def test_empty_stream(self):
        encoding = encode_stream([], 5)
        assert encoding.encoded == ()
        assert decode_stream(encoding) == []
        assert encoding.reduction_percent == 0.0

    def test_single_bit_stream(self):
        encoding = encode_stream([1], 5)
        assert encoding.encoded == (1,)
        assert len(encoding.segments) == 1
        assert encoding.segments[0].transformation.is_identity

    def test_segments_cover_stream(self):
        stream = [0, 1] * 20
        encoding = encode_stream(stream, 5)
        assert encoding.segments[0].start == 0
        assert encoding.segments[-1].end == len(stream)

    def test_alternating_stream_collapses(self):
        # 0101... decodes via ~y from an all-constant stored stream.
        stream = [0, 1] * 25
        encoding = encode_stream(stream, 5)
        assert encoding.encoded_transitions == 0
        assert encoding.reduction_percent == 100.0

    def test_constant_stream_untouched(self):
        stream = [1] * 30
        encoding = encode_stream(stream, 5)
        assert encoding.encoded_transitions == 0
        assert encoding.original_transitions == 0

    def test_transition_counts_consistent(self):
        stream = [0, 0, 1, 1, 0, 1, 0, 0, 1]
        encoding = encode_stream(stream, 4)
        assert encoding.original_transitions == count_transitions(stream)
        assert encoding.encoded_transitions == count_transitions(
            list(encoding.encoded)
        )


class TestEncoderConfiguration:
    def test_bad_strategy(self):
        with pytest.raises(ValueError):
            StreamEncoder(5, strategy="magic")

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            StreamEncoder(1)

    def test_full_set_at_least_as_good(self):
        for stream in random_streams(count=5, length=300, seed=99):
            eight = encode_stream(stream, 5, OPTIMAL_SET)
            sixteen = encode_stream(stream, 5, ALL_TRANSFORMATIONS)
            assert (
                sixteen.encoded_transitions <= eight.encoded_transitions
            )

    def test_plan_length_mismatch_rejected(self):
        encoding = encode_stream([0, 1, 0, 1, 0, 1], 4)
        with pytest.raises(ValueError):
            decode_with_plan(list(encoding.encoded), 4, [])

    def test_optimal_empty_dp_state_has_clear_error(self):
        # A history-only candidate set leaves the optimal DP with no
        # feasible state; the failure must name the problem rather
        # than surface as min() on an empty sequence.
        from repro.core.boolfunc import TT_Y, BoolFunc
        from repro.core.transformations import Transformation

        history_only = (Transformation(BoolFunc(TT_Y)),)
        for use_codebook in (True, False):
            with pytest.raises(
                RuntimeError, match="optimal DP state is empty"
            ):
                encode_stream(
                    [0, 1, 1, 0, 1],
                    3,
                    history_only,
                    strategy="optimal",
                    use_codebook=use_codebook,
                )
