"""Tests for the compiled benchmark kernels."""

import pytest

from repro.minicc.kernels import COMPILED_BUILDERS, compiled_workload
from repro.pipeline.flow import EncodingFlow
from repro.workloads.registry import BENCHMARK_ORDER

SMALL = {
    "mmul": {"n": 6},
    "sor": {"n": 8, "sweeps": 2},
    "ej": {"n": 8, "sweeps": 2},
    "fft": {"n": 16},
    "tri": {"n": 16, "sweeps": 2},
    "lu": {"n": 8},
}


class TestRegistry:
    def test_covers_all_six_benchmarks(self):
        assert set(COMPILED_BUILDERS) == set(BENCHMARK_ORDER)

    def test_unknown_kernel(self):
        with pytest.raises(KeyError, match="no compiled kernel"):
            compiled_workload("quicksort")


@pytest.mark.parametrize("name", sorted(COMPILED_BUILDERS))
class TestCompiledKernels:
    def test_runs_and_verifies(self, name):
        kernel, verify = compiled_workload(name, **SMALL[name])
        cpu, trace = kernel.run()
        verify(cpu)
        assert cpu.steps == len(trace)

    def test_encoding_flow(self, name):
        kernel, verify = compiled_workload(name, **SMALL[name])
        program = kernel.assemble()
        cpu, trace = kernel.run()
        result = EncodingFlow(block_size=5).run(program, trace, name)
        assert result.decode_verified or not result.selected_blocks
        assert result.reduction_percent > 0.0


class TestFftValidation:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            compiled_workload("fft", n=12)
