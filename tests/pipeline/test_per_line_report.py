"""Tests for the per-line report table."""

import pytest

from repro.pipeline.flow import EncodingFlow
from repro.pipeline.report import format_per_line_table
from repro.sim.cpu import run_program
from repro.workloads.registry import build_workload


class TestPerLineTable:
    def test_shape_and_content(self):
        workload = build_workload("lu", n=8)
        program = workload.assemble()
        cpu, trace = run_program(program)
        flow = EncodingFlow(block_size=5)
        result = flow.run(program, trace, "lu")
        baseline, encoded = flow.per_line_breakdown(program, trace, result)
        text = format_per_line_table(baseline, encoded)
        assert "before" in text and "after" in text and "saved" in text
        # 32 lines at 8 columns -> 4 groups of 4 content rows.
        assert text.count("before") == 4
        assert str(max(baseline)) in text

    def test_zero_baseline_renders_dash(self):
        text = format_per_line_table([0, 10], [0, 5], columns=2)
        assert "-" in text
        assert "50.0%" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            format_per_line_table([1, 2], [1])

    def test_savings_never_negative_on_real_flow(self):
        workload = build_workload("mmul", n=6)
        program = workload.assemble()
        cpu, trace = run_program(program)
        flow = EncodingFlow(block_size=4)
        result = flow.run(program, trace, "mmul")
        baseline, encoded = flow.per_line_breakdown(program, trace, result)
        # Per line, a few boundary effects may cost transitions, but
        # the vast majority of lines improve or stay equal.
        worse = sum(1 for b, e in zip(baseline, encoded) if e > b)
        assert worse <= 4
