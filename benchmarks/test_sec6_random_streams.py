"""Section 6 experiment: greedy chained encoding of uniform random
1000-bit sequences, block size five, lands within ~1% of the
theoretical 50% reduction; and the greedy choice matches the global
(DP) optimum in practice."""

import pytest

from repro.core.analysis import random_streams, summarize_streams
from repro.core.stream_codec import encode_stream


def _experiment(count: int = 50, length: int = 1000):
    streams = random_streams(count, length, seed=2003)
    return summarize_streams(streams, block_size=5, strategy="greedy")


def test_sec6_random_streams(benchmark, record_result):
    summary = benchmark.pedantic(
        _experiment, rounds=1, iterations=1, warmup_rounds=0
    )

    # "within 1% of the expected value of 50%" (pooled total).
    assert summary.reduction_percent == pytest.approx(50.0, abs=1.5)

    # Greedy == DP optimum on these streams ("the iterative approach
    # leads in practice to optimal results").
    optimal_wins = 0
    for stream in random_streams(10, 1000, seed=7):
        greedy = encode_stream(stream, 5, strategy="greedy")
        optimal = encode_stream(stream, 5, strategy="optimal")
        assert optimal.encoded_transitions <= greedy.encoded_transitions
        if optimal.encoded_transitions < greedy.encoded_transitions:
            optimal_wins += 1
    assert optimal_wins <= 1  # near-ubiquitous greedy optimality

    # The block-size sweep tracks Figure 3's theoretical percentages.
    sweep_lines = []
    for block_size, expected in ((4, 58.3), (5, 50.0), (6, 43.8), (7, 38.5)):
        s = summarize_streams(
            random_streams(20, 1000, seed=block_size), block_size
        )
        assert s.reduction_percent == pytest.approx(expected, abs=2.0)
        sweep_lines.append(
            f"  k={block_size}: measured {s.reduction_percent:5.2f}% "
            f"(theory {expected:5.1f}%)"
        )

    lines = [
        "Section 6 — random 1000-bit streams, greedy chained encoding",
        f"streams: {summary.streams}, block size 5",
        f"pooled reduction: {summary.reduction_percent:.2f}% "
        "(paper: within 1% of 50%)",
        f"per-stream mean {summary.mean_percent:.2f}%, "
        f"stdev {summary.stdev_percent:.2f}%",
        f"greedy beaten by global DP on {optimal_wins}/10 streams",
        "block-size sweep:",
        *sweep_lines,
    ]
    record_result("sec6_random_streams", "\n".join(lines))
