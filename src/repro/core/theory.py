"""Theoretical transition-reduction numbers — reproduces Figure 3.

For each block size ``k`` the paper counts, over all ``2**k`` block
words, the total transitions of the original words (TTN) and of their
optimal code words (RTN); the improvement percentage is the expected
transition reduction on a bit stream with uniform bit values.

Note on the paper's Figure 3: the ``k = 6`` column (TTN=320, RTN=180)
is exactly twice the value implied by the paper's own counting rule
(``TTN = sum of per-word transitions = 2**k * (k-1) / 2``, which gives
64*5/2 = 160), while every other column matches the rule and the
printed 43.8% improvement matches the corrected 160/90.  We therefore
treat the k=6 absolute entries as a typo; see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.codebook import build_codebook
from repro.core.transformations import OPTIMAL_SET, Transformation


@dataclass(frozen=True)
class TheoryRow:
    """One column of Figure 3."""

    block_size: int
    total_transitions: int  # TTN
    reduced_transitions: int  # RTN

    @property
    def improvement_percent(self) -> float:
        if self.total_transitions == 0:
            return 0.0
        return (
            100.0
            * (self.total_transitions - self.reduced_transitions)
            / self.total_transitions
        )


def expected_total_transitions(block_size: int) -> int:
    """Closed form for TTN: each of the ``k-1`` adjacent pairs differs
    in exactly half of the ``2**k`` words."""
    return (1 << block_size) * (block_size - 1) // 2


def theory_row(
    block_size: int,
    transformations: Sequence[Transformation] = OPTIMAL_SET,
) -> TheoryRow:
    """Compute one Figure-3 column by exhaustive codebook search."""
    book = build_codebook(block_size, transformations)
    return TheoryRow(
        block_size=block_size,
        total_transitions=book.total_transitions,
        reduced_transitions=book.reduced_transitions,
    )


def theory_table(
    block_sizes: Sequence[int] = (2, 3, 4, 5, 6, 7),
    transformations: Sequence[Transformation] = OPTIMAL_SET,
) -> list[TheoryRow]:
    """The full Figure 3 table."""
    return [theory_row(k, transformations) for k in block_sizes]


#: Figure 3 as printed in the paper (block size -> (TTN, RTN)).
PAPER_FIGURE3 = {
    2: (2, 0),
    3: (8, 2),
    4: (24, 10),
    5: (64, 32),
    6: (320, 180),  # see module docstring: internally inconsistent, 2x
    7: (384, 234),
}

#: Figure 3 with the k=6 column corrected to the paper's own counting
#: rule (the printed percentage, 43.8%, matches these numbers).
CORRECTED_FIGURE3 = {
    2: (2, 0),
    3: (8, 2),
    4: (24, 10),
    5: (64, 32),
    6: (160, 90),
    7: (384, 234),
}


def expected_improvement_biased(
    block_size: int,
    bias: float,
    transformations: Sequence[Transformation] = OPTIMAL_SET,
) -> float:
    """Expected transition-reduction percentage for anchored blocks
    whose bits are i.i.d. Bernoulli(``bias``).

    Figure 3 is the ``bias == 0.5`` special case (every word equally
    likely).  This closed form extends the paper's table to biased
    inputs and backs its "essentially independent of the input value
    distributions" claim analytically: each block word is weighted by
    ``bias**ones * (1-bias)**zeros`` instead of uniformly.
    """
    if not 0.0 <= bias <= 1.0:
        raise ValueError(f"bias must be in [0, 1], got {bias}")
    book = build_codebook(block_size, transformations)
    expected_original = 0.0
    expected_encoded = 0.0
    for solution in book.solutions:
        ones = sum(solution.word)
        weight = bias**ones * (1.0 - bias) ** (block_size - ones)
        expected_original += weight * solution.original_transitions
        expected_encoded += weight * solution.encoded_transitions
    if expected_original == 0.0:
        return 0.0
    return 100.0 * (expected_original - expected_encoded) / expected_original


def format_theory_table(rows: Sequence[TheoryRow]) -> str:
    """Render rows in the layout of Figure 3."""
    sizes = "  ".join(f"{r.block_size:>6}" for r in rows)
    ttn = "  ".join(f"{r.total_transitions:>6}" for r in rows)
    rtn = "  ".join(f"{r.reduced_transitions:>6}" for r in rows)
    impr = "  ".join(f"{r.improvement_percent:>6.1f}" for r in rows)
    return "\n".join(
        [
            f"Size     {sizes}",
            f"TTN      {ttn}",
            f"RTN      {rtn}",
            f"Impr(%)  {impr}",
        ]
    )
