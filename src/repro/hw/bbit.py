"""The Basic Block Identification Table (BBIT) of Figure 5.

One entry per encoded basic block: the PC of its first instruction and
the index of its first Transformation Table entry.  "When an
application loop basic block is complete, a lookup into the BBIT
produces the TT index for the next basic block" (Section 7.2).  The
hardware analogue is a small CAM on the fetch PC; the model keeps a
dict for O(1) lookups and counts them for the power bookkeeping
("a lookup into the BBIT is performed only in the beginning of a
basic block").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TableIntegrityError
from repro.hw.integrity import bbit_entry_parity


@dataclass(frozen=True)
class BBITEntry:
    """One BBIT row: basic-block start PC -> first TT entry index."""

    pc: int
    tt_index: int
    num_instructions: int  # block length, for sequencing bookkeeping


class BasicBlockIdentificationTable:
    """A fixed-capacity PC-indexed table.

    With ``parity=True`` each installed row carries a parity word over
    all its fields (including the CAM tag); a matching :meth:`lookup`
    recomputes and compares it before handing the row to the decoder,
    raising :class:`~repro.errors.TableIntegrityError` on mismatch.
    """

    def __init__(self, capacity: int = 16, parity: bool = False):
        if capacity < 1:
            raise ValueError("BBIT needs at least one entry")
        self.capacity = capacity
        self.parity_enabled = parity
        self._by_pc: dict[int, BBITEntry] = {}
        #: Parity word per row, keyed like the row itself; corrupting
        #: a row in place leaves this stale — which is the point.
        self._parity: dict[int, int] = {}
        self.lookups = 0
        self.hits = 0
        #: Parity activity, published onto the metrics registry by the
        #: fetch decoder alongside the lookup counters.
        self.parity_checks = 0
        self.parity_failures = 0

    def __len__(self) -> int:
        return len(self._by_pc)

    def clear(self) -> None:
        self._by_pc.clear()
        self._parity.clear()
        self.lookups = 0
        self.hits = 0
        self.parity_checks = 0
        self.parity_failures = 0

    def install(self, entry: BBITEntry) -> None:
        if entry.pc in self._by_pc:
            raise ValueError(f"duplicate BBIT entry for {entry.pc:#010x}")
        if len(self._by_pc) >= self.capacity:
            raise ValueError(
                f"BBIT full ({self.capacity} entries); cannot add "
                f"{entry.pc:#010x}"
            )
        self._by_pc[entry.pc] = entry
        self._parity[entry.pc] = bbit_entry_parity(
            entry.pc, entry.tt_index, entry.num_instructions
        )

    def seal(self) -> None:
        """Recompute every parity word from the current rows (for
        callers that populated ``_by_pc`` directly)."""
        self._parity = {
            pc: bbit_entry_parity(e.pc, e.tt_index, e.num_instructions)
            for pc, e in self._by_pc.items()
        }

    def lookup(self, pc: int) -> BBITEntry | None:
        """CAM match on a fetch PC; counts every probe.  Checks the
        matched row's parity when enabled."""
        self.lookups += 1
        entry = self._by_pc.get(pc)
        if entry is None:
            return None
        if self.parity_enabled:
            self.parity_checks += 1
            stored = self._parity.get(pc)
            actual = bbit_entry_parity(
                entry.pc, entry.tt_index, entry.num_instructions
            )
            if stored != actual:
                self.parity_failures += 1
                raise TableIntegrityError(
                    f"BBIT entry for {pc:#010x} parity mismatch "
                    f"(stored {'none' if stored is None else f'{stored:#010x}'}, "
                    f"computed {actual:#010x})"
                )
        self.hits += 1
        return entry

    def peek(self, pc: int) -> BBITEntry | None:
        """Lookup without statistics (for assertions in tests)."""
        return self._by_pc.get(pc)

    def storage_bits(self, pc_bits: int = 30, tt_index_bits: int = 4) -> int:
        """Physical bits: tag (word-aligned PC) + TT index per entry."""
        return self.capacity * (pc_bits + tt_index_bits)
